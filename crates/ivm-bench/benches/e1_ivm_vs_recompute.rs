//! E1: incremental maintenance vs full recomputation (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivm_bench::scenarios::{apply_batch, groups_session};
use ivm_core::IvmFlags;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_ivm_vs_recompute");
    group.sample_size(10);
    for base in [1_000usize, 10_000, 50_000] {
        let delta = 100usize;
        // Incremental path.
        group.bench_with_input(BenchmarkId::new("incremental", base), &base, |b, &base| {
            let (mut ivm, mut existing, mut w) =
                groups_session(IvmFlags::paper_defaults(), base / 10, base, 0xB1);
            b.iter(|| {
                let batch = w.delta_batch(delta, 0.7, &mut existing);
                apply_batch(&mut ivm, &batch);
            });
        });
        // Full recompute path.
        group.bench_with_input(BenchmarkId::new("recompute", base), &base, |b, &base| {
            let (ivm, _existing, _w) =
                groups_session(IvmFlags::paper_defaults(), base / 10, base, 0xB1);
            let sql = ivm.view("query_groups").unwrap().artifacts.view_sql.clone();
            b.iter(|| {
                std::hint::black_box(ivm.database().query(&sql).unwrap().rows.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
