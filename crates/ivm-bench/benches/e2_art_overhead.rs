//! E2: ART index build overhead and upsert speedup (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivm_bench::scenarios::{apply_batch, groups_session};
use ivm_core::{IndexCreation, IvmFlags, UpsertStrategy};
use ivm_engine::index::{encode_key, Art};
use ivm_engine::Value;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_art_overhead");
    group.sample_size(10);
    // Raw ART build cost (the "one-time overhead").
    for n in [1_000usize, 10_000, 100_000] {
        let pairs: Vec<(Vec<u8>, u64)> = (0..n)
            .map(|i| (encode_key(&[Value::from(format!("g{i:06}"))]), i as u64))
            .collect();
        group.bench_with_input(BenchmarkId::new("art_bulk_build", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(Art::bulk_build(pairs.clone()).len()));
        });
    }
    // Refresh with index (LEFT JOIN upsert) vs without (UNION regroup).
    for (label, strategy, index) in [
        (
            "refresh_indexed",
            UpsertStrategy::LeftJoinUpsert,
            IndexCreation::AfterPopulate,
        ),
        (
            "refresh_regroup",
            UpsertStrategy::UnionRegroup,
            IndexCreation::None,
        ),
    ] {
        group.bench_function(BenchmarkId::new(label, 10_000), |b| {
            let flags = IvmFlags {
                upsert_strategy: strategy,
                index_creation: index,
                ..IvmFlags::paper_defaults()
            };
            let (mut ivm, mut existing, mut w) = groups_session(flags, 1_000, 10_000, 0xB2);
            b.iter(|| {
                let batch = w.delta_batch(100, 0.7, &mut existing);
                apply_batch(&mut ivm, &batch);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
