//! E3: the 4-way cross-system comparison (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use ivm_bench::scenarios::e3_cross_system;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_cross_system");
    group.sample_size(10);
    // One criterion sample = one full 4-way round; the per-configuration
    // split is printed by the experiments binary.
    group.bench_function("four_way_round", |b| {
        b.iter(|| std::hint::black_box(e3_cross_system(50, 2_000, 50, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
