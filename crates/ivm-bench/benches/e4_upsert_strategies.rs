//! E4: Step-2 upsert-strategy ablation (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivm_bench::scenarios::{apply_batch, groups_session};
use ivm_core::{IndexCreation, IvmFlags, UpsertStrategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_upsert_strategies");
    group.sample_size(10);
    for strategy in [
        UpsertStrategy::LeftJoinUpsert,
        UpsertStrategy::UnionRegroup,
        UpsertStrategy::FullOuterJoin,
    ] {
        for groups_n in [64usize, 4_096] {
            let flags = IvmFlags {
                upsert_strategy: strategy,
                index_creation: if strategy.needs_index() {
                    IndexCreation::AfterPopulate
                } else {
                    IndexCreation::None
                },
                ..IvmFlags::paper_defaults()
            };
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), groups_n),
                &groups_n,
                |b, &groups_n| {
                    let (mut ivm, mut existing, mut w) =
                        groups_session(flags.clone(), groups_n, 20_000, 0xB4);
                    b.iter(|| {
                        let batch = w.delta_batch(100, 0.7, &mut existing);
                        apply_batch(&mut ivm, &batch);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
