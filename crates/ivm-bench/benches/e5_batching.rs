//! E5: batching granularity (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivm_bench::scenarios::e5_batching;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_batching");
    group.sample_size(10);
    for batch in [1usize, 10, 100, 0] {
        let label = if batch == 0 {
            "lazy".to_string()
        } else {
            batch.to_string()
        };
        group.bench_with_input(
            BenchmarkId::new("apply_100_changes", label),
            &batch,
            |b, &batch| {
                b.iter(|| std::hint::black_box(e5_batching(2_000, 100, &[batch])));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
