//! E6: SQL-to-SQL compilation cost (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivm_core::{IvmCompiler, IvmFlags};
use ivm_engine::Database;

fn bench(c: &mut Criterion) {
    let mut db = Database::new();
    db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
        .unwrap();
    let compiler = IvmCompiler::new();
    let flags = IvmFlags::paper_defaults();
    let cases = [
        (
            "listing_1",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index, \
          SUM(group_value) AS total_value FROM groups GROUP BY group_index",
        ),
        (
            "projection",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index \
          FROM groups WHERE group_value > 10",
        ),
        (
            "join_aggregate",
            "CREATE MATERIALIZED VIEW v AS SELECT customers.name, \
          SUM(orders.amount) AS t FROM orders JOIN customers \
          ON orders.cust = customers.id GROUP BY customers.name",
        ),
        (
            "min_max",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index, \
          MIN(group_value) AS lo, MAX(group_value) AS hi FROM groups GROUP BY group_index",
        ),
    ];
    let mut group = c.benchmark_group("e6_compile_time");
    for (label, sql) in cases {
        group.bench_function(BenchmarkId::new("compile", label), |b| {
            b.iter(|| {
                std::hint::black_box(compiler.compile_sql(sql, db.catalog(), &flags).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
