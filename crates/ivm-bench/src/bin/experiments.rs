//! The experiment harness: regenerates every evaluation claim of the paper
//! as a printed table (recorded in EXPERIMENTS.md).
//!
//! Run with `cargo run --release -p ivm-bench --bin experiments`.
//! Pass `--quick` for smaller sizes (used in CI), or `--e1-json <path>`
//! to run only the E1 scenario (up to 1M base rows) and write the
//! measurements as JSON — the perf-baseline artifact committed as
//! `BENCH_e1.json`.

use ivm_bench::harness::{fmt_duration, Report};
use ivm_bench::scenarios::{
    e1_ivm_vs_recompute, e2_art_overhead, e3_cross_system, e4_upsert_strategies, e5_batching,
    e6_compile_time, edurable_durability, ehash_hash_operators, eparallel_scaling,
    espill_out_of_core, E1Row, EDurableRow, EHashRow, EParallelRow, ESpillRow,
};

/// The session default worker-pool size: `$OPENIVM_PARALLELISM` when
/// set, else `available_parallelism()` — recorded in bench JSON so the
/// numbers carry the pool they ran with.
fn resolved_parallelism() -> usize {
    ivm_engine::Database::new().parallelism()
}

/// Serialize E1 rows as JSON by hand (the workspace has no serde).
fn e1_json(rows: &[E1Row]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"base_rows\": {}, \"delta_rows\": {}, \"incremental_ns\": {}, \
                 \"recompute_ns\": {}, \"speedup\": {:.2}}}",
                r.base_rows,
                r.delta_rows,
                r.incremental.as_nanos(),
                r.recompute.as_nanos(),
                r.speedup()
            )
        })
        .collect();
    format!(
        "{{\n\"experiment\": \"e1_ivm_vs_recompute\",\n\"rows\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    )
}

/// Serialize E-parallel rows as JSON by hand (no serde in the workspace).
/// Records the machine's available parallelism alongside the
/// measurements: scaling numbers are meaningless without it.
fn eparallel_json(rows: &[EParallelRow]) -> String {
    let base = rows.first().map(|r| r.recompute.as_nanos()).unwrap_or(0);
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"workers\": {}, \"base_rows\": {}, \"delta_rows\": {}, \
                 \"recompute_ns\": {}, \"propagate_ns\": {}, \"recompute_speedup_vs_1\": {:.2}}}",
                r.workers,
                r.base_rows,
                r.delta_rows,
                r.recompute.as_nanos(),
                r.propagate.as_nanos(),
                base as f64 / r.recompute.as_nanos().max(1) as f64
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    format!(
        "{{\n\"experiment\": \"eparallel_scaling\",\n\"machine_cores\": {cores},\n\
         \"resolved_parallelism\": {},\n\"rows\": [\n{}\n]\n}}\n",
        resolved_parallelism(),
        entries.join(",\n")
    )
}

/// Serialize E-hash rows as JSON by hand (no serde in the workspace).
fn ehash_json(rows: &[EHashRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"variant\": \"{}\", \"fact_rows\": {}, \"out_rows\": {}, \
                 \"join_group_ns\": {}, \"distinct_ns\": {}, \
                 \"typed_rows\": {}, \"fallback_rows\": {}}}",
                r.variant,
                r.fact_rows,
                r.out_rows,
                r.join_group.as_nanos(),
                r.distinct.as_nanos(),
                r.typed_rows,
                r.fallback_rows
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    format!(
        "{{\n\"experiment\": \"ehash_hash_operators\",\n\"machine_cores\": {cores},\n\
         \"resolved_parallelism\": {},\n\"rows\": [\n{}\n]\n}}\n",
        resolved_parallelism(),
        entries.join(",\n")
    )
}

/// Serialize E-spill rows as JSON by hand (no serde in the workspace).
/// Budget, workers, working set, latency, and the spill counters per
/// run, including the background-writer observability fields.
fn espill_json(rows: &[ESpillRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"budget\": \"{}\", \"budget_bytes\": {}, \"workers\": {}, \
                 \"fact_rows\": {}, \
                 \"working_set_bytes\": {}, \"out_rows\": {}, \"join_group_ns\": {}, \
                 \"spilled_partitions\": {}, \"spilled_rows\": {}, \"spilled_bytes\": {}, \
                 \"spill_files\": {}, \"rehydrated_rows\": {}, \"bytes_read\": {}, \
                 \"repartitions\": {}, \"queue_high_water\": {}, \"overlap_ns\": {}, \
                 \"peak_used_bytes\": {}}}",
                r.budget_label,
                r.budget_bytes.map_or(0, |b| b as u64),
                r.workers,
                r.fact_rows,
                r.working_set,
                r.out_rows,
                r.join_group.as_nanos(),
                r.stats.spilled_partitions,
                r.stats.spilled_rows,
                r.stats.spilled_bytes,
                r.stats.spill_files,
                r.stats.rehydrated_rows,
                r.stats.bytes_read,
                r.stats.repartitions,
                r.stats.queue_high_water,
                r.stats.overlap_nanos,
                r.stats.peak_used,
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    format!(
        "{{\n\"experiment\": \"espill_out_of_core\",\n\"machine_cores\": {cores},\n\
         \"resolved_parallelism\": {},\n\"rows\": [\n{}\n]\n}}\n",
        resolved_parallelism(),
        entries.join(",\n")
    )
}

fn print_espill(rows: &[ESpillRow]) {
    let mut report = Report::new(&[
        "budget",
        "workers",
        "fact rows",
        "join+group",
        "spilled bytes",
        "peak used",
        "queue hwm",
        "rehydrated rows",
    ]);
    for r in rows {
        report.row(&[
            r.budget_label.to_string(),
            r.workers.to_string(),
            r.fact_rows.to_string(),
            fmt_duration(r.join_group),
            r.stats.spilled_bytes.to_string(),
            r.stats.peak_used.to_string(),
            r.stats.queue_high_water.to_string(),
            r.stats.rehydrated_rows.to_string(),
        ]);
    }
    println!("{}", report.render());
}

/// Serialize E-durable rows as JSON by hand (no serde in the workspace).
fn edurable_json(rows: &[EDurableRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mode\": \"{}\", \"base_rows\": {}, \"delta_rows\": {}, \
                 \"batches\": {}, \"elapsed_ns\": {}, \"wal_records\": {}, \
                 \"wal_syncs\": {}, \"wal_bytes\": {}, \"replayed_records\": {}, \
                 \"wal_rotations\": {}, \"wal_segments\": {}, \"io_retries\": {}, \
                 \"wal_poisoned\": {}}}",
                r.mode,
                r.base_rows,
                r.delta_rows,
                r.batches,
                r.elapsed.as_nanos(),
                r.wal_records,
                r.wal_syncs,
                r.wal_bytes,
                r.replayed_records,
                r.wal_rotations,
                r.wal_segments,
                r.io_retries,
                r.wal_poisoned,
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    format!(
        "{{\n\"experiment\": \"edurable_durability\",\n\"machine_cores\": {cores},\n\
         \"resolved_parallelism\": {},\n\"rows\": [\n{}\n]\n}}\n",
        resolved_parallelism(),
        entries.join(",\n")
    )
}

fn print_edurable(rows: &[EDurableRow]) {
    let mut report = Report::new(&[
        "mode",
        "batches",
        "elapsed",
        "wal records",
        "fsyncs",
        "wal bytes",
        "replayed",
        "rotations",
        "segments",
        "retries",
    ]);
    for r in rows {
        report.row(&[
            r.mode.to_string(),
            r.batches.to_string(),
            fmt_duration(r.elapsed),
            r.wal_records.to_string(),
            r.wal_syncs.to_string(),
            r.wal_bytes.to_string(),
            r.replayed_records.to_string(),
            r.wal_rotations.to_string(),
            r.wal_segments.to_string(),
            r.io_retries.to_string(),
        ]);
    }
    println!("{}", report.render());
}

fn print_ehash(rows: &[EHashRow]) {
    let mut report = Report::new(&[
        "variant",
        "fact rows",
        "out rows",
        "join+group",
        "distinct",
        "typed rows",
        "fallback rows",
    ]);
    for r in rows {
        report.row(&[
            r.variant.to_string(),
            r.fact_rows.to_string(),
            r.out_rows.to_string(),
            fmt_duration(r.join_group),
            fmt_duration(r.distinct),
            r.typed_rows.to_string(),
            r.fallback_rows.to_string(),
        ]);
    }
    println!("{}", report.render());
}

fn print_eparallel(rows: &[EParallelRow]) {
    let base = rows.first().map(|r| r.recompute).unwrap_or_default();
    let mut report = Report::new(&["workers", "recompute", "speedup", "propagate (delta)"]);
    for r in rows {
        report.row(&[
            r.workers.to_string(),
            fmt_duration(r.recompute),
            format!(
                "{:.2}x",
                base.as_secs_f64() / r.recompute.as_secs_f64().max(1e-9)
            ),
            format!("{} ({})", fmt_duration(r.propagate), r.delta_rows),
        ]);
    }
    println!("{}", report.render());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--espill-json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("experiments: --espill-json requires an output path");
            std::process::exit(2);
        };
        let sizes: &[usize] = if args.iter().any(|a| a == "--quick") {
            &[50_000]
        } else {
            &[1_000_000]
        };
        let rows = espill_out_of_core(sizes, &[1, 4]);
        print_espill(&rows);
        std::fs::write(path, espill_json(&rows)).expect("write E-spill JSON");
        println!("wrote {path}");
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--ehash-json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("experiments: --ehash-json requires an output path");
            std::process::exit(2);
        };
        let sizes: &[usize] = if args.iter().any(|a| a == "--quick") {
            &[10_000]
        } else {
            &[100_000]
        };
        let rows = ehash_hash_operators(sizes);
        print_ehash(&rows);
        std::fs::write(path, ehash_json(&rows)).expect("write E-hash JSON");
        println!("wrote {path}");
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--edurable-json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("experiments: --edurable-json requires an output path");
            std::process::exit(2);
        };
        let (base, delta, counts): (usize, usize, &[usize]) = if args.iter().any(|a| a == "--quick")
        {
            (2_000, 50, &[2, 8])
        } else {
            (20_000, 200, &[2, 8, 32])
        };
        let rows = edurable_durability(base, delta, counts);
        print_edurable(&rows);
        std::fs::write(path, edurable_json(&rows)).expect("write E-durable JSON");
        println!("wrote {path}");
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--eparallel-json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("experiments: --eparallel-json requires an output path");
            std::process::exit(2);
        };
        let rows = eparallel_scaling(1_000_000, 1_000, &[1, 2, 4]);
        print_eparallel(&rows);
        std::fs::write(path, eparallel_json(&rows)).expect("write E-parallel JSON");
        println!("wrote {path}");
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--e1-json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("experiments: --e1-json requires an output path");
            std::process::exit(2);
        };
        let rows = e1_ivm_vs_recompute(&[10_000, 100_000, 1_000_000], &[100, 1_000]);
        for r in &rows {
            println!(
                "base={} delta={} incremental={} recompute={} speedup={:.1}x",
                r.base_rows,
                r.delta_rows,
                fmt_duration(r.incremental),
                fmt_duration(r.recompute),
                r.speedup()
            );
        }
        std::fs::write(path, e1_json(&rows)).expect("write E1 JSON");
        println!("wrote {path}");
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "OpenIVM experiment harness ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    // ---------------- E1
    println!("== E1: incremental maintenance vs full recomputation ==");
    println!("   (paper §2/§3: \"clear improvements in resource consumption by executing");
    println!(
        "    incremental computations rather than running the query against the whole dataset\")\n"
    );
    let (bases, deltas): (&[usize], &[usize]) = if quick {
        (&[1_000, 10_000], &[10, 100])
    } else {
        (&[1_000, 10_000, 100_000, 1_000_000], &[10, 100, 1_000])
    };
    let mut report = Report::new(&[
        "base rows",
        "delta rows",
        "incremental",
        "recompute",
        "speedup",
    ]);
    for r in e1_ivm_vs_recompute(bases, deltas) {
        report.row(&[
            r.base_rows.to_string(),
            r.delta_rows.to_string(),
            fmt_duration(r.incremental),
            fmt_duration(r.recompute),
            format!("{:.1}x", r.speedup()),
        ]);
    }
    println!("{}", report.render());

    // ---------------- E2
    println!("== E2: ART index overhead ==");
    println!("   (paper §2: \"its creation only adds significant overhead the first time\")\n");
    let bases: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut report = Report::new(&[
        "base rows",
        "setup+ART",
        "ART build",
        "setup no-index",
        "refresh indexed",
        "refresh regroup",
        "ART bytes",
    ]);
    for r in e2_art_overhead(bases, 100) {
        report.row(&[
            r.base_rows.to_string(),
            fmt_duration(r.setup_with_index),
            fmt_duration(r.index_build),
            fmt_duration(r.setup_without_index),
            fmt_duration(r.refresh_indexed),
            fmt_duration(r.refresh_unindexed),
            r.art_bytes.to_string(),
        ]);
    }
    println!("{}", report.render());

    // ---------------- E3
    println!("== E3: cross-system comparison ==");
    println!("   (paper §3: \"pure DuckDB, pure PostgreSQL, cross-system, and without IVM\")\n");
    let (base_orders, burst, rounds) = if quick {
        (2_000, 50, 3)
    } else {
        (50_000, 200, 5)
    };
    let mut report = Report::new(&["configuration", "write burst", "analytical query"]);
    for r in e3_cross_system(100, base_orders, burst, rounds) {
        report.row(&[
            r.config.to_string(),
            fmt_duration(r.write_time),
            fmt_duration(r.query_time),
        ]);
    }
    println!("{}", report.render());

    // ---------------- E4
    println!("== E4: Step-2 upsert-strategy ablation ==");
    println!("   (paper §2: UNION+regroup vs full-outer-join vs LEFT JOIN upsert)\n");
    let (base, groups): (usize, &[usize]) = if quick {
        (5_000, &[16, 1_024])
    } else {
        (50_000, &[16, 1_024, 16_384])
    };
    let mut report = Report::new(&["groups", "strategy", "refresh"]);
    for r in e4_upsert_strategies(base, groups, 200) {
        report.row(&[
            r.num_groups.to_string(),
            r.strategy.name().to_string(),
            fmt_duration(r.refresh),
        ]);
    }
    println!("{}", report.render());

    // ---------------- E5
    println!("== E5: batching granularity ==");
    println!("   (paper §1: \"batching changes together can amortize part of this cost\")\n");
    let (base, changes): (usize, usize) = if quick { (2_000, 100) } else { (20_000, 1_000) };
    let mut report = Report::new(&["batch size", "total", "per change", "maintenance runs"]);
    for r in e5_batching(base, changes, &[1, 10, 100, 0]) {
        let label = if r.batch_size == 0 {
            "lazy".to_string()
        } else {
            r.batch_size.to_string()
        };
        report.row(&[
            label,
            fmt_duration(r.total),
            fmt_duration(r.total / changes as u32),
            r.maintenance_runs.to_string(),
        ]);
    }
    println!("{}", report.render());

    // ---------------- E-hash
    println!("== E-hash: hash-operator stress (multi-join + high-cardinality GROUP BY) ==");
    println!(
        "   (vectorized hash kernels + flat open-addressing tables across join/agg/distinct)\n"
    );
    let sizes: &[usize] = if quick { &[10_000] } else { &[100_000] };
    print_ehash(&ehash_hash_operators(sizes));

    // ---------------- E-spill
    println!("== E-spill: memory-budgeted out-of-core join + GROUP BY ==");
    println!("   (build sides and group tables larger than the budget spill radix");
    println!("    partitions to disk and rehydrate partition-at-a-time)\n");
    let sizes: &[usize] = if quick { &[20_000] } else { &[200_000] };
    print_espill(&espill_out_of_core(sizes, &[1, 4]));

    // ---------------- E-durable
    println!("== E-durable: WAL toll on ingest+refresh and recovery vs log length ==");
    println!("   (slotted pages + buffer pool + ARIES-lite WAL; reopen replays the");
    println!("    committed prefix and takes a recovery checkpoint)\n");
    let (base, delta, counts): (usize, usize, &[usize]) = if quick {
        (2_000, 50, &[2, 8])
    } else {
        (20_000, 200, &[2, 8, 32])
    };
    print_edurable(&edurable_durability(base, delta, counts));

    // ---------------- E-parallel
    println!("== E-parallel: morsel-driven multi-core scaling ==");
    println!(
        "   (recompute + large-delta propagation at 1/2/4 workers; this machine reports {} core(s))\n",
        std::thread::available_parallelism().map_or(0, std::num::NonZero::get)
    );
    let (base, delta, workers): (usize, usize, &[usize]) = if quick {
        (50_000, 200, &[1, 4])
    } else {
        (1_000_000, 1_000, &[1, 2, 4])
    };
    print_eparallel(&eparallel_scaling(base, delta, workers));

    // ---------------- E6
    println!("== E6: SQL-to-SQL compilation cost per view class ==\n");
    let iters = if quick { 20 } else { 200 };
    let mut report = Report::new(&["view class", "compile", "setup stmts", "maintenance stmts"]);
    for r in e6_compile_time(iters) {
        report.row(&[
            r.class.to_string(),
            fmt_duration(r.compile),
            r.setup_statements.to_string(),
            r.maintenance_statements.to_string(),
        ]);
    }
    println!("{}", report.render());
}
