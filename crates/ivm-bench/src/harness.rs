//! Timing and report-table helpers shared by the experiments binary and
//! the criterion benches.

use std::time::{Duration, Instant};

/// Time a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Time a closure over `iters` runs and return the mean duration.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A fixed-width report table (the experiments binary prints the same rows
/// the paper's demo shows on screen).
#[derive(Debug, Default)]
pub struct Report {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with column headers.
    pub fn new(header: &[&str]) -> Report {
        Report {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "report arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new(&["name", "value"]);
        r.row(&["short".into(), "1".into()]);
        r.row(&["a_longer_name".into(), "2".into()]);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }

    #[test]
    fn timers_run() {
        let (v, d) = time_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d.as_nanos() > 0);
        let mean = time_mean(3, || {
            std::hint::black_box(1 + 1);
        });
        let _ = mean;
    }
}
