//! # ivm-bench — workloads, experiment scenarios, and reporting
//!
//! Everything needed to regenerate the paper's evaluation claims:
//! deterministic workload generators, the E1–E6 experiment scenarios
//! indexed in DESIGN.md §4, and a report formatter. The `experiments`
//! binary prints paper-style tables; the criterion benches in `benches/`
//! wrap the same scenarios.

#![warn(missing_docs)]

pub mod harness;
pub mod scenarios;
pub mod workload;
