//! The six experiments (E1–E6 in DESIGN.md §4), shared by the criterion
//! benches and the `experiments` binary.

use std::time::Duration;

use ivm_core::{IndexCreation, IvmFlags, IvmSession, PropagationMode, UpsertStrategy};
use ivm_engine::Value;
use ivm_htap::HtapPipeline;
use ivm_oltp::OltpEngine;

use crate::harness::{time_mean, time_once};
use crate::workload::{GroupChange, GroupsWorkload, SalesWorkload};

/// Listing 1's view, used throughout.
pub const LISTING_1_VIEW: &str = "CREATE MATERIALIZED VIEW query_groups AS \
     SELECT group_index, SUM(group_value) AS total_value \
     FROM groups GROUP BY group_index";

/// Build an [`IvmSession`] with `groups` loaded with `base_rows` rows over
/// `num_groups` groups, and the Listing-1 view installed. Returns the
/// session, the live rows (for deletion draws), and the workload generator.
pub fn groups_session(
    flags: IvmFlags,
    num_groups: usize,
    base_rows: usize,
    seed: u64,
) -> (IvmSession, Vec<(String, i64)>, GroupsWorkload) {
    let mut w = GroupsWorkload::new(num_groups, seed);
    let rows = w.base_rows(base_rows);
    let mut ivm = IvmSession::new(flags);
    ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    {
        // Bulk load through the storage layer (the paper loads datasets
        // before the demo starts).
        let table = ivm
            .database_mut()
            .catalog_mut()
            .table_mut("groups")
            .unwrap();
        for (g, v) in &rows {
            table
                .insert(vec![Value::from(g.clone()), Value::Integer(*v)])
                .unwrap();
        }
    }
    ivm.execute(LISTING_1_VIEW).unwrap();
    (ivm, rows, w)
}

/// Apply a delta batch through the cross-system ingest path and refresh.
pub fn apply_batch(ivm: &mut IvmSession, batch: &[GroupChange]) {
    let pairs: Vec<(Vec<Value>, bool)> = batch
        .iter()
        .map(|c| {
            (
                vec![
                    Value::from(c.group_index.clone()),
                    Value::Integer(c.group_value),
                ],
                c.insertion,
            )
        })
        .collect();
    ivm.ingest_deltas("groups", &pairs).unwrap();
    ivm.refresh("query_groups").unwrap();
}

/// Mean refresh latency over `iters` *fresh* delta batches (a batch can
/// only be applied once: its deletions consume rows).
fn mean_refresh(
    ivm: &mut IvmSession,
    w: &mut GroupsWorkload,
    existing: &mut Vec<(String, i64)>,
    delta: usize,
    iters: usize,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let batch = w.delta_batch(delta, 0.7, existing);
        let ((), d) = time_once(|| apply_batch(ivm, &batch));
        total += d;
    }
    total / iters as u32
}

// ---------------------------------------------------------------- E1

/// One E1 measurement.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Base-table size.
    pub base_rows: usize,
    /// Delta batch size.
    pub delta_rows: usize,
    /// Time to maintain the view incrementally.
    pub incremental: Duration,
    /// Time to recompute the view from scratch.
    pub recompute: Duration,
}

impl E1Row {
    /// recompute / incremental.
    pub fn speedup(&self) -> f64 {
        self.recompute.as_secs_f64() / self.incremental.as_secs_f64().max(1e-9)
    }
}

/// Fresh delta batches measured per E1 cell; the minimum is kept (the
/// standard microbenchmark noise filter — a batch can only be applied
/// once, so repetitions use fresh batches over the same session).
const E1_REPS: usize = 3;

/// E1: incremental maintenance vs full recomputation (the demo's headline
/// claim).
pub fn e1_ivm_vs_recompute(base_sizes: &[usize], delta_sizes: &[usize]) -> Vec<E1Row> {
    let mut out = Vec::new();
    for &base in base_sizes {
        // √N distinct groups: the view stays small relative to the base
        // table, as in aggregation dashboards.
        let num_groups = (base as f64).sqrt().ceil() as usize;
        let (mut ivm, mut existing, mut w) =
            groups_session(IvmFlags::paper_defaults(), num_groups, base, 0xE1);
        for &delta in delta_sizes {
            let view_sql = ivm.view("query_groups").unwrap().artifacts.view_sql.clone();
            let mut incremental = Duration::MAX;
            let mut recompute = Duration::MAX;
            for _ in 0..E1_REPS {
                let batch = w.delta_batch(delta, 0.7, &mut existing);
                let ((), inc) = time_once(|| apply_batch(&mut ivm, &batch));
                let (result, rec) = time_once(|| ivm.database().query(&view_sql).unwrap());
                std::hint::black_box(result.rows.len());
                incremental = incremental.min(inc);
                recompute = recompute.min(rec);
            }
            out.push(E1Row {
                base_rows: base,
                delta_rows: delta,
                incremental,
                recompute,
            });
        }
        assert!(
            ivm.check_consistency("query_groups").unwrap(),
            "E1 must stay consistent"
        );
    }
    out
}

// ---------------------------------------------------------------- E2

/// One E2 measurement.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Base-table size.
    pub base_rows: usize,
    /// Time for full view setup with the post-population ART build.
    pub setup_with_index: Duration,
    /// Time for the ART `CREATE UNIQUE INDEX` statement alone.
    pub index_build: Duration,
    /// Time for setup without any index (UNION-regroup strategy).
    pub setup_without_index: Duration,
    /// Mean refresh latency using the index (LEFT JOIN upsert).
    pub refresh_indexed: Duration,
    /// Mean refresh latency without an index (UNION regroup).
    pub refresh_unindexed: Duration,
    /// Approximate ART memory in bytes after setup.
    pub art_bytes: usize,
}

/// E2: the materialized-index (ART) overhead — "its creation only adds
/// significant overhead the first time".
pub fn e2_art_overhead(base_sizes: &[usize], delta: usize) -> Vec<E2Row> {
    let mut out = Vec::new();
    for &base in base_sizes {
        let num_groups = (base / 10).max(4);

        // Indexed path (paper defaults: ART built after population).
        let ((mut ivm_idx, mut existing, mut w), setup_with_index) =
            time_once(|| groups_session(IvmFlags::paper_defaults(), num_groups, base, 0xE2));
        // Isolate the index-build share by timing the same statement on a
        // fresh copy of the view table.
        let index_build = {
            let artifacts = ivm_idx.view("query_groups").unwrap().artifacts.clone();
            let stmt = artifacts.ddl.post_population_indexes[0]
                .replace("_ivm_idx_query_groups", "_ivm_idx_probe");
            let (_, d) = time_once(|| ivm_idx.database_mut().execute(&stmt).unwrap());
            ivm_idx
                .database_mut()
                .execute("DROP INDEX _ivm_idx_probe")
                .unwrap();
            d
        };
        let art_bytes = ivm_idx
            .database()
            .catalog()
            .table("query_groups")
            .unwrap()
            .index_memory_bytes();
        let refresh_indexed = mean_refresh(&mut ivm_idx, &mut w, &mut existing, delta, 5);

        // Unindexed path (UNION regroup).
        let flags = IvmFlags {
            upsert_strategy: UpsertStrategy::UnionRegroup,
            index_creation: IndexCreation::None,
            ..IvmFlags::paper_defaults()
        };
        let ((mut ivm_no, mut existing2, mut w2), setup_without_index) =
            time_once(|| groups_session(flags, num_groups, base, 0xE2));
        let refresh_unindexed = mean_refresh(&mut ivm_no, &mut w2, &mut existing2, delta, 5);

        out.push(E2Row {
            base_rows: base,
            setup_with_index,
            index_build,
            setup_without_index,
            refresh_indexed,
            refresh_unindexed,
            art_bytes,
        });
    }
    out
}

// ---------------------------------------------------------------- E3

/// One E3 measurement: latency of one round (write burst + analytical
/// query) per system configuration.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Configuration name.
    pub config: &'static str,
    /// Mean write-burst application time.
    pub write_time: Duration,
    /// Mean analytical-query latency after the burst.
    pub query_time: Duration,
}

/// The analytical query used by E3 (single-table so the OLTP engine can
/// also answer it).
pub const E3_QUERY: &str =
    "SELECT cust, SUM(amount) AS revenue, COUNT(*) AS n FROM orders GROUP BY cust";

const E3_VIEW: &str = "CREATE MATERIALIZED VIEW revenue AS \
     SELECT cust, SUM(amount) AS revenue, COUNT(*) AS n FROM orders GROUP BY cust";

/// E3: the 4-way cross-system comparison of §3 — pure OLAP, pure OLTP,
/// cross-system with IVM, cross-system without IVM.
pub fn e3_cross_system(
    customers: usize,
    base_orders: usize,
    burst: usize,
    rounds: usize,
) -> Vec<E3Row> {
    let mut out = Vec::new();

    // --- Pure OLAP: everything in the analytical engine.
    {
        let mut db = ivm_engine::Database::new();
        let mut w = SalesWorkload::new(customers, 0xE3);
        for stmt in SalesWorkload::ddl() {
            db.execute(stmt).unwrap();
        }
        for stmt in w.customer_statements() {
            db.execute(&stmt).unwrap();
        }
        for stmt in w.order_statements(base_orders) {
            db.execute(&stmt).unwrap();
        }
        let mut write_total = Duration::ZERO;
        let mut query_total = Duration::ZERO;
        for _ in 0..rounds {
            let stmts = w.order_statements(burst);
            let ((), wt) = time_once(|| {
                for s in &stmts {
                    db.execute(s).unwrap();
                }
            });
            let (r, qt) = time_once(|| db.query(E3_QUERY).unwrap());
            std::hint::black_box(r.rows.len());
            write_total += wt;
            query_total += qt;
        }
        out.push(E3Row {
            config: "pure OLAP",
            write_time: write_total / rounds as u32,
            query_time: query_total / rounds as u32,
        });
    }

    // --- Pure OLTP: everything in the row store (naive analytics).
    {
        let mut pg = OltpEngine::new();
        let mut w = SalesWorkload::new(customers, 0xE3);
        for stmt in SalesWorkload::ddl() {
            pg.execute(stmt).unwrap();
        }
        for stmt in w.customer_statements() {
            pg.execute(&stmt).unwrap();
        }
        for stmt in w.order_statements(base_orders) {
            pg.execute(&stmt).unwrap();
        }
        let mut write_total = Duration::ZERO;
        let mut query_total = Duration::ZERO;
        for _ in 0..rounds {
            let stmts = w.order_statements(burst);
            let ((), wt) = time_once(|| {
                for s in &stmts {
                    pg.execute(s).unwrap();
                }
            });
            let (r, qt) = time_once(|| pg.execute(E3_QUERY).unwrap());
            std::hint::black_box(r.rows.len());
            write_total += wt;
            query_total += qt;
        }
        out.push(E3Row {
            config: "pure OLTP",
            write_time: write_total / rounds as u32,
            query_time: query_total / rounds as u32,
        });
    }

    // --- Cross-system with IVM (the OpenIVM pipeline).
    {
        let mut htap = HtapPipeline::with_defaults();
        let mut w = SalesWorkload::new(customers, 0xE3);
        for stmt in SalesWorkload::ddl() {
            htap.mirror_table(stmt).unwrap();
        }
        for stmt in w.customer_statements() {
            htap.execute_oltp(&stmt).unwrap();
        }
        for stmt in w.order_statements(base_orders) {
            htap.execute_oltp(&stmt).unwrap();
        }
        // Views must see the already-committed data: create after a ship is
        // impossible (no delta tables yet), so create first on empty OLAP,
        // then ship the backlog.
        htap.create_materialized_view(E3_VIEW).unwrap();
        htap.sync_and_refresh().unwrap();
        let mut write_total = Duration::ZERO;
        let mut query_total = Duration::ZERO;
        for _ in 0..rounds {
            let stmts = w.order_statements(burst);
            let ((), wt) = time_once(|| {
                for s in &stmts {
                    htap.execute_oltp(s).unwrap();
                }
            });
            let (r, qt) = time_once(|| htap.query_view("revenue").unwrap());
            std::hint::black_box(r.rows.len());
            write_total += wt;
            query_total += qt;
        }
        assert!(htap.check_consistency().unwrap().is_consistent());
        out.push(E3Row {
            config: "cross-system + IVM",
            write_time: write_total / rounds as u32,
            query_time: query_total / rounds as u32,
        });
    }

    // --- Cross-system without IVM: ship deltas, recompute from the mirror.
    {
        let mut pg = OltpEngine::new();
        let mut olap = ivm_engine::Database::new();
        let mut w = SalesWorkload::new(customers, 0xE3);
        for stmt in SalesWorkload::ddl() {
            pg.execute(stmt).unwrap();
            olap.execute(stmt).unwrap();
        }
        pg.create_capture_trigger("orders").unwrap();
        pg.create_capture_trigger("customers").unwrap();
        for stmt in w.customer_statements() {
            pg.execute(&stmt).unwrap();
        }
        for stmt in w.order_statements(base_orders) {
            pg.execute(&stmt).unwrap();
        }
        let ship = |pg: &mut OltpEngine, olap: &mut ivm_engine::Database| {
            for table in ["orders", "customers"] {
                for change in pg.drain_changes(table) {
                    let t = olap.catalog_mut().table_mut(table).unwrap();
                    if change.insertion {
                        t.insert(change.row).unwrap();
                    } else {
                        let victim = t.find_row(&change.row).expect("mirror in sync");
                        t.delete(victim).unwrap();
                    }
                }
            }
        };
        ship(&mut pg, &mut olap);
        let mut write_total = Duration::ZERO;
        let mut query_total = Duration::ZERO;
        for _ in 0..rounds {
            let stmts = w.order_statements(burst);
            let ((), wt) = time_once(|| {
                for s in &stmts {
                    pg.execute(s).unwrap();
                }
            });
            let (r, qt) = time_once(|| {
                ship(&mut pg, &mut olap);
                olap.query(E3_QUERY).unwrap()
            });
            std::hint::black_box(r.rows.len());
            write_total += wt;
            query_total += qt;
        }
        out.push(E3Row {
            config: "cross-system, no IVM",
            write_time: write_total / rounds as u32,
            query_time: query_total / rounds as u32,
        });
    }

    out
}

// ---------------------------------------------------------------- E4

/// One E4 measurement.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Number of distinct groups (≈ view size).
    pub num_groups: usize,
    /// Strategy under test.
    pub strategy: UpsertStrategy,
    /// Mean refresh latency for a fixed delta batch.
    pub refresh: Duration,
}

/// E4: the Step-2 upsert-strategy ablation (LEFT JOIN vs UNION-regroup vs
/// FULL OUTER JOIN) across view sizes.
pub fn e4_upsert_strategies(base_rows: usize, group_counts: &[usize], delta: usize) -> Vec<E4Row> {
    let mut out = Vec::new();
    for &num_groups in group_counts {
        for strategy in [
            UpsertStrategy::LeftJoinUpsert,
            UpsertStrategy::UnionRegroup,
            UpsertStrategy::FullOuterJoin,
            UpsertStrategy::Adaptive,
        ] {
            let flags = IvmFlags {
                upsert_strategy: strategy,
                index_creation: if strategy.needs_index() {
                    IndexCreation::AfterPopulate
                } else {
                    IndexCreation::None
                },
                ..IvmFlags::paper_defaults()
            };
            let (mut ivm, mut existing, mut w) = groups_session(flags, num_groups, base_rows, 0xE4);
            let refresh = mean_refresh(&mut ivm, &mut w, &mut existing, delta, 5);
            assert!(ivm.check_consistency("query_groups").unwrap());
            out.push(E4Row {
                num_groups,
                strategy,
                refresh,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- E5

/// One E5 measurement.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Propagation batch size (0 = lazy: a single refresh at read time).
    pub batch_size: usize,
    /// Total time to apply all changes and read the view once.
    pub total: Duration,
    /// Number of maintenance runs the mode triggered.
    pub maintenance_runs: usize,
}

/// E5: the batching trade-off of §1 — "batching changes together can
/// amortize part of this cost but comes at the price of reduced recency".
pub fn e5_batching(base_rows: usize, changes: usize, batch_sizes: &[usize]) -> Vec<E5Row> {
    let mut out = Vec::new();
    for &batch in batch_sizes {
        let mode = if batch == 0 {
            PropagationMode::Lazy
        } else if batch == 1 {
            PropagationMode::Eager
        } else {
            PropagationMode::Batch(batch)
        };
        let flags = IvmFlags {
            propagation: mode,
            ..IvmFlags::paper_defaults()
        };
        let num_groups = (base_rows / 10).max(4);
        let (mut ivm, mut existing, mut w) = groups_session(flags, num_groups, base_rows, 0xE5);
        let deltas: Vec<GroupChange> = w.delta_batch(changes, 0.7, &mut existing);
        let ((), total) = time_once(|| {
            for c in &deltas {
                let pairs = vec![(
                    vec![
                        Value::from(c.group_index.clone()),
                        Value::Integer(c.group_value),
                    ],
                    c.insertion,
                )];
                ivm.ingest_deltas("groups", &pairs).unwrap();
            }
            // Reading the view reconciles whatever is still pending.
            std::hint::black_box(ivm.query_view("query_groups").unwrap().rows.len());
        });
        out.push(E5Row {
            batch_size: batch,
            total,
            maintenance_runs: ivm.stats().maintenance_runs,
        });
    }
    out
}

// ---------------------------------------------------------------- E-parallel

/// One E-parallel measurement.
#[derive(Debug, Clone)]
pub struct EParallelRow {
    /// Executor worker threads.
    pub workers: usize,
    /// Base-table size.
    pub base_rows: usize,
    /// Delta batch size for the propagation measurement.
    pub delta_rows: usize,
    /// Full view recomputation (scan + aggregate over the whole base
    /// table) — the scan-heavy pipeline the morsel scheduler targets.
    pub recompute: Duration,
    /// Large-delta propagation (ingest + refresh scripts).
    pub propagate: Duration,
}

/// E-parallel: morsel-driven multi-core scaling. Measures full view
/// recomputation and large-delta propagation on the Listing-1 workload at
/// each worker count (best of 3 per cell). Worker count 1 is the serial
/// operator tree — the same code path as before the parallel subsystem.
pub fn eparallel_scaling(base_rows: usize, delta: usize, workers: &[usize]) -> Vec<EParallelRow> {
    let mut out = Vec::new();
    for &w in workers {
        let num_groups = (base_rows as f64).sqrt().ceil() as usize;
        let (mut ivm, mut existing, mut wl) =
            groups_session(IvmFlags::paper_defaults(), num_groups, base_rows, 0xEAA);
        ivm.set_parallelism(w);
        let view_sql = ivm.view("query_groups").unwrap().artifacts.view_sql.clone();
        let mut recompute = Duration::MAX;
        for _ in 0..3 {
            let (r, d) = time_once(|| ivm.database().query(&view_sql).unwrap());
            std::hint::black_box(r.rows.len());
            recompute = recompute.min(d);
        }
        let mut propagate = Duration::MAX;
        for _ in 0..3 {
            let batch = wl.delta_batch(delta, 0.7, &mut existing);
            let ((), d) = time_once(|| apply_batch(&mut ivm, &batch));
            propagate = propagate.min(d);
        }
        assert!(
            ivm.check_consistency("query_groups").unwrap(),
            "E-parallel must stay consistent at {w} workers"
        );
        out.push(EParallelRow {
            workers: w,
            base_rows,
            delta_rows: delta,
            recompute,
            propagate,
        });
    }
    out
}

// ---------------------------------------------------------------- E-hash

/// One E-hash measurement.
#[derive(Debug, Clone)]
pub struct EHashRow {
    /// Key-distribution variant under test.
    pub variant: &'static str,
    /// Fact-table size.
    pub fact_rows: usize,
    /// Result rows (≈ distinct GROUP BY keys).
    pub out_rows: usize,
    /// Wide two-dimension join + GROUP BY latency.
    pub join_group: Duration,
    /// `SELECT DISTINCT` over the fact join keys.
    pub distinct: Duration,
    /// Rows that took the typed columnar key path across the cell's
    /// queries (`ivm_engine::typed_path_stats`).
    pub typed_rows: u64,
    /// Rows that fell back to `Vec<Value>` key compares. Integer-keyed
    /// workloads like this one must report 0 — a non-zero value means
    /// the typed path silently disengaged.
    pub fallback_rows: u64,
}

/// The E-hash query: a wide multi-join (two dimension tables) feeding a
/// GROUP BY — every hash structure in the engine on one path (join
/// builds, probes, and the aggregation group table).
pub const EHASH_QUERY: &str = "SELECT fact.k, SUM(fact.v + d1.w) AS s, COUNT(*) AS n \
     FROM fact JOIN d1 ON fact.a = d1.id JOIN d2 ON fact.b = d2.id \
     GROUP BY fact.k";

/// E-hash: the hash-operator stress scenario behind the vectorized hash
/// kernels + flat open-addressing tables. Two variants: `unique` (every
/// group key distinct — high-cardinality GROUP BY, chain-free joins) and
/// `duplicate` (few group keys, duplicate dimension keys — long candidate
/// chains, duplicate-heavy group folds). Best of 3 per cell.
pub fn ehash_hash_operators(fact_sizes: &[usize]) -> Vec<EHashRow> {
    let mut out = Vec::new();
    for &n in fact_sizes {
        for variant in ["unique", "duplicate"] {
            let mut db = ivm_engine::Database::new();
            db.execute("CREATE TABLE fact (k INTEGER, a INTEGER, b INTEGER, v INTEGER)")
                .unwrap();
            db.execute("CREATE TABLE d1 (id INTEGER, w INTEGER)")
                .unwrap();
            db.execute("CREATE TABLE d2 (id INTEGER, w INTEGER)")
                .unwrap();
            // `duplicate` repeats every dimension id 4× → candidate
            // chains on the build side (4-way probe fan-out per join).
            let (dim_ids, reps) = if variant == "unique" {
                ((n / 8).max(16), 1)
            } else {
                ((n / 32).max(16), 4)
            };
            // Deterministic multiplicative-hash spread; no RNG needed.
            let spread =
                |i: usize, m: usize| ((i as u64).wrapping_mul(2654435761) % m as u64) as i64;
            {
                let t = db.catalog_mut().table_mut("fact").unwrap();
                for i in 0..n {
                    let k = if variant == "unique" {
                        i as i64
                    } else {
                        spread(i, (n / 64).max(4))
                    };
                    t.insert(vec![
                        Value::Integer(k),
                        Value::Integer(spread(i, dim_ids)),
                        Value::Integer(spread(i + 1, dim_ids)),
                        Value::Integer((i % 1000) as i64),
                    ])
                    .unwrap();
                }
            }
            for name in ["d1", "d2"] {
                let t = db.catalog_mut().table_mut(name).unwrap();
                for id in 0..dim_ids {
                    for r in 0..reps {
                        t.insert(vec![
                            Value::Integer(id as i64),
                            Value::Integer((id * 7 + r) as i64),
                        ])
                        .unwrap();
                    }
                }
            }
            ivm_engine::reset_typed_path_stats();
            let mut join_group = Duration::MAX;
            let mut out_rows = 0;
            for _ in 0..3 {
                let (r, d) = time_once(|| db.query(EHASH_QUERY).unwrap());
                out_rows = r.rows.len();
                std::hint::black_box(r.rows.len());
                join_group = join_group.min(d);
            }
            let mut distinct = Duration::MAX;
            for _ in 0..3 {
                let (r, d) = time_once(|| db.query("SELECT DISTINCT a, b FROM fact").unwrap());
                std::hint::black_box(r.rows.len());
                distinct = distinct.min(d);
            }
            let (typed_rows, fallback_rows) = ivm_engine::typed_path_stats();
            out.push(EHashRow {
                variant,
                fact_rows: n,
                out_rows,
                join_group,
                distinct,
                typed_rows,
                fallback_rows,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- E-spill

/// One E-spill measurement.
#[derive(Debug, Clone)]
pub struct ESpillRow {
    /// Budget label ("unbounded", "ws/2", "ws/8").
    pub budget_label: &'static str,
    /// Budget in bytes (`None` = unbounded).
    pub budget_bytes: Option<usize>,
    /// Worker threads the run executed with.
    pub workers: usize,
    /// Fact-table size.
    pub fact_rows: usize,
    /// Estimated working set in bytes (fact rows × row footprint).
    pub working_set: usize,
    /// Result rows (≈ distinct GROUP BY keys).
    pub out_rows: usize,
    /// Join + high-cardinality GROUP BY latency.
    pub join_group: Duration,
    /// Spill counters observed for the run.
    pub stats: ivm_engine::SpillStats,
}

/// The E-spill query: a join feeding a high-cardinality GROUP BY — the
/// two biggest memory consumers (join build + group table) on one path.
pub const ESPILL_QUERY: &str = "SELECT fact.k, SUM(fact.v + d1.w) AS s, COUNT(*) AS n \
     FROM fact JOIN d1 ON fact.a = d1.id \
     GROUP BY fact.k";

/// Approximate per-row working-set footprint the memory budget accounts
/// (Value enum per column + row vector header + spiller tuple tags).
const ESPILL_ROW_BYTES: usize = 200;

/// E-spill: out-of-core execution under shrinking memory budgets × a
/// worker sweep. The same 1M-row join + high-cardinality GROUP BY runs
/// unbounded, at half the working set, and at an eighth of it, each at
/// every requested parallelism; results must be identical to the
/// serial unbounded baseline while the constrained runs spill radix
/// partitions to disk (counters recorded per run).
pub fn espill_out_of_core(fact_sizes: &[usize], workers: &[usize]) -> Vec<ESpillRow> {
    let mut out = Vec::new();
    for &n in fact_sizes {
        let working_set = n * ESPILL_ROW_BYTES;
        let budgets: [(&'static str, Option<usize>); 3] = [
            ("unbounded", None),
            ("ws/2", Some(working_set / 2)),
            ("ws/8", Some(working_set / 8)),
        ];
        let mut baseline: Option<Vec<Vec<Value>>> = None;
        for (budget_label, budget_bytes) in budgets {
            for &w in workers {
                let mut db = ivm_engine::Database::new();
                db.set_parallelism(w);
                db.set_memory_budget(budget_bytes);
                db.execute("CREATE TABLE fact (k INTEGER, a INTEGER, v INTEGER)")
                    .unwrap();
                db.execute("CREATE TABLE d1 (id INTEGER, w INTEGER)")
                    .unwrap();
                let dim_ids = (n / 8).max(16);
                let spread =
                    |i: usize, m: usize| ((i as u64).wrapping_mul(2654435761) % m as u64) as i64;
                {
                    let t = db.catalog_mut().table_mut("fact").unwrap();
                    for i in 0..n {
                        // Unique k per row: the group table is as large as the
                        // input — exactly what must spill gracefully.
                        t.insert(vec![
                            Value::Integer(i as i64),
                            Value::Integer(spread(i, dim_ids)),
                            Value::Integer((i % 1000) as i64),
                        ])
                        .unwrap();
                    }
                }
                {
                    let t = db.catalog_mut().table_mut("d1").unwrap();
                    for id in 0..dim_ids {
                        t.insert(vec![
                            Value::Integer(id as i64),
                            Value::Integer((id * 7) as i64),
                        ])
                        .unwrap();
                    }
                }
                let (result, join_group) = time_once(|| db.query(ESPILL_QUERY).unwrap());
                let out_rows = result.rows.len();
                match &baseline {
                    None => baseline = Some(result.rows),
                    Some(expect) => assert_eq!(
                        expect, &result.rows,
                        "E-spill at {budget_label} workers={w} diverged from the baseline"
                    ),
                }
                out.push(ESpillRow {
                    budget_label,
                    budget_bytes,
                    workers: w,
                    fact_rows: n,
                    working_set,
                    out_rows,
                    join_group,
                    stats: db.spill_stats(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- E-durable

/// One E-durable measurement.
#[derive(Debug, Clone)]
pub struct EDurableRow {
    /// `"memory"` (no WAL), `"durable"` (every commit fsync'd to the
    /// WAL), or `"recovery"` (reopen after a crash).
    pub mode: &'static str,
    /// Base-table rows loaded before timing.
    pub base_rows: usize,
    /// Delta rows per ingest batch.
    pub delta_rows: usize,
    /// Ingest+refresh batches applied; for recovery rows, the batches
    /// sitting uncheckpointed in the replayed WAL.
    pub batches: usize,
    /// Wall time: the full ingest+refresh loop for memory/durable rows,
    /// the reopen (replay + recovery checkpoint) for recovery rows.
    pub elapsed: Duration,
    /// WAL redo records the workload logged (durable rows only).
    pub wal_records: u64,
    /// fsyncs the workload issued (durable rows only).
    pub wal_syncs: u64,
    /// WAL bytes: appended by the workload (durable rows) or scanned on
    /// reopen (recovery rows).
    pub wal_bytes: u64,
    /// Committed records replayed on reopen (recovery rows only).
    pub replayed_records: u64,
    /// WAL segment rotations during the workload (durable rows only).
    pub wal_rotations: u64,
    /// Live WAL segment files when the measurement ended.
    pub wal_segments: u64,
    /// Transient-I/O retries absorbed during the measurement.
    pub io_retries: u64,
    /// Whether the log ended the run poisoned (read-only degraded mode);
    /// always false in a healthy bench run.
    pub wal_poisoned: bool,
}

/// Scratch data directory for the durable runs, removed on drop so bench
/// runs leave nothing behind.
struct BenchDataDir(std::path::PathBuf);

impl BenchDataDir {
    fn new(tag: &str) -> BenchDataDir {
        let dir = std::env::temp_dir().join(format!("openivm-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        BenchDataDir(dir)
    }
}

impl Drop for BenchDataDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// [`groups_session`] against a durable data directory: the same bulk
/// load and Listing-1 view, then a checkpoint so the WAL carries only
/// what the measured workload writes.
fn durable_groups_session(
    dir: &std::path::Path,
    num_groups: usize,
    base_rows: usize,
    seed: u64,
) -> (IvmSession, Vec<(String, i64)>, GroupsWorkload) {
    let mut w = GroupsWorkload::new(num_groups, seed);
    let rows = w.base_rows(base_rows);
    let mut ivm = IvmSession::open(dir, IvmFlags::paper_defaults()).unwrap();
    ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    {
        let table = ivm
            .database_mut()
            .catalog_mut()
            .table_mut("groups")
            .unwrap();
        for (g, v) in &rows {
            table
                .insert(vec![Value::from(g.clone()), Value::Integer(*v)])
                .unwrap();
        }
    }
    ivm.execute(LISTING_1_VIEW).unwrap();
    ivm.checkpoint().unwrap();
    (ivm, rows, w)
}

/// E-durable: the write-ahead-log toll on ingest+refresh, and recovery
/// time as a function of log length. The same delta workload runs once
/// in memory and once against a durable directory (every commit
/// fsync'd); then fresh directories "crash" (drop without `close`) after
/// each `batch_counts` entry of uncheckpointed batches and the reopen —
/// committed-prefix replay plus the recovery checkpoint — is timed.
pub fn edurable_durability(
    base_rows: usize,
    delta: usize,
    batch_counts: &[usize],
) -> Vec<EDurableRow> {
    let num_groups = (base_rows as f64).sqrt().ceil() as usize;
    let batches = batch_counts.iter().copied().max().unwrap_or(0);
    let mut out = Vec::new();

    // In-memory baseline: identical workload, no durability machinery.
    {
        let (mut ivm, mut existing, mut w) =
            groups_session(IvmFlags::paper_defaults(), num_groups, base_rows, 0xD4);
        let ((), elapsed) = time_once(|| {
            for _ in 0..batches {
                let batch = w.delta_batch(delta, 0.7, &mut existing);
                apply_batch(&mut ivm, &batch);
            }
        });
        out.push(EDurableRow {
            mode: "memory",
            base_rows,
            delta_rows: delta,
            batches,
            elapsed,
            wal_records: 0,
            wal_syncs: 0,
            wal_bytes: 0,
            replayed_records: 0,
            wal_rotations: 0,
            wal_segments: 0,
            io_retries: 0,
            wal_poisoned: false,
        });
    }

    // Durable: same workload with logical redo logging + group commit.
    {
        let dir = BenchDataDir::new("edurable-ingest");
        let (mut ivm, mut existing, mut w) =
            durable_groups_session(&dir.0, num_groups, base_rows, 0xD4);
        let before = ivm.database().wal_stats().unwrap();
        let ((), elapsed) = time_once(|| {
            for _ in 0..batches {
                let batch = w.delta_batch(delta, 0.7, &mut existing);
                apply_batch(&mut ivm, &batch);
            }
        });
        let after = ivm.database().wal_stats().unwrap();
        ivm.close().unwrap();
        out.push(EDurableRow {
            mode: "durable",
            base_rows,
            delta_rows: delta,
            batches,
            elapsed,
            wal_records: after.records - before.records,
            wal_syncs: after.syncs - before.syncs,
            wal_bytes: after.bytes_written - before.bytes_written,
            replayed_records: 0,
            wal_rotations: after.rotations - before.rotations,
            wal_segments: after.segments,
            io_retries: after.retries - before.retries,
            wal_poisoned: after.poisoned,
        });
    }

    // Recovery time vs log length: crash with k uncheckpointed batches
    // in the WAL, then time the reopen that replays them.
    for &k in batch_counts {
        let dir = BenchDataDir::new(&format!("edurable-rec{k}"));
        {
            let (mut ivm, mut existing, mut w) =
                durable_groups_session(&dir.0, num_groups, base_rows, 0xD4);
            for _ in 0..k {
                let batch = w.delta_batch(delta, 0.7, &mut existing);
                apply_batch(&mut ivm, &batch);
            }
            // Crash: drop without close() so reopen must replay the WAL.
        }
        let (ivm, elapsed) =
            time_once(|| IvmSession::open(&dir.0, IvmFlags::paper_defaults()).unwrap());
        let rec = ivm.database().recovery_stats().unwrap();
        let wal = ivm.database().wal_stats().unwrap();
        out.push(EDurableRow {
            mode: "recovery",
            base_rows,
            delta_rows: delta,
            batches: k,
            elapsed,
            wal_records: 0,
            wal_syncs: 0,
            wal_bytes: rec.wal_bytes,
            replayed_records: rec.replayed_records,
            wal_rotations: wal.rotations,
            wal_segments: wal.segments,
            io_retries: wal.retries,
            wal_poisoned: wal.poisoned,
        });
    }
    out
}

// ---------------------------------------------------------------- E6

/// One E6 measurement.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// View-class label.
    pub class: &'static str,
    /// Mean compile latency (parse → plan → rewrite → emit).
    pub compile: Duration,
    /// Number of setup statements emitted.
    pub setup_statements: usize,
    /// Number of maintenance statements emitted.
    pub maintenance_statements: usize,
}

/// E6: SQL-to-SQL compilation cost per supported view class.
pub fn e6_compile_time(iters: usize) -> Vec<E6Row> {
    let mut db = ivm_engine::Database::new();
    db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
        .unwrap();
    let cases: [(&'static str, &'static str); 6] = [
        (
            "simple_projection",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index, group_value \
             FROM groups WHERE group_value > 10",
        ),
        (
            "group_aggregate(SUM)",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index, SUM(group_value) AS t \
             FROM groups GROUP BY group_index",
        ),
        (
            "group_aggregate(AVG)",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index, AVG(group_value) AS m \
             FROM groups GROUP BY group_index",
        ),
        (
            "group_aggregate(MIN/MAX)",
            "CREATE MATERIALIZED VIEW v AS SELECT group_index, MIN(group_value) AS lo, \
             MAX(group_value) AS hi FROM groups GROUP BY group_index",
        ),
        (
            "join_projection",
            "CREATE MATERIALIZED VIEW v AS SELECT customers.name, orders.amount \
             FROM orders JOIN customers ON orders.cust = customers.id",
        ),
        (
            "join_aggregate",
            "CREATE MATERIALIZED VIEW v AS SELECT customers.name, SUM(orders.amount) AS t \
             FROM orders JOIN customers ON orders.cust = customers.id GROUP BY customers.name",
        ),
    ];
    let compiler = ivm_core::IvmCompiler::new();
    let flags = IvmFlags::paper_defaults();
    let mut out = Vec::new();
    for (class, sql) in cases {
        let artifacts = compiler.compile_sql(sql, db.catalog(), &flags).unwrap();
        let compile = time_mean(iters, || {
            std::hint::black_box(compiler.compile_sql(sql, db.catalog(), &flags).unwrap());
        });
        out.push(E6Row {
            class,
            compile,
            setup_statements: artifacts.setup_statements().len(),
            maintenance_statements: artifacts.maintenance_statements().len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_smoke() {
        let rows = e1_ivm_vs_recompute(&[500], &[10]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].incremental.as_nanos() > 0);
    }

    #[test]
    fn e2_smoke() {
        let rows = e2_art_overhead(&[500], 20);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].art_bytes > 0);
    }

    #[test]
    fn e3_smoke() {
        let rows = e3_cross_system(10, 200, 20, 2);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn e4_smoke() {
        let rows = e4_upsert_strategies(400, &[8], 20);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn e5_smoke() {
        let rows = e5_batching(300, 30, &[1, 10, 0]);
        assert_eq!(rows.len(), 3);
        // Eager runs maintenance per change; lazy exactly once.
        assert!(rows[0].maintenance_runs > rows[2].maintenance_runs);
        assert_eq!(rows[2].maintenance_runs, 1);
    }

    #[test]
    fn e6_smoke() {
        let rows = e6_compile_time(3);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn ehash_smoke() {
        let rows = ehash_hash_operators(&[2_000]);
        assert_eq!(rows.len(), 2);
        let unique = rows.iter().find(|r| r.variant == "unique").unwrap();
        let dup = rows.iter().find(|r| r.variant == "duplicate").unwrap();
        // Unique keys: one group per fact row; duplicate variant collapses.
        assert_eq!(unique.out_rows, 2_000);
        assert!(dup.out_rows < unique.out_rows);
        assert!(rows.iter().all(|r| r.join_group.as_nanos() > 0));
        assert!(rows.iter().all(|r| r.distinct.as_nanos() > 0));
    }

    #[test]
    fn espill_smoke() {
        let rows = espill_out_of_core(&[3_000], &[1, 2]);
        assert_eq!(rows.len(), 6);
        let unbounded = &rows[0];
        assert_eq!(unbounded.budget_bytes, None);
        assert_eq!(unbounded.workers, 1);
        assert!(!unbounded.stats.spilled(), "unbounded must not spill");
        assert_eq!(unbounded.out_rows, 3_000);
        for tight in &rows[4..] {
            assert_eq!(tight.budget_label, "ws/8");
            assert!(
                tight.stats.spilled() && tight.stats.spilled_bytes > 0,
                "an eighth of the working set must spill (workers={}): {:?}",
                tight.workers,
                tight.stats
            );
        }
        // espill_out_of_core itself asserts result equality per run,
        // parallel runs included.
    }

    #[test]
    fn edurable_smoke() {
        let rows = edurable_durability(500, 20, &[1, 3]);
        assert_eq!(rows.len(), 4); // memory + durable + 2 recovery points
        let durable = rows.iter().find(|r| r.mode == "durable").unwrap();
        assert!(durable.wal_records > 0 && durable.wal_syncs > 0);
        let rec: Vec<&EDurableRow> = rows.iter().filter(|r| r.mode == "recovery").collect();
        assert_eq!(rec.len(), 2);
        // More uncheckpointed batches must mean a longer log to replay.
        assert!(rec[1].replayed_records > rec[0].replayed_records);
        assert!(rows.iter().all(|r| r.elapsed.as_nanos() > 0));
    }

    #[test]
    fn eparallel_smoke() {
        let rows = eparallel_scaling(2_000, 20, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.recompute.as_nanos() > 0));
        assert!(rows.iter().all(|r| r.propagate.as_nanos() > 0));
    }
}
