//! Workload generators for the experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Listing-1 workload: `groups(group_index VARCHAR, group_value
/// INTEGER)` with a configurable number of distinct groups.
#[derive(Debug, Clone)]
pub struct GroupsWorkload {
    /// Number of distinct group keys.
    pub num_groups: usize,
    rng: StdRng,
}

/// One base-table change.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupChange {
    /// Group key, e.g. `g0042`.
    pub group_index: String,
    /// Value column.
    pub group_value: i64,
    /// Insertion (`true`) or deletion of a previously-inserted row
    /// (`false`).
    pub insertion: bool,
}

impl GroupsWorkload {
    /// Deterministic workload (fixed seed per experiment).
    pub fn new(num_groups: usize, seed: u64) -> GroupsWorkload {
        GroupsWorkload {
            num_groups,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Group key for an index.
    pub fn group_key(&self, i: usize) -> String {
        format!("g{i:06}")
    }

    /// Generate `n` base rows, uniformly spread over the groups.
    pub fn base_rows(&mut self, n: usize) -> Vec<(String, i64)> {
        (0..n)
            .map(|_| {
                let g = self.rng.gen_range(0..self.num_groups);
                let v = self.rng.gen_range(1..100i64);
                (self.group_key(g), v)
            })
            .collect()
    }

    /// Generate a delta batch: `insert_ratio` of the rows are insertions;
    /// deletions are drawn from `existing` rows (and removed from it).
    pub fn delta_batch(
        &mut self,
        n: usize,
        insert_ratio: f64,
        existing: &mut Vec<(String, i64)>,
    ) -> Vec<GroupChange> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let do_insert = existing.is_empty() || self.rng.gen_bool(insert_ratio);
            if do_insert {
                let g = self.rng.gen_range(0..self.num_groups);
                let v = self.rng.gen_range(1..100i64);
                let row = (self.group_key(g), v);
                existing.push(row.clone());
                out.push(GroupChange {
                    group_index: row.0,
                    group_value: row.1,
                    insertion: true,
                });
            } else {
                let idx = self.rng.gen_range(0..existing.len());
                let row = existing.swap_remove(idx);
                out.push(GroupChange {
                    group_index: row.0,
                    group_value: row.1,
                    insertion: false,
                });
            }
        }
        out
    }

    /// Rows as a multi-row `INSERT INTO groups VALUES …` statement.
    pub fn insert_statement(rows: &[(String, i64)]) -> String {
        let values: Vec<String> = rows.iter().map(|(g, v)| format!("('{g}', {v})")).collect();
        format!("INSERT INTO groups VALUES {}", values.join(", "))
    }

    /// Rows as chunked INSERT statements (keeps statements parseable fast).
    pub fn insert_statements(rows: &[(String, i64)], chunk: usize) -> Vec<String> {
        rows.chunks(chunk).map(Self::insert_statement).collect()
    }
}

/// The sales/HTAP workload of the E3 experiment: an `orders` fact table
/// plus a `customers` dimension.
#[derive(Debug)]
pub struct SalesWorkload {
    /// Number of customers.
    pub num_customers: usize,
    rng: StdRng,
    next_order_id: i64,
}

impl SalesWorkload {
    /// Deterministic workload.
    pub fn new(num_customers: usize, seed: u64) -> SalesWorkload {
        SalesWorkload {
            num_customers,
            rng: StdRng::seed_from_u64(seed),
            next_order_id: 1,
        }
    }

    /// DDL for both tables.
    pub fn ddl() -> [&'static str; 2] {
        [
            "CREATE TABLE customers (id INTEGER PRIMARY KEY, name VARCHAR, region VARCHAR)",
            "CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, amount INTEGER)",
        ]
    }

    /// Customer rows.
    pub fn customer_statements(&self) -> Vec<String> {
        let regions = ["north", "south", "east", "west"];
        (0..self.num_customers)
            .map(|i| {
                format!(
                    "INSERT INTO customers VALUES ({i}, 'customer_{i}', '{}')",
                    regions[i % regions.len()]
                )
            })
            .collect()
    }

    /// Generate `n` order-insert statements.
    pub fn order_statements(&mut self, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let id = self.next_order_id;
                self.next_order_id += 1;
                let cust = self.rng.gen_range(0..self.num_customers as i64);
                let amount = self.rng.gen_range(1..500i64);
                format!("INSERT INTO orders VALUES ({id}, {cust}, {amount})")
            })
            .collect()
    }

    /// The analytical query of the demo: revenue per region.
    pub fn analytical_query() -> &'static str {
        "SELECT region, SUM(amount) AS revenue FROM sales_by_region GROUP BY region"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = GroupsWorkload::new(10, 42);
        let mut b = GroupsWorkload::new(10, 42);
        assert_eq!(a.base_rows(100), b.base_rows(100));
    }

    #[test]
    fn delta_deletions_come_from_existing() {
        let mut w = GroupsWorkload::new(5, 7);
        let mut existing = w.base_rows(50);
        // Deletions must target rows that existed at that point in the
        // batch: base rows or insertions earlier in the same batch.
        let mut live: std::collections::HashMap<(String, i64), i64> = existing
            .iter()
            .map(|r| (r.clone(), 0i64))
            .fold(std::collections::HashMap::new(), |mut m, (k, _)| {
                *m.entry(k).or_insert(0) += 1;
                m
            });
        let batch = w.delta_batch(30, 0.5, &mut existing);
        for c in &batch {
            let key = (c.group_index.clone(), c.group_value);
            let counter = live.entry(key).or_insert(0);
            if c.insertion {
                *counter += 1;
            } else {
                *counter -= 1;
                assert!(*counter >= 0, "deletion of a row that never existed");
            }
        }
        assert_eq!(batch.len(), 30);
    }

    #[test]
    fn insert_statement_shape() {
        let stmt = GroupsWorkload::insert_statement(&[("g1".into(), 5)]);
        assert_eq!(stmt, "INSERT INTO groups VALUES ('g1', 5)");
        let chunks = GroupsWorkload::insert_statements(&[("a".into(), 1), ("b".into(), 2)], 1);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn sales_statements_parse() {
        let mut w = SalesWorkload::new(4, 1);
        for stmt in w
            .customer_statements()
            .iter()
            .chain(w.order_statements(5).iter())
        {
            ivm_sql::parse_statement(stmt).unwrap();
        }
    }
}
