//! View-query analysis: classification and feature validation.
//!
//! The compiler "takes in input a database schema and view definition" (§1);
//! this module checks the view against the supported IVM subset and
//! extracts everything later stages need (group key, aggregates, base
//! tables). The paper's prototype supports single-table projections,
//! filters, grouping, SUM and COUNT, with MIN/MAX and JOIN "in progress";
//! we implement those extensions too, with documented restrictions.

use ivm_engine::expr::{AggFunc, BoundExpr};
use ivm_engine::optimizer::optimize;
use ivm_engine::planner::{plan_query, LogicalPlan};
use ivm_engine::{Catalog, DataType};
use ivm_sql::ast::{JoinKind, Query, SetExpr};

use crate::error::IvmError;

/// The class of a supported view query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewClass {
    /// `SELECT proj FROM T [WHERE …]` — maintained as a Z-set with a
    /// hidden weight column.
    SimpleProjection,
    /// `SELECT keys, aggs FROM T [WHERE …] GROUP BY keys`.
    GroupAggregate,
    /// Projection over an INNER equi-join of two tables (extension).
    JoinProjection,
    /// Aggregation over an INNER equi-join of two tables (extension).
    JoinAggregate,
}

impl ViewClass {
    /// Stable name stored in metadata tables.
    pub fn name(&self) -> &'static str {
        match self {
            ViewClass::SimpleProjection => "simple_projection",
            ViewClass::GroupAggregate => "group_aggregate",
            ViewClass::JoinProjection => "join_projection",
            ViewClass::JoinAggregate => "join_aggregate",
        }
    }
}

/// Where a visible view column comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputSource {
    /// The i-th GROUP BY key.
    Group(usize),
    /// The i-th aggregate.
    Agg(usize),
    /// The i-th projection expression (simple/join-projection views).
    Plain(usize),
}

/// One visible column of the materialized view.
#[derive(Debug, Clone)]
pub struct OutputCol {
    /// Column name in the view table.
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Provenance.
    pub source: OutputSource,
}

/// One aggregate of the view.
#[derive(Debug, Clone)]
pub struct AggInfo {
    /// The aggregate function.
    pub func: AggFunc,
    /// Visible output column name.
    pub name: String,
    /// Visible output type.
    pub ty: DataType,
}

/// Everything later compiler stages need to know about a view.
#[derive(Debug, Clone)]
pub struct ViewAnalysis {
    /// View (and materialized table) name.
    pub view_name: String,
    /// Query class.
    pub class: ViewClass,
    /// Optimized logical plan of the defining query.
    pub plan: LogicalPlan,
    /// Base tables scanned (1 or 2).
    pub base_tables: Vec<String>,
    /// Visible output columns in projection order.
    pub output: Vec<OutputCol>,
    /// Aggregates (empty for projection views).
    pub aggs: Vec<AggInfo>,
    /// Number of GROUP BY keys in the aggregate (0 for projection views).
    pub group_arity: usize,
}

impl ViewAnalysis {
    /// Whether the view contains MIN or MAX (needs the recompute path).
    pub fn has_min_max(&self) -> bool {
        self.aggs
            .iter()
            .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max))
    }

    /// Whether the view contains AVG (needs hidden sum/count columns).
    pub fn has_avg(&self) -> bool {
        self.aggs.iter().any(|a| a.func == AggFunc::Avg)
    }

    /// Names of the view's key columns: group keys for aggregates, every
    /// visible column for projection views.
    pub fn key_columns(&self) -> Vec<String> {
        match self.class {
            ViewClass::GroupAggregate | ViewClass::JoinAggregate => self
                .output
                .iter()
                .filter(|c| matches!(c.source, OutputSource::Group(_)))
                .map(|c| c.name.clone())
                .collect(),
            _ => self.output.iter().map(|c| c.name.clone()).collect(),
        }
    }

    /// Visible group-key columns in group-index order (aggregate views).
    pub fn group_columns(&self) -> Vec<&OutputCol> {
        let mut cols: Vec<&OutputCol> = self
            .output
            .iter()
            .filter(|c| matches!(c.source, OutputSource::Group(_)))
            .collect();
        cols.sort_by_key(|c| match c.source {
            OutputSource::Group(i) => i,
            _ => usize::MAX,
        });
        cols
    }
}

/// Analyze a `CREATE MATERIALIZED VIEW` body.
pub fn analyze_view(
    view_name: &str,
    query: &Query,
    catalog: &Catalog,
) -> Result<ViewAnalysis, IvmError> {
    // AST-level restrictions first (clearer diagnostics than plan shapes).
    if !query.ctes.is_empty() {
        return Err(IvmError::unsupported("WITH clauses in view definitions"));
    }
    if !query.order_by.is_empty() || query.limit.is_some() || query.offset.is_some() {
        return Err(IvmError::unsupported(
            "ORDER BY / LIMIT in view definitions",
        ));
    }
    let SetExpr::Select(select) = &query.body else {
        return Err(IvmError::unsupported("set operations in view definitions"));
    };
    if select.distinct {
        return Err(IvmError::unsupported("SELECT DISTINCT view definitions"));
    }
    if select.having.is_some() {
        return Err(IvmError::unsupported("HAVING in view definitions"));
    }

    let plan = optimize(plan_query(query, catalog).map_err(|e| IvmError::Engine(e.to_string()))?);

    // Peel the top projection.
    let LogicalPlan::Project {
        input,
        exprs,
        schema,
    } = &plan
    else {
        return Err(IvmError::unsupported("view must be a SELECT projection"));
    };

    // Duplicate output names would collide in the materialized table.
    {
        let mut names = schema.names();
        names.sort();
        names.dedup();
        if names.len() != schema.len() {
            return Err(IvmError::unsupported(
                "duplicate output column names; add AS aliases",
            ));
        }
    }

    let (agg_node, source) = match input.as_ref() {
        LogicalPlan::Aggregate {
            input: agg_input,
            group,
            aggs,
            ..
        } => (Some((group, aggs)), agg_input.as_ref()),
        other => (None, other),
    };

    let base_tables = validate_source(source)?;
    let join_view = base_tables.len() == 2;

    match agg_node {
        None => {
            // Simple / join projection.
            let output = schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| OutputCol {
                    name: c.name.clone(),
                    ty: c.ty,
                    source: OutputSource::Plain(i),
                })
                .collect();
            Ok(ViewAnalysis {
                view_name: view_name.to_string(),
                class: if join_view {
                    ViewClass::JoinProjection
                } else {
                    ViewClass::SimpleProjection
                },
                plan: plan.clone(),
                base_tables,
                output,
                aggs: Vec::new(),
                group_arity: 0,
            })
        }
        Some((group, aggs)) => {
            if group.is_empty() {
                return Err(IvmError::unsupported(
                    "global aggregates (no GROUP BY) — add a grouping key",
                ));
            }
            // The projection above an aggregate must be pure column refs so
            // the view table layout mirrors the aggregate output.
            let mut output = Vec::with_capacity(exprs.len());
            let mut agg_infos: Vec<Option<AggInfo>> = vec![None; aggs.len()];
            for (expr, col) in exprs.iter().zip(&schema.columns) {
                let BoundExpr::Column { index, .. } = expr else {
                    return Err(IvmError::unsupported(
                        "expressions over aggregate results in the projection",
                    ));
                };
                let source = if *index < group.len() {
                    OutputSource::Group(*index)
                } else {
                    let agg_idx = *index - group.len();
                    agg_infos[agg_idx] = Some(AggInfo {
                        func: aggs[agg_idx].func,
                        name: col.name.clone(),
                        ty: col.ty,
                    });
                    OutputSource::Agg(agg_idx)
                };
                output.push(OutputCol {
                    name: col.name.clone(),
                    ty: col.ty,
                    source,
                });
            }
            // Every group key must be projected (it forms the upsert key).
            for gi in 0..group.len() {
                if !output.iter().any(|c| c.source == OutputSource::Group(gi)) {
                    return Err(IvmError::unsupported(
                        "every GROUP BY key must appear in the SELECT list",
                    ));
                }
            }
            let mut infos = Vec::with_capacity(aggs.len());
            for (i, (info, agg)) in agg_infos.into_iter().zip(aggs).enumerate() {
                let info = info.ok_or_else(|| {
                    IvmError::unsupported(format!("aggregate #{i} is computed but not projected"))
                })?;
                if agg.distinct {
                    return Err(IvmError::unsupported(
                        "DISTINCT aggregates cannot be maintained incrementally",
                    ));
                }
                infos.push(info);
            }
            let has_min_max = infos
                .iter()
                .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max));
            if has_min_max {
                if join_view {
                    return Err(IvmError::unsupported(
                        "MIN/MAX over join views (recompute path needs a single table)",
                    ));
                }
                if group.len() != 1 {
                    return Err(IvmError::unsupported(
                        "MIN/MAX views require exactly one GROUP BY key",
                    ));
                }
            }
            Ok(ViewAnalysis {
                view_name: view_name.to_string(),
                class: if join_view {
                    ViewClass::JoinAggregate
                } else {
                    ViewClass::GroupAggregate
                },
                plan: plan.clone(),
                base_tables,
                output,
                aggs: infos,
                group_arity: group.len(),
            })
        }
    }
}

/// Validate the source subplan: scans, filters, and at most one INNER
/// equi-join between two distinct tables.
fn validate_source(plan: &LogicalPlan) -> Result<Vec<String>, IvmError> {
    fn walk(
        plan: &LogicalPlan,
        tables: &mut Vec<String>,
        joins: &mut usize,
    ) -> Result<(), IvmError> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                if tables.contains(table) {
                    return Err(IvmError::unsupported("self-joins in view definitions"));
                }
                tables.push(table.clone());
                Ok(())
            }
            LogicalPlan::Filter { input, .. } => walk(input, tables, joins),
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                ..
            } => {
                if *kind != JoinKind::Inner {
                    return Err(IvmError::unsupported(format!(
                        "{} joins in view definitions (INNER only)",
                        kind.as_str()
                    )));
                }
                if on.is_none() {
                    return Err(IvmError::unsupported(
                        "joins without ON in view definitions",
                    ));
                }
                *joins += 1;
                walk(left, tables, joins)?;
                walk(right, tables, joins)
            }
            LogicalPlan::Dual { .. } => Err(IvmError::unsupported("views without a FROM clause")),
            other => Err(IvmError::unsupported(format!(
                "operator {:?} in view definitions",
                std::mem::discriminant(other)
            ))),
        }
    }
    let mut tables = Vec::new();
    let mut joins = 0usize;
    walk(plan, &mut tables, &mut joins)?;
    if tables.is_empty() {
        return Err(IvmError::unsupported("views must read at least one table"));
    }
    if tables.len() > 2 || joins > 1 {
        return Err(IvmError::unsupported(
            "views over more than two tables (one join)",
        ));
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_engine::Database;
    use ivm_sql::ast::Statement;

    fn catalog() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
            .unwrap();
        db
    }

    fn analyze(sql: &str) -> Result<ViewAnalysis, IvmError> {
        let db = catalog();
        let q = match ivm_sql::parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            _ => unreachable!(),
        };
        analyze_view("v", &q, db.catalog())
    }

    #[test]
    fn paper_listing_1_classifies_as_group_aggregate() {
        let a = analyze(
            "SELECT group_index, SUM(group_value) AS total_value \
             FROM groups GROUP BY group_index",
        )
        .unwrap();
        assert_eq!(a.class, ViewClass::GroupAggregate);
        assert_eq!(a.base_tables, vec!["groups"]);
        assert_eq!(a.key_columns(), vec!["group_index"]);
        assert_eq!(a.aggs.len(), 1);
        assert_eq!(a.aggs[0].func, AggFunc::Sum);
        assert_eq!(a.aggs[0].name, "total_value");
    }

    #[test]
    fn simple_projection() {
        let a = analyze(
            "SELECT group_index, group_value * 2 AS doubled FROM groups \
                         WHERE group_value > 0",
        )
        .unwrap();
        assert_eq!(a.class, ViewClass::SimpleProjection);
        assert_eq!(a.key_columns(), vec!["group_index", "doubled"]);
        assert!(a.aggs.is_empty());
    }

    #[test]
    fn join_views() {
        let a = analyze(
            "SELECT customers.name, orders.amount FROM orders \
             INNER JOIN customers ON orders.cust = customers.id",
        )
        .unwrap();
        assert_eq!(a.class, ViewClass::JoinProjection);
        assert_eq!(a.base_tables.len(), 2);
        let a = analyze(
            "SELECT customers.name, SUM(orders.amount) AS total FROM orders \
             INNER JOIN customers ON orders.cust = customers.id \
             GROUP BY customers.name",
        )
        .unwrap();
        assert_eq!(a.class, ViewClass::JoinAggregate);
    }

    #[test]
    fn min_max_restrictions() {
        let a =
            analyze("SELECT group_index, MIN(group_value) AS lo FROM groups GROUP BY group_index")
                .unwrap();
        assert!(a.has_min_max());
        // Two group keys: rejected.
        assert!(analyze(
            "SELECT group_index, group_value, MIN(group_value) AS lo \
             FROM groups GROUP BY group_index, group_value"
        )
        .is_err());
        // MIN over a join: rejected.
        assert!(analyze(
            "SELECT customers.name, MIN(orders.amount) AS lo FROM orders \
             JOIN customers ON orders.cust = customers.id GROUP BY customers.name"
        )
        .is_err());
    }

    #[test]
    fn rejected_features() {
        assert!(analyze("SELECT DISTINCT group_index FROM groups").is_err());
        assert!(analyze("SELECT group_index FROM groups ORDER BY group_index").is_err());
        assert!(analyze("SELECT group_index FROM groups LIMIT 1").is_err());
        assert!(
            analyze("SELECT group_index FROM groups UNION SELECT group_index FROM groups").is_err()
        );
        assert!(analyze(
            "SELECT group_index, SUM(group_value) AS t FROM groups \
             GROUP BY group_index HAVING SUM(group_value) > 1"
        )
        .is_err());
        assert!(
            analyze("SELECT SUM(group_value) AS t FROM groups").is_err(),
            "global agg"
        );
        assert!(analyze(
            "SELECT group_index, SUM(DISTINCT group_value) AS t FROM groups GROUP BY group_index"
        )
        .is_err());
        assert!(analyze("SELECT 1 AS one").is_err(), "no FROM");
        assert!(
            analyze(
                "SELECT a.group_index FROM groups a JOIN groups b ON a.group_index = b.group_index"
            )
            .is_err(),
            "self join"
        );
        assert!(
            analyze(
                "SELECT group_index, SUM(group_value) + 1 AS t FROM groups GROUP BY group_index"
            )
            .is_err(),
            "expression over aggregate"
        );
        assert!(
            analyze(
                "SELECT customers.name FROM orders LEFT JOIN customers \
             ON orders.cust = customers.id"
            )
            .is_err(),
            "outer join"
        );
    }

    #[test]
    fn avg_detected() {
        let a = analyze(
            "SELECT group_index, AVG(group_value) AS mean FROM groups GROUP BY group_index",
        )
        .unwrap();
        assert!(a.has_avg());
        assert_eq!(a.aggs[0].ty, DataType::Double);
    }

    #[test]
    fn duplicate_output_names_rejected() {
        assert!(analyze("SELECT group_index, group_index FROM groups").is_err());
    }
}
