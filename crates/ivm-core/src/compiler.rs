//! The OpenIVM SQL-to-SQL compiler entry point.
//!
//! `IvmCompiler::compile` takes a view definition plus the current catalog
//! and produces everything Figure 1 promises: delta-table DDL, the
//! materialized-table DDL, the initial population statement, the ART index
//! statement, the 4-step propagation script, and the metadata rows.

use ivm_engine::Catalog;
use ivm_sql::ast::{CreateView, Statement};
use ivm_sql::{parse_statement, print_query, print_statement};

use crate::analyze::{analyze_view, ViewAnalysis};
use crate::ddl::{generate_ddl, GeneratedDdl};
use crate::error::IvmError;
use crate::flags::IvmFlags;
use crate::metadata;
use crate::propagation::{generate_propagation, PropagationScript};
use crate::rewrite::build_full_query;

/// Everything the compiler emits for one `CREATE MATERIALIZED VIEW`.
#[derive(Debug, Clone)]
pub struct IvmArtifacts {
    /// Analysis of the view query.
    pub analysis: ViewAnalysis,
    /// DDL (delta tables, view table, ΔV, optional staging table).
    pub ddl: GeneratedDdl,
    /// `INSERT INTO <view> SELECT …` — initial population from base tables.
    pub population: String,
    /// The 4-step propagation script (the LEFT JOIN variant for the
    /// adaptive strategy).
    pub propagation: PropagationScript,
    /// The regroup variant, generated only for
    /// [`crate::UpsertStrategy::Adaptive`] so the session can pick per
    /// refresh based on the live view size.
    pub alt_propagation: Option<PropagationScript>,
    /// Metadata DDL + inserts (`_openivm_views`, `_openivm_scripts`).
    pub metadata: Vec<String>,
    /// The flags used.
    pub flags: IvmFlags,
    /// The original view SELECT, re-printed in the target dialect.
    pub view_sql: String,
}

impl IvmArtifacts {
    /// Every statement needed to set the view up, in execution order:
    /// DDL → population → post-population index → metadata.
    pub fn setup_statements(&self) -> Vec<String> {
        let mut out = self.ddl.delta_tables.clone();
        out.extend(self.ddl.view_tables.clone());
        out.push(self.population.clone());
        out.extend(self.ddl.post_population_indexes.clone());
        out.extend(self.metadata.clone());
        out
    }

    /// The maintenance statements, in execution order.
    pub fn maintenance_statements(&self) -> Vec<String> {
        self.propagation.statements()
    }

    /// The full compiled output as one inspectable SQL script — what the
    /// demo stores "on the disk to allow future inspection and usage".
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        if self.flags.comments {
            out.push_str(&format!(
                "-- OpenIVM compiled output for materialized view {}\n-- class: {}, strategy: {}, dialect: {}\n\n-- Setup:\n",
                self.analysis.view_name,
                self.analysis.class.name(),
                self.flags.upsert_strategy.name(),
                self.flags.dialect.name(),
            ));
        }
        for s in self.setup_statements() {
            out.push_str(&s);
            out.push_str(";\n");
        }
        if self.flags.comments {
            out.push_str("\n-- Maintenance (run per refresh):\n");
        }
        out.push_str(&self.propagation.to_sql(self.flags.comments));
        out
    }
}

/// The compiler. Stateless: all inputs arrive per call.
#[derive(Debug, Default)]
pub struct IvmCompiler;

impl IvmCompiler {
    /// Create a compiler.
    pub fn new() -> IvmCompiler {
        IvmCompiler
    }

    /// Compile a `CREATE MATERIALIZED VIEW` statement given as SQL text.
    pub fn compile_sql(
        &self,
        create_view_sql: &str,
        catalog: &Catalog,
        flags: &IvmFlags,
    ) -> Result<IvmArtifacts, IvmError> {
        let stmt = parse_statement(create_view_sql)?;
        let Statement::CreateView(cv) = stmt else {
            return Err(IvmError::unsupported(
                "expected a CREATE MATERIALIZED VIEW statement",
            ));
        };
        if !cv.materialized {
            return Err(IvmError::unsupported(
                "expected MATERIALIZED in the CREATE VIEW",
            ));
        }
        self.compile(&cv, catalog, flags)
    }

    /// Compile a parsed `CREATE MATERIALIZED VIEW`.
    pub fn compile(
        &self,
        cv: &CreateView,
        catalog: &Catalog,
        flags: &IvmFlags,
    ) -> Result<IvmArtifacts, IvmError> {
        let view_name = cv.name.normalized().to_string();
        if catalog.has_table(&view_name) || catalog.has_view(&view_name) {
            return Err(IvmError::catalog(format!("{view_name} already exists")));
        }
        self.compile_unchecked(cv, catalog, flags)
    }

    /// [`compile`](IvmCompiler::compile) without the name-collision check:
    /// re-deriving the artifacts of a view whose table already exists in a
    /// recovered durable catalog.
    pub(crate) fn compile_unchecked(
        &self,
        cv: &CreateView,
        catalog: &Catalog,
        flags: &IvmFlags,
    ) -> Result<IvmArtifacts, IvmError> {
        let view_name = cv.name.normalized().to_string();
        let analysis = analyze_view(&view_name, &cv.query, catalog)?;
        let ddl = generate_ddl(&analysis, catalog, flags)?;
        let full = build_full_query(&analysis, None)?;
        let population = format!(
            "INSERT INTO {view_name} {}",
            print_query(&full, flags.dialect)
        );
        let propagation = generate_propagation(&analysis, flags)?;
        let alt_propagation = match flags.upsert_strategy {
            crate::flags::UpsertStrategy::Adaptive => {
                // Regroup only applies to aggregate views; projection-class
                // views always take the upsert path.
                crate::propagation::generate_propagation_with(
                    &analysis,
                    flags,
                    crate::flags::UpsertStrategy::UnionRegroup,
                )
                .ok()
            }
            _ => None,
        };
        let view_sql = print_statement(&Statement::Query(cv.query.clone()), flags.dialect);
        let metadata = metadata::metadata_statements(&analysis, &view_sql, &propagation, flags);
        Ok(IvmArtifacts {
            analysis,
            ddl,
            population,
            propagation,
            alt_propagation,
            metadata,
            flags: flags.clone(),
            view_sql,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_engine::Database;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        db
    }

    const LISTING_1: &str = "CREATE MATERIALIZED VIEW query_groups AS \
         SELECT group_index, SUM(group_value) AS total_value \
         FROM groups GROUP BY group_index";

    #[test]
    fn compile_listing_1() {
        let db = db();
        let artifacts = IvmCompiler::new()
            .compile_sql(LISTING_1, db.catalog(), &IvmFlags::paper_defaults())
            .unwrap();
        let setup = artifacts.setup_statements();
        assert!(setup[0].contains("delta_groups"));
        assert!(setup
            .iter()
            .any(|s| s.starts_with("INSERT INTO query_groups SELECT")));
        assert!(setup.iter().any(|s| s.contains("CREATE UNIQUE INDEX")));
        assert!(setup.iter().any(|s| s.contains("_openivm_views")));
        assert_eq!(artifacts.maintenance_statements().len(), 4 + 1); // 4 steps + extra drain
        let script = artifacts.to_script();
        assert!(script.contains("-- Step 2"));
    }

    #[test]
    fn rejects_plain_view_and_non_views() {
        let db = db();
        let c = IvmCompiler::new();
        assert!(c
            .compile_sql(
                "CREATE VIEW x AS SELECT 1",
                db.catalog(),
                &IvmFlags::default()
            )
            .is_err());
        assert!(c
            .compile_sql("SELECT 1", db.catalog(), &IvmFlags::default())
            .is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let db = db();
        let err = IvmCompiler::new().compile_sql(
            "CREATE MATERIALIZED VIEW groups AS SELECT group_index FROM groups",
            db.catalog(),
            &IvmFlags::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn all_setup_statements_execute() {
        let mut db = db();
        db.execute("INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 5)")
            .unwrap();
        let artifacts = IvmCompiler::new()
            .compile_sql(LISTING_1, db.catalog(), &IvmFlags::paper_defaults())
            .unwrap();
        for stmt in artifacts.setup_statements() {
            db.execute(&stmt)
                .unwrap_or_else(|e| panic!("setup failed: {e}\n{stmt}"));
        }
        let r = db
            .query("SELECT group_index, total_value FROM query_groups ORDER BY group_index")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], ivm_engine::Value::Integer(3));
        assert_eq!(r.rows[1][1], ivm_engine::Value::Integer(5));
    }
}
