//! DDL generation: delta tables, the materialized view table, staging
//! tables, and indexes.
//!
//! §2: "Our implementation takes in input a database schema and view
//! definition, and generates from there the DDL to create delta tables,
//! possibly intermediate tables and index structures."

use ivm_engine::{Catalog, DataType};
use ivm_sql::ast::{ColumnDef, CreateIndex, CreateTable, Statement, TypeName};
use ivm_sql::{print_statement, Ident};

use crate::analyze::ViewAnalysis;
use crate::error::IvmError;
use crate::flags::{IndexCreation, IvmFlags, UpsertStrategy};
use crate::names::{self, MULTIPLICITY_COL};
use crate::rewrite::{delta_view_layout, view_table_layout};

/// DDL statements for one view, split by phase.
#[derive(Debug, Clone)]
pub struct GeneratedDdl {
    /// Delta tables for every base table (idempotent: IF NOT EXISTS).
    pub delta_tables: Vec<String>,
    /// The view table, ΔV, and (for the FULL OUTER JOIN strategy) the
    /// staging table.
    pub view_tables: Vec<String>,
    /// Index statements that run *after* initial population (empty when
    /// the index is inline or disabled).
    pub post_population_indexes: Vec<String>,
}

impl GeneratedDdl {
    /// All statements in execution order (indexes last).
    pub fn all(&self) -> Vec<String> {
        let mut out = self.delta_tables.clone();
        out.extend(self.view_tables.clone());
        out.extend(self.post_population_indexes.clone());
        out
    }
}

fn column_def(name: &str, ty: DataType) -> ColumnDef {
    ColumnDef {
        name: Ident::new(name),
        ty: TypeName::from(ty),
        not_null: false,
    }
}

fn create_table(
    name: &str,
    columns: Vec<(String, DataType)>,
    primary_key: Vec<String>,
    if_not_exists: bool,
) -> Statement {
    Statement::CreateTable(CreateTable {
        name: Ident::new(name),
        if_not_exists,
        columns: columns.iter().map(|(n, t)| column_def(n, *t)).collect(),
        primary_key: primary_key.into_iter().map(Ident::new).collect(),
    })
}

/// Generate the DDL for a view.
pub fn generate_ddl(
    analysis: &ViewAnalysis,
    catalog: &Catalog,
    flags: &IvmFlags,
) -> Result<GeneratedDdl, IvmError> {
    let dialect = flags.dialect;

    // ΔT per base table: base columns plus the multiplicity flag.
    let mut delta_tables = Vec::with_capacity(analysis.base_tables.len());
    for t in &analysis.base_tables {
        let table = catalog
            .table(t)
            .map_err(|e| IvmError::Engine(e.to_string()))?;
        let mut cols: Vec<(String, DataType)> = table
            .schema
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        cols.push((MULTIPLICITY_COL.to_string(), DataType::Boolean));
        let stmt = create_table(&names::delta(t), cols, vec![], true);
        delta_tables.push(print_statement(&stmt, dialect));
    }

    let needs_index = flags.upsert_strategy.needs_index();
    if needs_index && flags.index_creation == IndexCreation::None {
        return Err(IvmError::unsupported(
            "the left-join upsert strategy requires a key index \
             (set index_creation or switch to union_regroup)",
        ));
    }

    // The materialized view table.
    let view_cols = view_table_layout(analysis);
    let inline_pk = needs_index && flags.index_creation == IndexCreation::Inline;
    let key_cols = analysis.key_columns();
    let mut view_tables = vec![print_statement(
        &create_table(
            &analysis.view_name,
            view_cols.clone(),
            if inline_pk { key_cols.clone() } else { vec![] },
            false,
        ),
        dialect,
    )];

    // ΔV.
    let stmt = create_table(
        &names::delta(&analysis.view_name),
        delta_view_layout(analysis),
        vec![],
        false,
    );
    view_tables.push(print_statement(&stmt, dialect));

    // Staging table for the FULL OUTER JOIN strategy.
    if flags.upsert_strategy == UpsertStrategy::FullOuterJoin {
        let stmt = create_table(&names::stage(&analysis.view_name), view_cols, vec![], false);
        view_tables.push(print_statement(&stmt, dialect));
    }

    // Post-population ART build (the paper's preferred ordering).
    let mut post_population_indexes = Vec::new();
    if needs_index && flags.index_creation == IndexCreation::AfterPopulate {
        let stmt = Statement::CreateIndex(CreateIndex {
            name: Ident::new(names::view_index(&analysis.view_name)),
            table: Ident::new(analysis.view_name.clone()),
            columns: key_cols.into_iter().map(Ident::new).collect(),
            unique: true,
        });
        post_population_indexes.push(print_statement(&stmt, dialect));
    }

    Ok(GeneratedDdl {
        delta_tables,
        view_tables,
        post_population_indexes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_view;
    use ivm_engine::Database;
    use ivm_sql::ast::Statement as Stmt;

    fn analysis(sql: &str) -> (Database, ViewAnalysis) {
        let mut db = Database::new();
        db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        let q = match ivm_sql::parse_statement(sql).unwrap() {
            Stmt::Query(q) => q,
            _ => unreachable!(),
        };
        let a = analyze_view("query_groups", &q, db.catalog()).unwrap();
        (db, a)
    }

    const LISTING_1: &str = "SELECT group_index, SUM(group_value) AS total_value \
                             FROM groups GROUP BY group_index";

    #[test]
    fn listing_1_ddl() {
        let (db, a) = analysis(LISTING_1);
        let ddl = generate_ddl(&a, db.catalog(), &IvmFlags::paper_defaults()).unwrap();
        assert_eq!(
            ddl.delta_tables,
            vec![
                "CREATE TABLE IF NOT EXISTS delta_groups (group_index VARCHAR, \
                 group_value INTEGER, _duckdb_ivm_multiplicity BOOLEAN)"
            ]
        );
        assert!(ddl.view_tables[0].starts_with("CREATE TABLE query_groups (group_index VARCHAR, total_value INTEGER, _ivm_count INTEGER)"), "{}", ddl.view_tables[0]);
        assert!(ddl.view_tables[1].contains("delta_query_groups"));
        // Default flags: ART built after population.
        assert_eq!(
            ddl.post_population_indexes,
            vec!["CREATE UNIQUE INDEX _ivm_idx_query_groups ON query_groups (group_index)"]
        );
    }

    #[test]
    fn inline_pk_when_requested() {
        let (db, a) = analysis(LISTING_1);
        let flags = IvmFlags {
            index_creation: IndexCreation::Inline,
            ..IvmFlags::paper_defaults()
        };
        let ddl = generate_ddl(&a, db.catalog(), &flags).unwrap();
        assert!(ddl.view_tables[0].contains("PRIMARY KEY (group_index)"));
        assert!(ddl.post_population_indexes.is_empty());
    }

    #[test]
    fn union_regroup_needs_no_index() {
        let (db, a) = analysis(LISTING_1);
        let flags = IvmFlags {
            upsert_strategy: UpsertStrategy::UnionRegroup,
            index_creation: IndexCreation::None,
            ..IvmFlags::paper_defaults()
        };
        let ddl = generate_ddl(&a, db.catalog(), &flags).unwrap();
        assert!(ddl.post_population_indexes.is_empty());
        assert!(!ddl.view_tables[0].contains("PRIMARY KEY"));
    }

    #[test]
    fn left_join_without_index_rejected() {
        let (db, a) = analysis(LISTING_1);
        let flags = IvmFlags {
            index_creation: IndexCreation::None,
            ..IvmFlags::paper_defaults()
        };
        assert!(generate_ddl(&a, db.catalog(), &flags).is_err());
    }

    #[test]
    fn stage_table_for_full_outer_join() {
        let (db, a) = analysis(LISTING_1);
        let flags = IvmFlags {
            upsert_strategy: UpsertStrategy::FullOuterJoin,
            ..IvmFlags::paper_defaults()
        };
        let ddl = generate_ddl(&a, db.catalog(), &flags).unwrap();
        assert!(ddl
            .view_tables
            .iter()
            .any(|s| s.contains("_ivm_stage_query_groups")));
    }
}
