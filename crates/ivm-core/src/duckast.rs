//! DuckAST: the dialect-neutral intermediate tree between the rewritten
//! logical plan and emitted SQL.
//!
//! Following footnote 5 of the paper (after LinkedIn's Coral), the compiler
//! does not print SQL straight from the logical plan: it first lowers the
//! plan into this "simpler abstract tree", which is then "rewritten to a
//! string in the desired SQL dialect".
//!
//! A [`SelectFrame`] is one SELECT block: a FROM list, conjunctive WHERE
//! filters, a projection, and optional grouping. A [`DuckAst`] is a bag
//! union of frames (the DBSP join rewrite produces three frames).

use ivm_sql::ast::{Expr, Query, Select, SelectItem, SetExpr, SetOp, TableRef};
use ivm_sql::Ident;

/// One SELECT-shaped relational frame.
#[derive(Debug, Clone)]
pub struct SelectFrame {
    /// FROM items (comma list; inner-join conditions live in `filters`).
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE predicates.
    pub filters: Vec<Expr>,
    /// Output columns: `(expression, output name)`.
    pub projection: Vec<(Expr, String)>,
    /// GROUP BY expressions (empty = no grouping).
    pub group_by: Vec<Expr>,
}

impl SelectFrame {
    /// Lower one frame to an AST `SELECT`.
    pub fn to_select(&self) -> Select {
        Select {
            distinct: false,
            projection: self
                .projection
                .iter()
                .map(|(e, name)| {
                    // Skip redundant aliases (`a AS a`).
                    let is_bare_same = matches!(
                        e,
                        Expr::Column(c) if c.column == Ident::new(name.clone())
                    );
                    if is_bare_same {
                        SelectItem::expr(e.clone())
                    } else {
                        SelectItem::aliased(e.clone(), Ident::new(name.clone()))
                    }
                })
                .collect(),
            from: self.from.clone(),
            selection: conjoin(&self.filters),
            group_by: self.group_by.clone(),
            having: None,
        }
    }
}

/// The DuckAST root: one frame, or a UNION ALL of several.
#[derive(Debug, Clone)]
pub struct DuckAst {
    /// The frames; all share the same projection names.
    pub frames: Vec<SelectFrame>,
}

impl DuckAst {
    /// A single-frame tree.
    pub fn single(frame: SelectFrame) -> DuckAst {
        DuckAst {
            frames: vec![frame],
        }
    }

    /// Output column names (taken from the first frame).
    pub fn column_names(&self) -> Vec<String> {
        self.frames
            .first()
            .map(|f| f.projection.iter().map(|(_, n)| n.clone()).collect())
            .unwrap_or_default()
    }

    /// Lower to an AST query (`UNION ALL` across frames).
    pub fn to_query(&self) -> Query {
        let mut bodies: Vec<SetExpr> = self
            .frames
            .iter()
            .map(|f| SetExpr::Select(Box::new(f.to_select())))
            .collect();
        let mut body = bodies.remove(0);
        for rhs in bodies {
            body = SetExpr::SetOp {
                op: SetOp::Union,
                all: true,
                left: Box::new(body),
                right: Box::new(rhs),
            };
        }
        Query {
            ctes: Vec::new(),
            body,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// Wrap this tree as a derived table `(query) AS alias`, exposing its
    /// columns under that alias — used when an aggregation consumes the
    /// three-frame join expansion.
    pub fn as_derived_table(&self, alias: &str) -> (TableRef, Vec<Expr>) {
        let cols = self
            .column_names()
            .iter()
            .map(|n| Expr::qcol(alias, n.clone()))
            .collect();
        let tref = TableRef::Subquery {
            query: Box::new(self.to_query()),
            alias: Ident::new(alias),
        };
        (tref, cols)
    }
}

/// AND together a conjunct list.
pub fn conjoin(filters: &[Expr]) -> Option<Expr> {
    filters.iter().cloned().reduce(|l, r| l.and(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_sql::{print_query, Dialect};

    fn frame() -> SelectFrame {
        SelectFrame {
            from: vec![TableRef::table("delta_groups")],
            filters: vec![Expr::col("group_value").eq(Expr::int(1))],
            projection: vec![
                (Expr::col("group_index"), "group_index".into()),
                (Expr::col("group_value"), "v".into()),
            ],
            group_by: vec![],
        }
    }

    #[test]
    fn frame_prints_single_select() {
        let q = DuckAst::single(frame()).to_query();
        assert_eq!(
            print_query(&q, Dialect::DuckDb),
            "SELECT group_index, group_value AS v FROM delta_groups WHERE group_value = 1"
        );
    }

    #[test]
    fn union_of_frames() {
        let ast = DuckAst {
            frames: vec![frame(), frame(), frame()],
        };
        let sql = print_query(&ast.to_query(), Dialect::DuckDb);
        assert_eq!(sql.matches("UNION ALL").count(), 2);
    }

    #[test]
    fn derived_table_exposes_columns() {
        let ast = DuckAst::single(frame());
        let (tref, cols) = ast.as_derived_table("u");
        assert!(matches!(tref, TableRef::Subquery { .. }));
        assert_eq!(
            cols,
            vec![Expr::qcol("u", "group_index"), Expr::qcol("u", "v")]
        );
    }
}
