//! Compiler error type.

use std::fmt;

/// Errors raised by the OpenIVM compiler and extension session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IvmError {
    /// The view definition uses SQL outside the supported IVM subset.
    Unsupported(String),
    /// Parsing / planning / executing through the engine failed.
    Engine(String),
    /// The IVM catalog is inconsistent (unknown view, duplicate view, …).
    Catalog(String),
}

impl IvmError {
    /// Unsupported-feature constructor.
    pub fn unsupported(msg: impl Into<String>) -> IvmError {
        IvmError::Unsupported(msg.into())
    }

    /// Catalog constructor.
    pub fn catalog(msg: impl Into<String>) -> IvmError {
        IvmError::Catalog(msg.into())
    }
}

impl fmt::Display for IvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IvmError::Unsupported(m) => write!(f, "unsupported view: {m}"),
            IvmError::Engine(m) => write!(f, "engine error: {m}"),
            IvmError::Catalog(m) => write!(f, "ivm catalog error: {m}"),
        }
    }
}

impl std::error::Error for IvmError {}

impl From<ivm_engine::EngineError> for IvmError {
    fn from(e: ivm_engine::EngineError) -> Self {
        IvmError::Engine(e.to_string())
    }
}

impl From<ivm_sql::SqlError> for IvmError {
    fn from(e: ivm_sql::SqlError) -> Self {
        IvmError::Engine(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            IvmError::unsupported("DISTINCT").to_string(),
            "unsupported view: DISTINCT"
        );
    }
}
