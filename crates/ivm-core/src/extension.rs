//! The OpenIVM extension session: IVM *inside* the engine.
//!
//! Mirrors §2's "The Extension Module: OpenIVM inside DuckDB": a fall-back
//! handler catches `CREATE MATERIALIZED VIEW` (which the plain engine
//! rejects), executes the compiled output, and registers interception rules
//! that route `INSERT`/`UPDATE`/`DELETE` on base tables into the delta
//! tables and kick off the propagation scripts — eagerly, lazily on view
//! query, or per batch, per [`PropagationMode`].

use std::collections::HashMap;

use ivm_engine::exec::hash::{chain_prepend, hash_row, hash_value_iter, FlatTable};
use ivm_engine::{Database, ErrorKind, QueryResult, SnapshotHub, Value};
use ivm_sql::ast::{
    Delete, Expr, Insert, InsertSource, Query, Select, SelectItem, SetExpr, Statement, TableRef,
    Update,
};
use ivm_sql::{parse_statement, print_statement, Ident};

use crate::compiler::{IvmArtifacts, IvmCompiler};
use crate::error::IvmError;
use crate::flags::{IvmFlags, PropagationMode};
use crate::metadata;
use crate::names::{self, MULTIPLICITY_COL};

/// A registered materialized view.
#[derive(Debug, Clone)]
pub struct RegisteredView {
    /// View (and table) name.
    pub name: String,
    /// Base tables feeding the view.
    pub base_tables: Vec<String>,
    /// Visible (non-hidden) column names.
    pub visible_columns: Vec<String>,
    /// Whether the view is a projection class (rows carry duplicate
    /// weights that expand on read).
    pub weighted_rows: bool,
    /// Maintenance statements by step: step-1 statements first, the rest
    /// after (split so multi-view refreshes can share delta tables).
    step1: Vec<String>,
    rest: Vec<String>,
    /// Steps 2–4 of the regroup variant (adaptive strategy only).
    rest_alt: Option<Vec<String>>,
    /// Full artifacts, kept for inspection.
    pub artifacts: IvmArtifacts,
}

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// DML statements intercepted into delta tables.
    pub intercepted_dml: usize,
    /// Propagation script executions.
    pub maintenance_runs: usize,
    /// Individual maintenance statements executed.
    pub maintenance_statements: usize,
    /// Adaptive strategy: refreshes that took the indexed-upsert path.
    pub adaptive_upserts: usize,
    /// Adaptive strategy: refreshes that took the regroup path.
    pub adaptive_regroups: usize,
}

/// An engine session with the OpenIVM extension loaded.
#[derive(Debug)]
pub struct IvmSession {
    db: Database,
    flags: IvmFlags,
    compiler: IvmCompiler,
    views: Vec<RegisteredView>,
    /// Views with unpropagated deltas → number of pending DML statements.
    pending: HashMap<String, usize>,
    /// Parsed-statement cache for the maintenance scripts: the same fixed
    /// SQL strings run on every refresh, so each is parsed exactly once.
    stmt_cache: HashMap<String, Statement>,
    /// Per-mirror deletion-victim indexes (row digest → live slot ids),
    /// maintained incrementally across [`IvmSession::ingest_deltas`]
    /// batches and validated against the table's mutation generation.
    victim_index: HashMap<String, MirrorIndex>,
    stats: SessionStats,
    /// When [`IvmSession::share`]d: the snapshot hub concurrent readers
    /// pin their statements against. Every completed top-level operation
    /// republishes, so the hub only ever holds committed points.
    shared: Option<SnapshotHub>,
}

impl IvmSession {
    /// New session with the given compiler flags.
    pub fn new(flags: IvmFlags) -> IvmSession {
        IvmSession {
            db: Database::new(),
            flags,
            compiler: IvmCompiler::new(),
            views: Vec::new(),
            pending: HashMap::new(),
            stmt_cache: HashMap::new(),
            victim_index: HashMap::new(),
            stats: SessionStats::default(),
            shared: None,
        }
    }

    /// Session with the paper's default flags.
    pub fn with_defaults() -> IvmSession {
        IvmSession::new(IvmFlags::paper_defaults())
    }

    /// Open (or create) a session over a *durable* database at `path`:
    /// base tables, materialized views, delta tables, and metadata come
    /// back from the last committed state, and every materialized view is
    /// re-registered by recompiling its stored SQL from the
    /// `_openivm_views` metadata table — without re-running the setup
    /// statements (the recovered tables already hold the data). Views
    /// whose delta tables hold unpropagated rows come back *dirty* and
    /// refresh on the usual triggers.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        flags: IvmFlags,
    ) -> Result<IvmSession, IvmError> {
        let db = Database::open(path).map_err(|e| IvmError::Engine(e.to_string()))?;
        let mut session = IvmSession {
            db,
            flags,
            compiler: IvmCompiler::new(),
            views: Vec::new(),
            pending: HashMap::new(),
            stmt_cache: HashMap::new(),
            victim_index: HashMap::new(),
            stats: SessionStats::default(),
            shared: None,
        };
        session.restore_views()?;
        Ok(session)
    }

    /// Checkpoint the underlying durable database (no-op in-memory).
    pub fn checkpoint(&mut self) -> Result<(), IvmError> {
        self.db
            .checkpoint()
            .map_err(|e| IvmError::Engine(e.to_string()))?;
        self.republish();
        Ok(())
    }

    /// Checkpoint and drop the session (clean shutdown).
    pub fn close(mut self) -> Result<(), IvmError> {
        self.checkpoint()
    }

    /// Re-register every materialized view recorded in the metadata
    /// tables of a recovered catalog.
    fn restore_views(&mut self) -> Result<(), IvmError> {
        if !self.db.catalog().has_table(names::META_VIEWS_TABLE) {
            return Ok(());
        }
        let rows = self
            .db
            .query(&format!(
                "SELECT view_name, view_sql FROM {} ORDER BY view_name",
                names::META_VIEWS_TABLE
            ))
            .map_err(|e| IvmError::Engine(e.to_string()))?
            .rows;
        for row in rows {
            let (Some(Value::Varchar(name)), Some(Value::Varchar(sql))) = (row.first(), row.get(1))
            else {
                return Err(IvmError::catalog(format!(
                    "corrupt {} row: {row:?}",
                    names::META_VIEWS_TABLE
                )));
            };
            let create = format!("CREATE MATERIALIZED VIEW {name} AS {sql}");
            let Statement::CreateView(cv) = parse_statement(&create).map_err(IvmError::from)?
            else {
                return Err(IvmError::catalog(format!(
                    "stored view SQL for {name} is not a query: {sql}"
                )));
            };
            let (name, base_tables) = {
                let view = self.register_view(cv, false)?;
                (view.name.clone(), view.base_tables.clone())
            };
            // Unpropagated delta rows survive the restart; mark the view
            // dirty so the usual triggers drain them.
            let dirty = base_tables.iter().any(|t| {
                self.db
                    .catalog()
                    .table(&names::delta(t))
                    .map(|d| d.live_rows() > 0)
                    .unwrap_or(false)
            });
            if dirty {
                self.pending.insert(name, 1);
            }
        }
        Ok(())
    }

    /// Borrow the underlying engine.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutably borrow the underlying engine (bulk loading).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Turn on concurrent snapshot serving: returns a [`SnapshotHub`]
    /// (cheap to clone into reader threads) whose initial snapshot is
    /// the session's current state. From now on, every completed
    /// top-level operation — statement, script, delta ingest, refresh,
    /// view DDL — republishes, so hub readers always see some committed
    /// point and never a torn intermediate. This session remains the
    /// single writer; readers are [`ivm_engine::ReadSession`]s.
    pub fn share(&mut self) -> SnapshotHub {
        if self.shared.is_none() {
            self.shared = Some(SnapshotHub::new(&self.db));
        }
        self.shared.clone().expect("just set")
    }

    /// The snapshot hub, when [`IvmSession::share`] has been called.
    pub fn snapshot_hub(&self) -> Option<&SnapshotHub> {
        self.shared.as_ref()
    }

    /// Publish the current state to hub readers (no-op when not shared).
    /// Called after every committed point; callers that mutate the
    /// database directly through [`IvmSession::database_mut`] should
    /// call it themselves.
    pub fn republish(&self) {
        if let Some(hub) = &self.shared {
            hub.publish(&self.db);
        }
    }

    /// Set the engine's executor parallelism (worker threads; clamped to
    /// ≥ 1). Affects full recomputation and propagation-script execution
    /// alike; 1 is the serial operator tree.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.db.set_parallelism(workers);
    }

    /// The engine's executor parallelism.
    pub fn parallelism(&self) -> usize {
        self.db.parallelism()
    }

    /// Set the engine's executor memory budget in bytes (`None` =
    /// unbounded). Bounded budgets make join builds, group tables,
    /// DISTINCT, and set operations spill radix partitions to disk; the
    /// maintained views stay row-identical to unbounded execution.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.db.set_memory_budget(bytes);
    }

    /// The engine's cumulative spill/rehydrate counters (session stats
    /// for the out-of-core executor).
    pub fn spill_stats(&self) -> ivm_engine::SpillStats {
        self.db.spill_stats()
    }

    /// The active flags.
    pub fn flags(&self) -> &IvmFlags {
        &self.flags
    }

    /// Experiment counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Registered views.
    pub fn views(&self) -> &[RegisteredView] {
        &self.views
    }

    /// Look up a registered view.
    pub fn view(&self, name: &str) -> Option<&RegisteredView> {
        self.views.iter().find(|v| v.name == name)
    }

    /// Execute one SQL statement through the extension pipeline.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, IvmError> {
        let stmt = parse_statement(sql)?;
        let result = self.execute_statement(stmt);
        // Publish even after an error: earlier side effects of the
        // statement's refresh triggers are committed state.
        self.republish();
        result
    }

    /// Execute a `;`-separated script.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>, IvmError> {
        let stmts = ivm_sql::parse_statements(sql)?;
        let result = stmts
            .into_iter()
            .map(|s| self.execute_statement(s))
            .collect();
        self.republish();
        result
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<QueryResult, IvmError> {
        // Interception rules run before the engine sees the statement.
        match &stmt {
            Statement::Insert(ins) if self.is_tracked(ins.table.normalized()) => {
                return self.intercept_insert(ins.clone());
            }
            Statement::Update(u) if self.is_tracked(u.table.normalized()) => {
                return self.intercept_update(u.clone());
            }
            Statement::Delete(d) if self.is_tracked(d.table.normalized()) => {
                return self.intercept_delete(d.clone());
            }
            Statement::Drop(d)
                if d.kind == ivm_sql::ast::DropKind::View
                    && self.view(d.name.normalized()).is_some() =>
            {
                let name = d.name.normalized().to_string();
                self.drop_materialized_view(&name)?;
                return Ok(QueryResult::default());
            }
            Statement::Drop(d)
                if d.kind == ivm_sql::ast::DropKind::Table
                    && self.is_tracked(d.name.normalized()) =>
            {
                return Err(IvmError::catalog(format!(
                    "table {} feeds materialized views; drop those first",
                    d.name.normalized()
                )));
            }
            Statement::Query(q) => {
                // Lazy refresh: propagate before reading any stale view.
                let referenced: Vec<String> = q
                    .referenced_tables()
                    .iter()
                    .map(|i| i.normalized().to_string())
                    .collect();
                let stale: Vec<String> = referenced
                    .into_iter()
                    .filter(|t| self.view(t).is_some() && self.pending.contains_key(t))
                    .collect();
                for v in stale {
                    self.refresh(&v)?;
                }
            }
            _ => {}
        }
        // The fall-back path: the engine rejects CREATE MATERIALIZED VIEW
        // as unsupported; the extension catches exactly that case (the
        // paper's fall-back parser flow) and handles it.
        match self.db.execute_statement(&stmt) {
            Ok(r) => Ok(r),
            Err(e) if e.kind() == ErrorKind::Unsupported => {
                if let Statement::CreateView(cv) = &stmt {
                    if cv.materialized {
                        self.create_materialized_view(cv.clone())?;
                        return Ok(QueryResult::default());
                    }
                }
                Err(IvmError::Engine(e.to_string()))
            }
            Err(e) => Err(IvmError::Engine(e.to_string())),
        }
    }

    /// Compile and install a materialized view.
    pub fn create_materialized_view(
        &mut self,
        cv: ivm_sql::ast::CreateView,
    ) -> Result<&RegisteredView, IvmError> {
        self.register_view(cv, true)
    }

    /// Compile a materialized view and register it with the session.
    /// `run_setup` executes the generated setup statements (create + fill
    /// the view table, delta tables, metadata rows); restoring a view
    /// from a recovered durable catalog skips them, since every object
    /// already exists with its data.
    fn register_view(
        &mut self,
        cv: ivm_sql::ast::CreateView,
        run_setup: bool,
    ) -> Result<&RegisteredView, IvmError> {
        // Restoring skips the collision check too: the recovered catalog
        // already holds the view's table.
        let artifacts = if run_setup {
            self.compiler.compile(&cv, self.db.catalog(), &self.flags)?
        } else {
            self.compiler
                .compile_unchecked(&cv, self.db.catalog(), &self.flags)?
        };
        if run_setup {
            let setup = artifacts.setup_statements();
            // One durability point: a crash must never recover half the
            // view's generated objects (table but no metadata row, …).
            self.atomic(|s| {
                for stmt in setup {
                    s.db.execute(&stmt)
                        .map_err(|e| IvmError::Engine(format!("{e} while running: {stmt}")))?;
                }
                Ok(())
            })?;
        }
        let weighted_rows = artifacts.analysis.aggs.is_empty();
        let visible_columns = artifacts
            .analysis
            .output
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let (step1, rest): (Vec<_>, Vec<_>) = artifacts
            .propagation
            .steps
            .iter()
            .partition(|s| s.step == 1);
        let rest_alt = artifacts.alt_propagation.as_ref().map(|alt| {
            alt.steps
                .iter()
                .filter(|s| s.step != 1)
                .map(|s| s.sql.clone())
                .collect()
        });
        let view = RegisteredView {
            name: artifacts.analysis.view_name.clone(),
            base_tables: artifacts.analysis.base_tables.clone(),
            visible_columns,
            weighted_rows,
            step1: step1.into_iter().map(|s| s.sql.clone()).collect(),
            rest: rest.into_iter().map(|s| s.sql.clone()).collect(),
            rest_alt,
            artifacts,
        };
        self.views.push(view);
        self.republish();
        Ok(self.views.last().expect("just pushed"))
    }

    /// Drop a materialized view and its generated objects. Shared delta
    /// tables survive while other views still read them.
    pub fn drop_materialized_view(&mut self, name: &str) -> Result<(), IvmError> {
        let Some(pos) = self.views.iter().position(|v| v.name == name) else {
            return Err(IvmError::catalog(format!(
                "{name} is not a materialized view"
            )));
        };
        let view = self.views.remove(pos);
        self.pending.remove(name);
        let mut drops = vec![
            format!("DROP TABLE {}", view.name),
            format!("DROP TABLE {}", names::delta(&view.name)),
            format!("DROP TABLE IF EXISTS {}", names::stage(&view.name)),
        ];
        for t in &view.base_tables {
            let still_used = self.views.iter().any(|v| v.base_tables.contains(t));
            if !still_used {
                drops.push(format!("DROP TABLE IF EXISTS {}", names::delta(t)));
            }
        }
        drops.extend(metadata::metadata_remove(name));
        self.atomic(|s| {
            for stmt in drops {
                s.db.execute(&stmt)
                    .map_err(|e| IvmError::Engine(e.to_string()))?;
            }
            Ok(())
        })?;
        self.republish();
        Ok(())
    }

    fn is_tracked(&self, table: &str) -> bool {
        self.views
            .iter()
            .any(|v| v.base_tables.iter().any(|t| t == table))
    }

    fn dependents(&self, table: &str) -> Vec<String> {
        self.views
            .iter()
            .filter(|v| v.base_tables.iter().any(|t| t == table))
            .map(|v| v.name.clone())
            .collect()
    }

    fn base_table_columns(&self, table: &str) -> Result<Vec<String>, IvmError> {
        Ok(self
            .db
            .catalog()
            .table(table)
            .map_err(|e| IvmError::Engine(e.to_string()))?
            .schema
            .names())
    }

    fn run(&mut self, stmt: &Statement) -> Result<QueryResult, IvmError> {
        self.db
            .execute_statement(stmt)
            .map_err(|e| IvmError::Engine(e.to_string()))
    }

    /// Run `f` as one durability point. The extension's compound
    /// operations — delta capture around a base-table write, propagation
    /// scripts, view setup — are several engine statements that must
    /// never be torn by a crash: half a capture re-derives wrong deltas,
    /// and a propagated view with undrained deltas double-applies on the
    /// next refresh. The batch commits even when `f` fails part-way (the
    /// in-memory state keeps the applied prefix, and recovery must match
    /// it); the inner error wins over a commit error.
    fn atomic<T>(
        &mut self,
        f: impl FnOnce(&mut IvmSession) -> Result<T, IvmError>,
    ) -> Result<T, IvmError> {
        self.db.begin_atomic();
        let result = f(self);
        let commit = self
            .db
            .end_atomic()
            .map_err(|e| IvmError::Engine(e.to_string()));
        match result {
            Err(e) => Err(e),
            Ok(v) => commit.map(|()| v),
        }
    }

    fn after_capture(&mut self, table: &str) -> Result<(), IvmError> {
        self.stats.intercepted_dml += 1;
        let dependents = self.dependents(table);
        let mut refresh_now = Vec::new();
        for v in dependents {
            let counter = self.pending.entry(v.clone()).or_insert(0);
            *counter += 1;
            match self.flags.propagation {
                PropagationMode::Eager => refresh_now.push(v),
                PropagationMode::Batch(n) if *counter >= n => refresh_now.push(v),
                _ => {}
            }
        }
        for v in refresh_now {
            self.refresh(&v)?;
        }
        Ok(())
    }

    /// Route an INSERT into both the base table and its delta table.
    fn intercept_insert(&mut self, ins: Insert) -> Result<QueryResult, IvmError> {
        if ins.or_replace || ins.on_conflict.is_some() {
            return Err(IvmError::unsupported(
                "upsert on IVM-tracked base tables (use DELETE + INSERT)",
            ));
        }
        let table = ins.table.normalized().to_string();
        let delta = names::delta(&table);
        // Delta column list: the insert's columns (or all) plus multiplicity.
        let mut delta_cols: Vec<Ident> = if ins.columns.is_empty() {
            self.base_table_columns(&table)?
                .into_iter()
                .map(Ident::new)
                .collect()
        } else {
            ins.columns.clone()
        };
        delta_cols.push(Ident::new(MULTIPLICITY_COL));
        let delta_source = match &ins.source {
            InsertSource::Values(rows) => InsertSource::Values(
                rows.iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.push(Expr::boolean(true));
                        r
                    })
                    .collect(),
            ),
            InsertSource::Query(q) => {
                // SELECT q.*, TRUE FROM (query) AS q
                let mut s = Select::new(vec![
                    SelectItem::QualifiedWildcard(Ident::new("q")),
                    SelectItem::aliased(Expr::boolean(true), MULTIPLICITY_COL),
                ]);
                s.from = vec![TableRef::Subquery {
                    query: q.clone(),
                    alias: Ident::new("q"),
                }];
                InsertSource::Query(Box::new(Query {
                    ctes: vec![],
                    body: SetExpr::Select(Box::new(s)),
                    order_by: vec![],
                    limit: None,
                    offset: None,
                }))
            }
        };
        let delta_stmt = Statement::Insert(Insert {
            table: Ident::new(delta),
            columns: delta_cols,
            source: delta_source,
            or_replace: false,
            on_conflict: None,
        });
        self.atomic(|s| {
            let result = s.run(&Statement::Insert(ins))?;
            s.run(&delta_stmt)?;
            s.after_capture(&table)?;
            Ok(result)
        })
    }

    /// An UPDATE becomes delete + insert in the delta stream (as in DBSP):
    /// pre-images with multiplicity FALSE, post-images with TRUE.
    fn intercept_update(&mut self, u: Update) -> Result<QueryResult, IvmError> {
        let table = u.table.normalized().to_string();
        let delta = names::delta(&table);
        let cols = self.base_table_columns(&table)?;

        // Pre-image capture.
        let pre = insert_into(
            &delta,
            delta_capture_select(&table, &cols, u.selection.clone(), None),
        );
        // Post-image capture: apply SET expressions in the projection.
        let assignments: HashMap<String, Expr> = u
            .assignments
            .iter()
            .map(|a| (a.column.normalized().to_string(), a.value.clone()))
            .collect();
        let post = insert_into(
            &delta,
            delta_capture_select(&table, &cols, u.selection.clone(), Some(&assignments)),
        );
        self.atomic(|s| {
            s.run(&pre)?;
            s.run(&post)?;
            // The actual update.
            let result = s.run(&Statement::Update(u))?;
            s.after_capture(&table)?;
            Ok(result)
        })
    }

    fn intercept_delete(&mut self, d: Delete) -> Result<QueryResult, IvmError> {
        let table = d.table.normalized().to_string();
        let delta = names::delta(&table);
        let cols = self.base_table_columns(&table)?;
        let pre = insert_into(
            &delta,
            delta_capture_select(&table, &cols, d.selection.clone(), None),
        );
        self.atomic(|s| {
            s.run(&pre)?;
            let result = s.run(&Statement::Delete(d))?;
            s.after_capture(&table)?;
            Ok(result)
        })
    }

    /// Ingest externally-captured deltas (the cross-system path of
    /// Figure 3): each `(row, multiplicity)` pair is appended to the
    /// table's delta table *and* applied to the local mirror of the base
    /// table, emulating the paper's PostgreSQL-attached access so initial
    /// population and MIN/MAX recomputation see current data. Dependent
    /// views are marked dirty; propagation runs per the session's
    /// [`PropagationMode`].
    pub fn ingest_deltas(
        &mut self,
        table: &str,
        changes: &[(Vec<Value>, bool)],
    ) -> Result<(), IvmError> {
        if changes.is_empty() {
            return Ok(());
        }
        let tracked = self.is_tracked(table);
        // Direct catalog mutations bypass the SQL paths' automatic group
        // commit; the atomic batch makes mirror writes, delta appends, and
        // any eager propagation one durability point.
        self.atomic(|this| {
            {
                let catalog = this.db.catalog_mut();
                // Apply to the mirror first (deletions locate a matching row).
                // On keyless tables, per-deletion `find_row` would re-scan the
                // whole table each time; a [`MirrorIndex`] (row digest → live
                // slot ids) answers every deletion with one probe. The index
                // persists across batches — built once, maintained through
                // this loop's own inserts/deletes, and validated against the
                // table's mutation generation (foreign DML invalidates it).
                let deletions = changes.iter().filter(|(_, insertion)| !insertion).count();
                let mut index: Option<MirrorIndex> = {
                    let base = catalog.table(table).map_err(IvmError::from)?;
                    if base.has_pk_index() {
                        // PK tables answer find_row through the ART in O(1).
                        this.victim_index.remove(table);
                        None
                    } else {
                        match this.victim_index.remove(table) {
                            // A warm index is kept current through *every*
                            // batch — insert-only ones included, so it stays
                            // warm for the next deleting batch.
                            Some(ix) if !ix.poisoned && ix.generation == base.generation() => {
                                Some(ix)
                            }
                            _ if deletions > 0 && MirrorIndex::worth_building(base, deletions) => {
                                Some(MirrorIndex::build(base))
                            }
                            _ => None,
                        }
                    }
                };
                for (row, insertion) in changes {
                    let base = catalog.table_mut(table).map_err(IvmError::from)?;
                    if *insertion {
                        let id = base.insert(row.clone()).map_err(IvmError::from)?;
                        // A row inserted earlier in the batch is fair game for a
                        // later deletion of the same value.
                        if let Some(ix) = &mut index {
                            ix.add(row, id);
                        }
                    } else {
                        let victim = match &mut index {
                            Some(ix) if !ix.poisoned && row.len() == base.schema.len() => {
                                ix.take(row, base)
                            }
                            _ => base.find_row(row),
                        };
                        let victim = victim.ok_or_else(|| {
                            IvmError::catalog(format!(
                                "deletion delta does not match any row of {table}"
                            ))
                        })?;
                        base.delete(victim).map_err(IvmError::from)?;
                    }
                }
                if let Some(mut ix) = index {
                    let base = catalog.table(table).map_err(IvmError::from)?;
                    ix.generation = base.generation();
                    this.victim_index.insert(table.to_string(), ix);
                }
                // Then append to ΔT with the multiplicity flag — only when some
                // view actually consumes this table's deltas.
                if tracked {
                    let delta_name = names::delta(table);
                    let delta = catalog.table_mut(&delta_name).map_err(IvmError::from)?;
                    for (row, insertion) in changes {
                        let mut drow = row.clone();
                        drow.push(Value::Boolean(*insertion));
                        delta.insert(drow).map_err(IvmError::from)?;
                    }
                }
            }
            if tracked {
                this.after_capture(table)?;
            }
            Ok(())
        })?;
        self.republish();
        Ok(())
    }

    /// Run the propagation scripts for a view (and any dirty views sharing
    /// its delta tables, since Step 4 drains them).
    pub fn refresh(&mut self, view: &str) -> Result<(), IvmError> {
        if !self.pending.contains_key(view) {
            return Ok(());
        }
        // Fixpoint of dirty views connected through shared base tables.
        let mut affected: Vec<String> = vec![view.to_string()];
        loop {
            let mut grew = false;
            let tables: Vec<String> = affected
                .iter()
                .filter_map(|v| self.view(v))
                .flat_map(|v| v.base_tables.clone())
                .collect();
            for v in self.views.iter() {
                if self.pending.contains_key(&v.name)
                    && !affected.contains(&v.name)
                    && v.base_tables.iter().any(|t| tables.contains(t))
                {
                    affected.push(v.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Step 1 for every affected view first (they share ΔT)…
        let mut statements: Vec<String> = Vec::new();
        for v in &affected {
            let rv = self.view(v).expect("registered");
            statements.extend(rv.step1.iter().cloned());
        }
        // …then steps 2–4 per view, choosing the adaptive variant where
        // available: small views re-aggregate, large views upsert (the
        // cost-based choice the paper points to as future work).
        for v in &affected {
            let rv = self.view(v).expect("registered");
            let use_regroup = match &rv.rest_alt {
                Some(_) => {
                    let live = self
                        .db
                        .catalog()
                        .table(&rv.name)
                        .map(|t| t.live_rows())
                        .unwrap_or(usize::MAX);
                    live <= self.flags.adaptive_threshold
                }
                None => false,
            };
            let rv = self.view(v).expect("registered");
            let (chosen, is_adaptive): (Vec<String>, bool) = if use_regroup {
                (rv.rest_alt.as_ref().expect("checked").clone(), true)
            } else {
                (rv.rest.clone(), rv.rest_alt.is_some())
            };
            if is_adaptive {
                if use_regroup {
                    self.stats.adaptive_regroups += 1;
                } else {
                    self.stats.adaptive_upserts += 1;
                }
            }
            statements.extend(chosen);
        }
        // One durability point for the whole script: recovering a view
        // updated by steps 2–3 whose delta tables step 4 never drained
        // would re-apply those deltas on the next refresh.
        self.atomic(|s| {
            for sql in &statements {
                if !s.stmt_cache.contains_key(sql) {
                    s.stmt_cache
                        .insert(sql.clone(), parse_statement(sql).map_err(IvmError::from)?);
                }
                let stmt = &s.stmt_cache[sql];
                // The SQL text keys the engine's bound-plan cache too: each
                // maintenance statement is planned/optimized/lowered once and
                // re-executed from the cached physical plan until DDL changes
                // the catalog shape.
                s.db.execute_statement_cached(sql, stmt)
                    .map_err(|e| IvmError::Engine(format!("{e} while running: {sql}")))?;
            }
            Ok(())
        })?;
        self.stats.maintenance_runs += 1;
        self.stats.maintenance_statements += statements.len();
        for v in affected {
            self.pending.remove(&v);
        }
        self.republish();
        Ok(())
    }

    /// Refresh every dirty view.
    pub fn refresh_all(&mut self) -> Result<(), IvmError> {
        let dirty: Vec<String> = self.pending.keys().cloned().collect();
        for v in dirty {
            self.refresh(&v)?;
        }
        Ok(())
    }

    /// Query a materialized view's visible columns (refreshing first under
    /// lazy propagation). Projection-class views expand their Z-set weights
    /// back into duplicate rows, restoring bag semantics.
    pub fn query_view(&mut self, name: &str) -> Result<QueryResult, IvmError> {
        let Some(view) = self.view(name) else {
            return Err(IvmError::catalog(format!(
                "{name} is not a materialized view"
            )));
        };
        let visible = view.visible_columns.clone();
        let weighted = view.weighted_rows;
        self.refresh(name)?;
        let cols = visible.join(", ");
        let sql = if weighted {
            format!("SELECT {cols}, {} FROM {name}", names::COUNT_COL)
        } else {
            format!("SELECT {cols} FROM {name}")
        };
        let mut result = self
            .db
            .query(&sql)
            .map_err(|e| IvmError::Engine(e.to_string()))?;
        if weighted {
            let mut rows = Vec::new();
            for mut row in std::mem::take(&mut result.rows) {
                let weight = match row.pop() {
                    Some(Value::Integer(n)) => n.max(0) as usize,
                    _ => 1,
                };
                for _ in 0..weight {
                    rows.push(row.clone());
                }
            }
            result.rows = rows;
            result.columns.pop();
        }
        Ok(result)
    }

    /// Verify `V == Q(T)` as multisets — used by tests and experiments.
    pub fn check_consistency(&mut self, name: &str) -> Result<bool, IvmError> {
        let Some(view) = self.view(name) else {
            return Err(IvmError::catalog(format!(
                "{name} is not a materialized view"
            )));
        };
        let view_sql = view.artifacts.view_sql.clone();
        let maintained = self.query_view(name)?;
        let recomputed = self
            .db
            .execute(&view_sql)
            .map_err(|e| IvmError::Engine(e.to_string()))?;
        Ok(as_multiset(&maintained.rows) == as_multiset(&recomputed.rows))
    }
}

/// A cold [`MirrorIndex`] build only pays off when there are at least
/// this many deletions or the table is small; below it, per-deletion
/// `find_row` (early-exiting equality scans, which exploit duplicate rows
/// in multiset tables) wins on huge tables. Once built, the index
/// persists across batches, so warm reuse has no threshold at all.
const COLD_BUILD_THRESHOLD: usize = 2;

/// Above this many live rows a cold build must also clear the deletion
/// threshold below; tiny deletion batches on huge keyless tables are
/// cheaper through `find_row`'s early-exit scans.
const COLD_BUILD_LARGE_TABLE: usize = 131_072;

/// On large tables a cold build needs this many deletions in the first
/// batch to amortize the one full-table pass.
const COLD_BUILD_LARGE_THRESHOLD: usize = 24;

/// The chain terminator of [`MirrorIndex::next`].
const NO_SLOT: u32 = u32::MAX;

/// A persistent deletion-victim index over a keyless mirror table: row
/// digest ([`ivm_engine::exec::hash::hash_row`]) → a chain of live slot
/// ids, on the engine's flat hash infrastructure. Equal-digest slots are
/// threaded through one flat `next` array (the same idiom as the join
/// build chains) — no per-digest allocation anywhere.
///
/// Built with one column-at-a-time pass, then maintained *incrementally*
/// through [`IvmSession::ingest_deltas`]'s own inserts and deletes — the
/// IVM idea applied to the mirror itself, so repeated delta batches stop
/// re-scanning the base table per batch. `generation` pins the index to
/// the table's mutation counter (unique per table *instance*): any
/// foreign DML — intercepted SQL writes, truncates, compaction, even a
/// drop-and-recreate under the same name — mismatches and the index
/// rebuilds on the next ingest. Lookups inherit [`FlatTable`]'s
/// group-wise tag probing (SWAR/SSE2), so a digest probe scans 16
/// control tags per step. Digest collisions are harmless:
/// colliding rows share a chain and [`MirrorIndex::take`] verifies the
/// actual column values before surrendering an id. Tables beyond
/// `u32::MAX` physical slots are never indexed (slot ids are stored as
/// u32).
#[derive(Debug)]
struct MirrorIndex {
    /// Table mutation generation this index is valid at.
    generation: u64,
    /// digest → chain-head slot id.
    table: FlatTable,
    /// Per physical slot: the next slot in its equal-digest chain
    /// ([`NO_SLOT`] ends; indexed by slot id, grown by
    /// [`MirrorIndex::add`]).
    next: Vec<u32>,
    /// Set when a slot id outgrew the u32 chain space; a poisoned index
    /// is discarded instead of being reused.
    poisoned: bool,
}

impl MirrorIndex {
    /// Whether a cold build amortizes for this batch (see the thresholds
    /// above).
    fn worth_building(base: &ivm_engine::Table, deletions: usize) -> bool {
        deletions >= COLD_BUILD_THRESHOLD
            && (base.live_rows() <= COLD_BUILD_LARGE_TABLE
                || deletions >= COLD_BUILD_LARGE_THRESHOLD)
            && base.total_slots() < NO_SLOT as usize
    }

    /// One pass over the live rows: digest straight off the column
    /// vectors. Slots are visited in *reverse* and prepended, so chains
    /// iterate in ascending slot order (matching `find_row`'s
    /// first-equal-row victim choice).
    fn build(base: &ivm_engine::Table) -> MirrorIndex {
        let columns: Vec<&[Value]> = (0..base.schema.len()).map(|i| base.column(i)).collect();
        let total = base.total_slots();
        let mut index = MirrorIndex {
            generation: base.generation(),
            table: FlatTable::with_capacity(base.live_rows().min(1 << 20)),
            next: vec![NO_SLOT; total],
            poisoned: false,
        };
        for id in base.live_slot_ids().rev() {
            let idx = id as usize;
            let digest = hash_value_iter(columns.iter().map(|c| &c[idx]));
            index.prepend(digest, id as u32);
        }
        index
    }

    fn prepend(&mut self, digest: u64, id: u32) {
        let next = &mut self.next;
        chain_prepend(
            &mut self.table,
            digest,
            id,
            |_| true,
            |head| next[id as usize] = head,
        );
    }

    /// Record a row this session just inserted. Prepending is fine: any
    /// equal row is a valid deletion victim on a multiset table.
    fn add(&mut self, row: &[Value], id: u64) {
        if self.poisoned {
            return;
        }
        let Ok(id32) = u32::try_from(id) else {
            self.poisoned = true;
            return;
        };
        if id32 == NO_SLOT {
            self.poisoned = true;
            return;
        }
        let id = id as usize;
        if self.next.len() <= id {
            self.next.resize(id + 1, NO_SLOT);
        }
        self.prepend(hash_row(row), id32);
    }

    /// Unlink and return the first chained slot whose row equals
    /// `target`, verifying column values (digest collisions share
    /// chains).
    fn take(&mut self, target: &[Value], base: &ivm_engine::Table) -> Option<u64> {
        let digest = hash_row(target);
        let head = self.table.find_mut(digest, |_| true)?;
        let row_eq = |id: u32| {
            let idx = id as usize;
            target
                .iter()
                .enumerate()
                .all(|(c, t)| &base.column(c)[idx] == t)
        };
        let mut cur = *head;
        if cur != NO_SLOT && row_eq(cur) {
            *head = self.next[cur as usize];
            return Some(u64::from(cur));
        }
        while cur != NO_SLOT {
            let nxt = self.next[cur as usize];
            if nxt != NO_SLOT && row_eq(nxt) {
                self.next[cur as usize] = self.next[nxt as usize];
                return Some(u64::from(nxt));
            }
            cur = nxt;
        }
        None
    }
}

fn as_multiset(rows: &[Vec<Value>]) -> HashMap<Vec<Value>, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(normalize_row(r)).or_insert(0) += 1;
    }
    m
}

/// Normalize numeric values so INTEGER 3 and DOUBLE 3.0 compare equal (the
/// maintained view may widen types through arithmetic).
fn normalize_row(row: &[Value]) -> Vec<Value> {
    row.iter()
        .map(|v| match v {
            Value::Integer(i) => Value::Double(*i as f64),
            other => other.clone(),
        })
        .collect()
}

/// `SELECT <cols or assignment exprs>, <mult> FROM table [WHERE …]`.
fn delta_capture_select(
    table: &str,
    cols: &[String],
    selection: Option<Expr>,
    assignments: Option<&HashMap<String, Expr>>,
) -> Query {
    let mut proj: Vec<SelectItem> = cols
        .iter()
        .map(|c| {
            let expr = match assignments.and_then(|a| a.get(c)) {
                Some(e) => e.clone(),
                None => Expr::col(c.clone()),
            };
            SelectItem::aliased(expr, c.clone())
        })
        .collect();
    let mult = assignments.is_some();
    proj.push(SelectItem::aliased(Expr::boolean(mult), MULTIPLICITY_COL));
    let mut s = Select::new(proj);
    s.from = vec![TableRef::table(table)];
    s.selection = selection;
    Query {
        ctes: vec![],
        body: SetExpr::Select(Box::new(s)),
        order_by: vec![],
        limit: None,
        offset: None,
    }
}

fn insert_into(table: &str, source: Query) -> Statement {
    Statement::Insert(Insert {
        table: Ident::new(table),
        columns: vec![],
        source: InsertSource::Query(Box::new(source)),
        or_replace: false,
        on_conflict: None,
    })
}

/// Print a statement for debugging (used by the examples).
pub fn statement_to_sql(stmt: &Statement, dialect: ivm_sql::Dialect) -> String {
    print_statement(stmt, dialect)
}
