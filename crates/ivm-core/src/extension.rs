//! The OpenIVM extension session: IVM *inside* the engine.
//!
//! Mirrors §2's "The Extension Module: OpenIVM inside DuckDB": a fall-back
//! handler catches `CREATE MATERIALIZED VIEW` (which the plain engine
//! rejects), executes the compiled output, and registers interception rules
//! that route `INSERT`/`UPDATE`/`DELETE` on base tables into the delta
//! tables and kick off the propagation scripts — eagerly, lazily on view
//! query, or per batch, per [`PropagationMode`].

use std::collections::HashMap;

use ivm_engine::{Database, ErrorKind, QueryResult, Value};
use ivm_sql::ast::{
    Delete, Expr, Insert, InsertSource, Query, Select, SelectItem, SetExpr, Statement, TableRef,
    Update,
};
use ivm_sql::{parse_statement, print_statement, Ident};

use crate::compiler::{IvmArtifacts, IvmCompiler};
use crate::error::IvmError;
use crate::flags::{IvmFlags, PropagationMode};
use crate::metadata;
use crate::names::{self, MULTIPLICITY_COL};

/// A registered materialized view.
#[derive(Debug, Clone)]
pub struct RegisteredView {
    /// View (and table) name.
    pub name: String,
    /// Base tables feeding the view.
    pub base_tables: Vec<String>,
    /// Visible (non-hidden) column names.
    pub visible_columns: Vec<String>,
    /// Whether the view is a projection class (rows carry duplicate
    /// weights that expand on read).
    pub weighted_rows: bool,
    /// Maintenance statements by step: step-1 statements first, the rest
    /// after (split so multi-view refreshes can share delta tables).
    step1: Vec<String>,
    rest: Vec<String>,
    /// Steps 2–4 of the regroup variant (adaptive strategy only).
    rest_alt: Option<Vec<String>>,
    /// Full artifacts, kept for inspection.
    pub artifacts: IvmArtifacts,
}

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// DML statements intercepted into delta tables.
    pub intercepted_dml: usize,
    /// Propagation script executions.
    pub maintenance_runs: usize,
    /// Individual maintenance statements executed.
    pub maintenance_statements: usize,
    /// Adaptive strategy: refreshes that took the indexed-upsert path.
    pub adaptive_upserts: usize,
    /// Adaptive strategy: refreshes that took the regroup path.
    pub adaptive_regroups: usize,
}

/// An engine session with the OpenIVM extension loaded.
#[derive(Debug)]
pub struct IvmSession {
    db: Database,
    flags: IvmFlags,
    compiler: IvmCompiler,
    views: Vec<RegisteredView>,
    /// Views with unpropagated deltas → number of pending DML statements.
    pending: HashMap<String, usize>,
    /// Parsed-statement cache for the maintenance scripts: the same fixed
    /// SQL strings run on every refresh, so each is parsed exactly once.
    stmt_cache: HashMap<String, Statement>,
    stats: SessionStats,
}

impl IvmSession {
    /// New session with the given compiler flags.
    pub fn new(flags: IvmFlags) -> IvmSession {
        IvmSession {
            db: Database::new(),
            flags,
            compiler: IvmCompiler::new(),
            views: Vec::new(),
            pending: HashMap::new(),
            stmt_cache: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Session with the paper's default flags.
    pub fn with_defaults() -> IvmSession {
        IvmSession::new(IvmFlags::paper_defaults())
    }

    /// Borrow the underlying engine.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutably borrow the underlying engine (bulk loading).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Set the engine's executor parallelism (worker threads; clamped to
    /// ≥ 1). Affects full recomputation and propagation-script execution
    /// alike; 1 is the serial operator tree.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.db.set_parallelism(workers);
    }

    /// The engine's executor parallelism.
    pub fn parallelism(&self) -> usize {
        self.db.parallelism()
    }

    /// The active flags.
    pub fn flags(&self) -> &IvmFlags {
        &self.flags
    }

    /// Experiment counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Registered views.
    pub fn views(&self) -> &[RegisteredView] {
        &self.views
    }

    /// Look up a registered view.
    pub fn view(&self, name: &str) -> Option<&RegisteredView> {
        self.views.iter().find(|v| v.name == name)
    }

    /// Execute one SQL statement through the extension pipeline.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, IvmError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(stmt)
    }

    /// Execute a `;`-separated script.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>, IvmError> {
        let stmts = ivm_sql::parse_statements(sql)?;
        stmts
            .into_iter()
            .map(|s| self.execute_statement(s))
            .collect()
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<QueryResult, IvmError> {
        // Interception rules run before the engine sees the statement.
        match &stmt {
            Statement::Insert(ins) if self.is_tracked(ins.table.normalized()) => {
                return self.intercept_insert(ins.clone());
            }
            Statement::Update(u) if self.is_tracked(u.table.normalized()) => {
                return self.intercept_update(u.clone());
            }
            Statement::Delete(d) if self.is_tracked(d.table.normalized()) => {
                return self.intercept_delete(d.clone());
            }
            Statement::Drop(d)
                if d.kind == ivm_sql::ast::DropKind::View
                    && self.view(d.name.normalized()).is_some() =>
            {
                let name = d.name.normalized().to_string();
                self.drop_materialized_view(&name)?;
                return Ok(QueryResult::default());
            }
            Statement::Drop(d)
                if d.kind == ivm_sql::ast::DropKind::Table
                    && self.is_tracked(d.name.normalized()) =>
            {
                return Err(IvmError::catalog(format!(
                    "table {} feeds materialized views; drop those first",
                    d.name.normalized()
                )));
            }
            Statement::Query(q) => {
                // Lazy refresh: propagate before reading any stale view.
                let referenced: Vec<String> = q
                    .referenced_tables()
                    .iter()
                    .map(|i| i.normalized().to_string())
                    .collect();
                let stale: Vec<String> = referenced
                    .into_iter()
                    .filter(|t| self.view(t).is_some() && self.pending.contains_key(t))
                    .collect();
                for v in stale {
                    self.refresh(&v)?;
                }
            }
            _ => {}
        }
        // The fall-back path: the engine rejects CREATE MATERIALIZED VIEW
        // as unsupported; the extension catches exactly that case (the
        // paper's fall-back parser flow) and handles it.
        match self.db.execute_statement(&stmt) {
            Ok(r) => Ok(r),
            Err(e) if e.kind() == ErrorKind::Unsupported => {
                if let Statement::CreateView(cv) = &stmt {
                    if cv.materialized {
                        self.create_materialized_view(cv.clone())?;
                        return Ok(QueryResult::default());
                    }
                }
                Err(IvmError::Engine(e.to_string()))
            }
            Err(e) => Err(IvmError::Engine(e.to_string())),
        }
    }

    /// Compile and install a materialized view.
    pub fn create_materialized_view(
        &mut self,
        cv: ivm_sql::ast::CreateView,
    ) -> Result<&RegisteredView, IvmError> {
        let artifacts = self.compiler.compile(&cv, self.db.catalog(), &self.flags)?;
        for stmt in artifacts.setup_statements() {
            self.db
                .execute(&stmt)
                .map_err(|e| IvmError::Engine(format!("{e} while running: {stmt}")))?;
        }
        let weighted_rows = artifacts.analysis.aggs.is_empty();
        let visible_columns = artifacts
            .analysis
            .output
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let (step1, rest): (Vec<_>, Vec<_>) = artifacts
            .propagation
            .steps
            .iter()
            .partition(|s| s.step == 1);
        let rest_alt = artifacts.alt_propagation.as_ref().map(|alt| {
            alt.steps
                .iter()
                .filter(|s| s.step != 1)
                .map(|s| s.sql.clone())
                .collect()
        });
        let view = RegisteredView {
            name: artifacts.analysis.view_name.clone(),
            base_tables: artifacts.analysis.base_tables.clone(),
            visible_columns,
            weighted_rows,
            step1: step1.into_iter().map(|s| s.sql.clone()).collect(),
            rest: rest.into_iter().map(|s| s.sql.clone()).collect(),
            rest_alt,
            artifacts,
        };
        self.views.push(view);
        Ok(self.views.last().expect("just pushed"))
    }

    /// Drop a materialized view and its generated objects. Shared delta
    /// tables survive while other views still read them.
    pub fn drop_materialized_view(&mut self, name: &str) -> Result<(), IvmError> {
        let Some(pos) = self.views.iter().position(|v| v.name == name) else {
            return Err(IvmError::catalog(format!(
                "{name} is not a materialized view"
            )));
        };
        let view = self.views.remove(pos);
        self.pending.remove(name);
        let mut drops = vec![
            format!("DROP TABLE {}", view.name),
            format!("DROP TABLE {}", names::delta(&view.name)),
            format!("DROP TABLE IF EXISTS {}", names::stage(&view.name)),
        ];
        for t in &view.base_tables {
            let still_used = self.views.iter().any(|v| v.base_tables.contains(t));
            if !still_used {
                drops.push(format!("DROP TABLE IF EXISTS {}", names::delta(t)));
            }
        }
        drops.extend(metadata::metadata_remove(name));
        for stmt in drops {
            self.db
                .execute(&stmt)
                .map_err(|e| IvmError::Engine(e.to_string()))?;
        }
        Ok(())
    }

    fn is_tracked(&self, table: &str) -> bool {
        self.views
            .iter()
            .any(|v| v.base_tables.iter().any(|t| t == table))
    }

    fn dependents(&self, table: &str) -> Vec<String> {
        self.views
            .iter()
            .filter(|v| v.base_tables.iter().any(|t| t == table))
            .map(|v| v.name.clone())
            .collect()
    }

    fn base_table_columns(&self, table: &str) -> Result<Vec<String>, IvmError> {
        Ok(self
            .db
            .catalog()
            .table(table)
            .map_err(|e| IvmError::Engine(e.to_string()))?
            .schema
            .names())
    }

    fn run(&mut self, stmt: &Statement) -> Result<QueryResult, IvmError> {
        self.db
            .execute_statement(stmt)
            .map_err(|e| IvmError::Engine(e.to_string()))
    }

    fn after_capture(&mut self, table: &str) -> Result<(), IvmError> {
        self.stats.intercepted_dml += 1;
        let dependents = self.dependents(table);
        let mut refresh_now = Vec::new();
        for v in dependents {
            let counter = self.pending.entry(v.clone()).or_insert(0);
            *counter += 1;
            match self.flags.propagation {
                PropagationMode::Eager => refresh_now.push(v),
                PropagationMode::Batch(n) if *counter >= n => refresh_now.push(v),
                _ => {}
            }
        }
        for v in refresh_now {
            self.refresh(&v)?;
        }
        Ok(())
    }

    /// Route an INSERT into both the base table and its delta table.
    fn intercept_insert(&mut self, ins: Insert) -> Result<QueryResult, IvmError> {
        if ins.or_replace || ins.on_conflict.is_some() {
            return Err(IvmError::unsupported(
                "upsert on IVM-tracked base tables (use DELETE + INSERT)",
            ));
        }
        let table = ins.table.normalized().to_string();
        let delta = names::delta(&table);
        // Delta column list: the insert's columns (or all) plus multiplicity.
        let mut delta_cols: Vec<Ident> = if ins.columns.is_empty() {
            self.base_table_columns(&table)?
                .into_iter()
                .map(Ident::new)
                .collect()
        } else {
            ins.columns.clone()
        };
        delta_cols.push(Ident::new(MULTIPLICITY_COL));
        let delta_source = match &ins.source {
            InsertSource::Values(rows) => InsertSource::Values(
                rows.iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.push(Expr::boolean(true));
                        r
                    })
                    .collect(),
            ),
            InsertSource::Query(q) => {
                // SELECT q.*, TRUE FROM (query) AS q
                let mut s = Select::new(vec![
                    SelectItem::QualifiedWildcard(Ident::new("q")),
                    SelectItem::aliased(Expr::boolean(true), MULTIPLICITY_COL),
                ]);
                s.from = vec![TableRef::Subquery {
                    query: q.clone(),
                    alias: Ident::new("q"),
                }];
                InsertSource::Query(Box::new(Query {
                    ctes: vec![],
                    body: SetExpr::Select(Box::new(s)),
                    order_by: vec![],
                    limit: None,
                    offset: None,
                }))
            }
        };
        let delta_stmt = Statement::Insert(Insert {
            table: Ident::new(delta),
            columns: delta_cols,
            source: delta_source,
            or_replace: false,
            on_conflict: None,
        });
        let result = self.run(&Statement::Insert(ins))?;
        self.run(&delta_stmt)?;
        self.after_capture(&table)?;
        Ok(result)
    }

    /// An UPDATE becomes delete + insert in the delta stream (as in DBSP):
    /// pre-images with multiplicity FALSE, post-images with TRUE.
    fn intercept_update(&mut self, u: Update) -> Result<QueryResult, IvmError> {
        let table = u.table.normalized().to_string();
        let delta = names::delta(&table);
        let cols = self.base_table_columns(&table)?;

        // Pre-image capture.
        let pre = delta_capture_select(&table, &cols, u.selection.clone(), None);
        self.run(&insert_into(&delta, pre))?;
        // Post-image capture: apply SET expressions in the projection.
        let assignments: HashMap<String, Expr> = u
            .assignments
            .iter()
            .map(|a| (a.column.normalized().to_string(), a.value.clone()))
            .collect();
        let post = delta_capture_select(&table, &cols, u.selection.clone(), Some(&assignments));
        self.run(&insert_into(&delta, post))?;
        // The actual update.
        let result = self.run(&Statement::Update(u))?;
        self.after_capture(&table)?;
        Ok(result)
    }

    fn intercept_delete(&mut self, d: Delete) -> Result<QueryResult, IvmError> {
        let table = d.table.normalized().to_string();
        let delta = names::delta(&table);
        let cols = self.base_table_columns(&table)?;
        let pre = delta_capture_select(&table, &cols, d.selection.clone(), None);
        self.run(&insert_into(&delta, pre))?;
        let result = self.run(&Statement::Delete(d))?;
        self.after_capture(&table)?;
        Ok(result)
    }

    /// Ingest externally-captured deltas (the cross-system path of
    /// Figure 3): each `(row, multiplicity)` pair is appended to the
    /// table's delta table *and* applied to the local mirror of the base
    /// table, emulating the paper's PostgreSQL-attached access so initial
    /// population and MIN/MAX recomputation see current data. Dependent
    /// views are marked dirty; propagation runs per the session's
    /// [`PropagationMode`].
    pub fn ingest_deltas(
        &mut self,
        table: &str,
        changes: &[(Vec<Value>, bool)],
    ) -> Result<(), IvmError> {
        if changes.is_empty() {
            return Ok(());
        }
        let tracked = self.is_tracked(table);
        {
            let catalog = self.db.catalog_mut();
            // Apply to the mirror first (deletions locate a matching row).
            // On keyless tables, per-deletion `find_row` would re-scan the
            // whole table each time; locate all victims in one scan instead.
            let mut victims = {
                let base = catalog.table(table).map_err(IvmError::from)?;
                batch_deletion_victims(base, changes)
            };
            for (row, insertion) in changes {
                let base = catalog.table_mut(table).map_err(IvmError::from)?;
                if *insertion {
                    let id = base.insert(row.clone()).map_err(IvmError::from)?;
                    // A row inserted earlier in the batch is fair game for a
                    // later deletion of the same value.
                    if let Some(v) = &mut victims {
                        if let Some(queue) = v.get_mut(row) {
                            queue.push_back(id);
                        }
                    }
                } else {
                    let victim = match &mut victims {
                        Some(v) => v
                            .get_mut(row)
                            .and_then(std::collections::VecDeque::pop_front),
                        None => base.find_row(row),
                    };
                    let victim = victim.ok_or_else(|| {
                        IvmError::catalog(format!(
                            "deletion delta does not match any row of {table}"
                        ))
                    })?;
                    base.delete(victim).map_err(IvmError::from)?;
                }
            }
            // Then append to ΔT with the multiplicity flag — only when some
            // view actually consumes this table's deltas.
            if tracked {
                let delta_name = names::delta(table);
                let delta = catalog.table_mut(&delta_name).map_err(IvmError::from)?;
                for (row, insertion) in changes {
                    let mut drow = row.clone();
                    drow.push(Value::Boolean(*insertion));
                    delta.insert(drow).map_err(IvmError::from)?;
                }
            }
        }
        if tracked {
            self.after_capture(table)?;
        }
        Ok(())
    }

    /// Run the propagation scripts for a view (and any dirty views sharing
    /// its delta tables, since Step 4 drains them).
    pub fn refresh(&mut self, view: &str) -> Result<(), IvmError> {
        if !self.pending.contains_key(view) {
            return Ok(());
        }
        // Fixpoint of dirty views connected through shared base tables.
        let mut affected: Vec<String> = vec![view.to_string()];
        loop {
            let mut grew = false;
            let tables: Vec<String> = affected
                .iter()
                .filter_map(|v| self.view(v))
                .flat_map(|v| v.base_tables.clone())
                .collect();
            for v in self.views.iter() {
                if self.pending.contains_key(&v.name)
                    && !affected.contains(&v.name)
                    && v.base_tables.iter().any(|t| tables.contains(t))
                {
                    affected.push(v.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Step 1 for every affected view first (they share ΔT)…
        let mut statements: Vec<String> = Vec::new();
        for v in &affected {
            let rv = self.view(v).expect("registered");
            statements.extend(rv.step1.iter().cloned());
        }
        // …then steps 2–4 per view, choosing the adaptive variant where
        // available: small views re-aggregate, large views upsert (the
        // cost-based choice the paper points to as future work).
        for v in &affected {
            let rv = self.view(v).expect("registered");
            let use_regroup = match &rv.rest_alt {
                Some(_) => {
                    let live = self
                        .db
                        .catalog()
                        .table(&rv.name)
                        .map(|t| t.live_rows())
                        .unwrap_or(usize::MAX);
                    live <= self.flags.adaptive_threshold
                }
                None => false,
            };
            let rv = self.view(v).expect("registered");
            let (chosen, is_adaptive): (Vec<String>, bool) = if use_regroup {
                (rv.rest_alt.as_ref().expect("checked").clone(), true)
            } else {
                (rv.rest.clone(), rv.rest_alt.is_some())
            };
            if is_adaptive {
                if use_regroup {
                    self.stats.adaptive_regroups += 1;
                } else {
                    self.stats.adaptive_upserts += 1;
                }
            }
            statements.extend(chosen);
        }
        for sql in &statements {
            if !self.stmt_cache.contains_key(sql) {
                self.stmt_cache
                    .insert(sql.clone(), parse_statement(sql).map_err(IvmError::from)?);
            }
            let stmt = &self.stmt_cache[sql];
            // The SQL text keys the engine's bound-plan cache too: each
            // maintenance statement is planned/optimized/lowered once and
            // re-executed from the cached physical plan until DDL changes
            // the catalog shape.
            self.db
                .execute_statement_cached(sql, stmt)
                .map_err(|e| IvmError::Engine(format!("{e} while running: {sql}")))?;
        }
        self.stats.maintenance_runs += 1;
        self.stats.maintenance_statements += statements.len();
        for v in affected {
            self.pending.remove(&v);
        }
        Ok(())
    }

    /// Refresh every dirty view.
    pub fn refresh_all(&mut self) -> Result<(), IvmError> {
        let dirty: Vec<String> = self.pending.keys().cloned().collect();
        for v in dirty {
            self.refresh(&v)?;
        }
        Ok(())
    }

    /// Query a materialized view's visible columns (refreshing first under
    /// lazy propagation). Projection-class views expand their Z-set weights
    /// back into duplicate rows, restoring bag semantics.
    pub fn query_view(&mut self, name: &str) -> Result<QueryResult, IvmError> {
        let Some(view) = self.view(name) else {
            return Err(IvmError::catalog(format!(
                "{name} is not a materialized view"
            )));
        };
        let visible = view.visible_columns.clone();
        let weighted = view.weighted_rows;
        self.refresh(name)?;
        let cols = visible.join(", ");
        let sql = if weighted {
            format!("SELECT {cols}, {} FROM {name}", names::COUNT_COL)
        } else {
            format!("SELECT {cols} FROM {name}")
        };
        let mut result = self
            .db
            .query(&sql)
            .map_err(|e| IvmError::Engine(e.to_string()))?;
        if weighted {
            let mut rows = Vec::new();
            for mut row in std::mem::take(&mut result.rows) {
                let weight = match row.pop() {
                    Some(Value::Integer(n)) => n.max(0) as usize,
                    _ => 1,
                };
                for _ in 0..weight {
                    rows.push(row.clone());
                }
            }
            result.rows = rows;
            result.columns.pop();
        }
        Ok(result)
    }

    /// Verify `V == Q(T)` as multisets — used by tests and experiments.
    pub fn check_consistency(&mut self, name: &str) -> Result<bool, IvmError> {
        let Some(view) = self.view(name) else {
            return Err(IvmError::catalog(format!(
                "{name} is not a materialized view"
            )));
        };
        let view_sql = view.artifacts.view_sql.clone();
        let maintained = self.query_view(name)?;
        let recomputed = self
            .db
            .execute(&view_sql)
            .map_err(|e| IvmError::Engine(e.to_string()))?;
        Ok(as_multiset(&maintained.rows) == as_multiset(&recomputed.rows))
    }
}

/// A non-cryptographic FNV-1a hasher for the deletion pre-filter: the
/// batch scan hashes every live row once, so SipHash (the std default)
/// would dominate the pass.
#[derive(Debug)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A whole-table victim pass only pays off when there are at least this
/// many deletions or the table is small; below it, per-deletion
/// `find_row` (early-exiting equality scans, which exploit duplicate rows
/// in multiset tables) wins on huge tables.
const BATCH_DELETION_THRESHOLD: usize = 2;

/// Above this many live rows a batch pass must also clear the deletion
/// threshold below; tiny deletion batches on huge keyless tables are
/// cheaper through `find_row`'s early-exit scans.
const BATCH_DELETION_LARGE_TABLE: usize = 131_072;

/// On large tables a batch pass needs this many deletions to amortize
/// touching every row.
const BATCH_DELETION_LARGE_THRESHOLD: usize = 64;

/// Rows sampled to pick the most selective prefilter column.
const PREFILTER_SAMPLE: usize = 512;

/// Prefilter columns whose sampled hit rate exceeds this are useless.
const PREFILTER_MAX_HIT_RATE: f64 = 0.6;

/// Locate deletion victims for a whole delta batch in a single pass over
/// the mirror's columns.
///
/// Returns `None` when the table has a primary key (per-row `find_row` is
/// an O(1) index probe there) or the batch is cheaper through per-row
/// scans (see the thresholds above). For keyless tables the pass is
/// column-at-a-time and layered: a *sampled* single-column prefilter (the
/// column whose deletion-target value set rejects the most sampled rows)
/// eliminates most rows with one cheap set probe, survivors are checked
/// against the full-row hash set computed straight off the column
/// vectors, and only hash hits are cloned and verified. Each deletion
/// later pops one victim id, matching `find_row`'s any-equal-row choice.
fn batch_deletion_victims(
    base: &ivm_engine::Table,
    changes: &[(Vec<Value>, bool)],
) -> Option<HashMap<Vec<Value>, std::collections::VecDeque<u64>>> {
    use std::collections::VecDeque;
    use std::hash::{Hash, Hasher};

    if base.has_pk_index() {
        return None;
    }
    let deletions = changes.iter().filter(|(_, insertion)| !insertion).count();
    if deletions < BATCH_DELETION_THRESHOLD {
        return None;
    }
    if base.live_rows() > BATCH_DELETION_LARGE_TABLE && deletions < BATCH_DELETION_LARGE_THRESHOLD {
        return None;
    }
    let row_hash = |row: &mut dyn Iterator<Item = &Value>| {
        let mut h = FnvHasher(0xCBF2_9CE4_8422_2325);
        for v in row {
            v.hash(&mut h);
        }
        h.finish()
    };
    let mut victims: HashMap<Vec<Value>, VecDeque<u64>> = HashMap::new();
    // How many victims each distinct target row actually needs (its
    // deletion multiplicity in the batch) — the scan can stop as soon as
    // every target is satisfied.
    let mut needed: HashMap<Vec<Value>, usize> = HashMap::new();
    // Full-row FNV digests of the deletion targets, probed by binary
    // search (no second hash of the 64-bit digest).
    let mut hashes: Vec<u64> = Vec::new();
    for (row, insertion) in changes {
        if !insertion && row.len() == base.schema.len() {
            hashes.push(row_hash(&mut row.iter()));
            victims.entry(row.clone()).or_default();
            *needed.entry(row.clone()).or_insert(0) += 1;
        }
    }
    if victims.is_empty() {
        return None;
    }
    let mut outstanding = victims.len();
    hashes.sort_unstable();
    hashes.dedup();
    let columns: Vec<&[Value]> = (0..base.schema.len()).map(|i| base.column(i)).collect();
    let live_ids = base.live_row_ids();

    // One candidate prefilter per column: the set of values the deletion
    // targets carry there. Integer-family columns compare raw i64s —
    // no hashing at all; everything else probes by value digest.
    let prefilters: Vec<Prefilter> = (0..base.schema.len())
        .map(|c| Prefilter::build(victims.keys().map(|row| &row[c])))
        .collect();
    // Sample evenly-spaced live rows and keep the column whose target set
    // rejects the most rows; a column that passes most rows anyway (heavy
    // value overlap) is skipped entirely.
    let prefilter: Option<usize> = {
        let step = (live_ids.len() / PREFILTER_SAMPLE).max(1);
        let sample: Vec<usize> = live_ids
            .iter()
            .step_by(step)
            .map(|&id| id as usize)
            .collect();
        (0..base.schema.len())
            .map(|c| {
                let hits = sample
                    .iter()
                    .filter(|&&idx| prefilters[c].hit(&columns[c][idx]))
                    .count();
                // Typed filters probe cheaper: half-a-hit tiebreak.
                (2 * hits + usize::from(!prefilters[c].is_typed()), c)
            })
            .min()
            .filter(|&(scaled_hits, _)| {
                !sample.is_empty()
                    && (scaled_hits / 2) as f64 / (sample.len() as f64) <= PREFILTER_MAX_HIT_RATE
            })
            .map(|(_, c)| c)
    };

    for id in live_ids {
        let idx = id as usize;
        if let Some(c) = prefilter {
            if !prefilters[c].hit(&columns[c][idx]) {
                continue;
            }
        }
        if hashes
            .binary_search(&row_hash(&mut columns.iter().map(|c| &c[idx])))
            .is_err()
        {
            continue;
        }
        let row: Vec<Value> = columns.iter().map(|c| c[idx].clone()).collect();
        if let Some(queue) = victims.get_mut(&row) {
            let cap = needed[&row];
            if queue.len() < cap {
                queue.push_back(id);
                if queue.len() == cap {
                    outstanding -= 1;
                    if outstanding == 0 {
                        break;
                    }
                }
            }
        }
    }
    Some(victims)
}

/// A single-column membership prefilter over deletion-target values.
enum Prefilter {
    /// All targets are integer-family scalars: raw i64 binary search.
    Typed { sorted: Vec<i64>, has_null: bool },
    /// Arbitrary values: FNV digest binary search.
    Hashed { sorted: Vec<u64>, has_null: bool },
}

impl Prefilter {
    fn build<'v>(targets: impl Iterator<Item = &'v Value> + Clone) -> Prefilter {
        use std::hash::{Hash, Hasher};
        let has_null = targets.clone().any(Value::is_null);
        let typed: Option<Vec<i64>> = targets
            .clone()
            .filter(|v| !v.is_null())
            .map(|v| match v {
                Value::Integer(i) => Some(*i),
                Value::Date(d) => Some(i64::from(*d)),
                Value::Boolean(b) => Some(i64::from(*b)),
                _ => None,
            })
            .collect();
        match typed {
            Some(mut sorted) => {
                sorted.sort_unstable();
                sorted.dedup();
                Prefilter::Typed { sorted, has_null }
            }
            None => {
                let mut sorted: Vec<u64> = targets
                    .filter(|v| !v.is_null())
                    .map(|v| {
                        let mut h = FnvHasher(0xCBF2_9CE4_8422_2325);
                        v.hash(&mut h);
                        h.finish()
                    })
                    .collect();
                sorted.sort_unstable();
                sorted.dedup();
                Prefilter::Hashed { sorted, has_null }
            }
        }
    }

    fn is_typed(&self) -> bool {
        matches!(self, Prefilter::Typed { .. })
    }

    /// Could this row value equal one of the targets? (False positives are
    /// fine — the full-row digest check runs behind it.)
    fn hit(&self, v: &Value) -> bool {
        use std::hash::{Hash, Hasher};
        match self {
            Prefilter::Typed { sorted, has_null } => match v {
                Value::Null => *has_null,
                Value::Integer(i) => sorted.binary_search(i).is_ok(),
                Value::Date(d) => sorted.binary_search(&i64::from(*d)).is_ok(),
                Value::Boolean(b) => sorted.binary_search(&i64::from(*b)).is_ok(),
                // A differently-typed value can still group-compare equal
                // (e.g. DOUBLE 3.0 = INTEGER 3): let it through.
                _ => true,
            },
            Prefilter::Hashed { sorted, has_null } => {
                if v.is_null() {
                    return *has_null;
                }
                let mut h = FnvHasher(0xCBF2_9CE4_8422_2325);
                v.hash(&mut h);
                sorted.binary_search(&h.finish()).is_ok()
            }
        }
    }
}

fn as_multiset(rows: &[Vec<Value>]) -> HashMap<Vec<Value>, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(normalize_row(r)).or_insert(0) += 1;
    }
    m
}

/// Normalize numeric values so INTEGER 3 and DOUBLE 3.0 compare equal (the
/// maintained view may widen types through arithmetic).
fn normalize_row(row: &[Value]) -> Vec<Value> {
    row.iter()
        .map(|v| match v {
            Value::Integer(i) => Value::Double(*i as f64),
            other => other.clone(),
        })
        .collect()
}

/// `SELECT <cols or assignment exprs>, <mult> FROM table [WHERE …]`.
fn delta_capture_select(
    table: &str,
    cols: &[String],
    selection: Option<Expr>,
    assignments: Option<&HashMap<String, Expr>>,
) -> Query {
    let mut proj: Vec<SelectItem> = cols
        .iter()
        .map(|c| {
            let expr = match assignments.and_then(|a| a.get(c)) {
                Some(e) => e.clone(),
                None => Expr::col(c.clone()),
            };
            SelectItem::aliased(expr, c.clone())
        })
        .collect();
    let mult = assignments.is_some();
    proj.push(SelectItem::aliased(Expr::boolean(mult), MULTIPLICITY_COL));
    let mut s = Select::new(proj);
    s.from = vec![TableRef::table(table)];
    s.selection = selection;
    Query {
        ctes: vec![],
        body: SetExpr::Select(Box::new(s)),
        order_by: vec![],
        limit: None,
        offset: None,
    }
}

fn insert_into(table: &str, source: Query) -> Statement {
    Statement::Insert(Insert {
        table: Ident::new(table),
        columns: vec![],
        source: InsertSource::Query(Box::new(source)),
        or_replace: false,
        on_conflict: None,
    })
}

/// Print a statement for debugging (used by the examples).
pub fn statement_to_sql(stmt: &Statement, dialect: ivm_sql::Dialect) -> String {
    print_statement(stmt, dialect)
}
