//! Compiler switches.
//!
//! The paper: "For now, we only offer a small number of alternatives, and
//! choosing one is controlled manually using compiler switches". These are
//! those switches.

pub use ivm_sql::Dialect;

/// How Step 2 (folding ΔV into V) is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpsertStrategy {
    /// `INSERT OR REPLACE … LEFT JOIN` (the paper's Listing 2 shape).
    /// Requires an index on the view table's key.
    #[default]
    LeftJoinUpsert,
    /// Fold the current view into the delta space and re-aggregate
    /// ("replacing the materialized table with a UNION and regrouping").
    /// No index required.
    UnionRegroup,
    /// Merge via a FULL OUTER JOIN into a staging table, then swap.
    FullOuterJoin,
    /// Cost-based choice at refresh time (the paper's stated direction:
    /// "cost-based optimization should then make these choices"): small
    /// views re-aggregate (`UnionRegroup`), large views take the indexed
    /// `LeftJoinUpsert`. The crossover is [`IvmFlags::adaptive_threshold`].
    Adaptive,
}

impl UpsertStrategy {
    /// Human-readable name (stored in metadata tables).
    pub fn name(&self) -> &'static str {
        match self {
            UpsertStrategy::LeftJoinUpsert => "left_join_upsert",
            UpsertStrategy::UnionRegroup => "union_regroup",
            UpsertStrategy::FullOuterJoin => "full_outer_join",
            UpsertStrategy::Adaptive => "adaptive",
        }
    }

    /// Parse a strategy name.
    pub fn parse(s: &str) -> Option<UpsertStrategy> {
        match s {
            "left_join_upsert" => Some(UpsertStrategy::LeftJoinUpsert),
            "union_regroup" => Some(UpsertStrategy::UnionRegroup),
            "full_outer_join" => Some(UpsertStrategy::FullOuterJoin),
            "adaptive" => Some(UpsertStrategy::Adaptive),
            _ => None,
        }
    }

    /// Whether the strategy relies on a unique index over the view key.
    /// Adaptive may take the upsert path, so it needs the index too.
    pub fn needs_index(&self) -> bool {
        matches!(
            self,
            UpsertStrategy::LeftJoinUpsert | UpsertStrategy::Adaptive
        )
    }
}

/// When maintenance scripts run (§3: "run eagerly, i.e. every time a change
/// is registered on the base table, or lazily, i.e. refreshing the
/// materialized view when it is queried").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Propagate on every base-table change.
    Eager,
    /// Propagate when the view is queried (the demo's default).
    #[default]
    Lazy,
    /// Propagate once the delta backlog reaches `n` statements — the
    /// batching trade-off of §1 (amortization vs recency).
    Batch(usize),
}

/// When the index over the materialized view key is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexCreation {
    /// `PRIMARY KEY` inline in the `CREATE TABLE`.
    Inline,
    /// `CREATE UNIQUE INDEX` after the initial population — the paper's
    /// preferred path ("it is more efficient to build small indexes for
    /// each chunk and merge them" after populating V).
    #[default]
    AfterPopulate,
    /// No index (valid only with [`UpsertStrategy::UnionRegroup`]).
    None,
}

/// All compiler switches.
#[derive(Debug, Clone)]
pub struct IvmFlags {
    /// Output SQL dialect (footnote 5's Coral-style flag).
    pub dialect: Dialect,
    /// Step-2 emission strategy.
    pub upsert_strategy: UpsertStrategy,
    /// When propagation scripts run.
    pub propagation: PropagationMode,
    /// When the view-key index is created.
    pub index_creation: IndexCreation,
    /// Emit `--` comments into generated scripts (for the demo shell).
    pub comments: bool,
    /// View-size crossover for [`UpsertStrategy::Adaptive`]: views with at
    /// most this many live rows refresh via regroup, larger ones via the
    /// indexed upsert. The default sits near the E4 crossover.
    pub adaptive_threshold: usize,
}

impl Default for IvmFlags {
    fn default() -> IvmFlags {
        IvmFlags {
            dialect: Dialect::default(),
            upsert_strategy: UpsertStrategy::default(),
            propagation: PropagationMode::default(),
            index_creation: IndexCreation::default(),
            comments: false,
            adaptive_threshold: 512,
        }
    }
}

impl IvmFlags {
    /// Paper defaults: DuckDB dialect, Listing-2 upsert, lazy refresh,
    /// ART built after population.
    pub fn paper_defaults() -> IvmFlags {
        IvmFlags {
            comments: true,
            ..Default::default()
        }
    }

    /// Target PostgreSQL output.
    pub fn for_postgres() -> IvmFlags {
        IvmFlags {
            dialect: Dialect::Postgres,
            ..IvmFlags::paper_defaults()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_round_trip() {
        for s in [
            UpsertStrategy::LeftJoinUpsert,
            UpsertStrategy::UnionRegroup,
            UpsertStrategy::FullOuterJoin,
        ] {
            assert_eq!(UpsertStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(UpsertStrategy::parse("bogus"), None);
    }

    #[test]
    fn defaults_match_paper() {
        let f = IvmFlags::paper_defaults();
        assert_eq!(f.dialect, Dialect::DuckDb);
        assert_eq!(f.upsert_strategy, UpsertStrategy::LeftJoinUpsert);
        assert_eq!(f.propagation, PropagationMode::Lazy);
        assert!(f.upsert_strategy.needs_index());
        assert!(!UpsertStrategy::UnionRegroup.needs_index());
    }
}
