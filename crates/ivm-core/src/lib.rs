//! # ivm-core — the OpenIVM SQL-to-SQL compiler
//!
//! Reproduction of the core contribution of *"OpenIVM: a SQL-to-SQL
//! Compiler for Incremental Computations"* (SIGMOD-Companion 2024):
//! a compiler that turns `CREATE MATERIALIZED VIEW` definitions into
//!
//! 1. **DDL** for delta tables (with the boolean
//!    `_duckdb_ivm_multiplicity` column), the materialized table, index
//!    structures, and metadata tables;
//! 2. **propagation SQL** implementing the four maintenance steps of the
//!    paper's §2, following DBSP's incremental operator rewrites; and
//! 3. an **extension session** ([`IvmSession`]) that wires the compiler
//!    into the embedded engine: a fall-back handler for
//!    `CREATE MATERIALIZED VIEW`, DML interception into delta tables, and
//!    eager / lazy / batched refresh.
//!
//! ## Quick example
//!
//! ```
//! use ivm_core::{IvmFlags, IvmSession};
//!
//! let mut ivm = IvmSession::new(IvmFlags::paper_defaults());
//! ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)").unwrap();
//! ivm.execute(
//!     "CREATE MATERIALIZED VIEW query_groups AS \
//!      SELECT group_index, SUM(group_value) AS total_value \
//!      FROM groups GROUP BY group_index",
//! ).unwrap();
//! ivm.execute("INSERT INTO groups VALUES ('apple', 5), ('banana', 2)").unwrap();
//! let result = ivm.query_view("query_groups").unwrap();
//! assert_eq!(result.rows.len(), 2);
//! assert!(ivm.check_consistency("query_groups").unwrap());
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod compiler;
pub mod ddl;
mod duckast;
mod error;
pub mod extension;
mod flags;
pub mod metadata;
pub mod names;
pub mod propagation;
pub mod rewrite;
mod unbind;

pub use analyze::{analyze_view, ViewAnalysis, ViewClass};
pub use compiler::{IvmArtifacts, IvmCompiler};
pub use duckast::{DuckAst, SelectFrame};
pub use error::IvmError;
pub use extension::{IvmSession, RegisteredView, SessionStats};
pub use flags::{Dialect, IndexCreation, IvmFlags, PropagationMode, UpsertStrategy};
pub use propagation::{PropagationScript, PropagationStep};
