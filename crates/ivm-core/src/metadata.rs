//! Metadata tables.
//!
//! §2: "Internally, we store materialized views as tables and save their
//! additional properties — query plan, SQL string, query type — in
//! metadata tables", and the propagation scripts are stored for "future
//! inspection and usage".

use crate::analyze::ViewAnalysis;
use crate::flags::IvmFlags;
use crate::names::{META_SCRIPTS_TABLE, META_VIEWS_TABLE};
use crate::propagation::PropagationScript;

fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// DDL for the two metadata tables (idempotent).
pub fn metadata_ddl() -> Vec<String> {
    vec![
        format!(
            "CREATE TABLE IF NOT EXISTS {META_VIEWS_TABLE} (\
             view_name VARCHAR PRIMARY KEY, query_type VARCHAR, view_sql VARCHAR, \
             query_plan VARCHAR, strategy VARCHAR, dialect VARCHAR)"
        ),
        format!(
            "CREATE TABLE IF NOT EXISTS {META_SCRIPTS_TABLE} (\
             view_name VARCHAR, step INTEGER, description VARCHAR, sql VARCHAR)"
        ),
    ]
}

/// Metadata DDL plus the INSERTs describing one compiled view.
pub fn metadata_statements(
    analysis: &ViewAnalysis,
    view_sql: &str,
    propagation: &PropagationScript,
    flags: &IvmFlags,
) -> Vec<String> {
    let mut out = metadata_ddl();
    out.push(format!(
        "INSERT INTO {META_VIEWS_TABLE} VALUES ({}, {}, {}, {}, {}, {})",
        quote(&analysis.view_name),
        quote(analysis.class.name()),
        quote(view_sql),
        quote(&analysis.plan.explain()),
        quote(flags.upsert_strategy.name()),
        quote(flags.dialect.name()),
    ));
    for (i, step) in propagation.steps.iter().enumerate() {
        out.push(format!(
            "INSERT INTO {META_SCRIPTS_TABLE} VALUES ({}, {}, {}, {})",
            quote(&analysis.view_name),
            i,
            quote(&step.description),
            quote(&step.sql),
        ));
    }
    out
}

/// Statements removing a view's metadata.
pub fn metadata_remove(view_name: &str) -> Vec<String> {
    vec![
        format!(
            "DELETE FROM {META_VIEWS_TABLE} WHERE view_name = {}",
            quote(view_name)
        ),
        format!(
            "DELETE FROM {META_SCRIPTS_TABLE} WHERE view_name = {}",
            quote(view_name)
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote("it's"), "'it''s'");
    }

    #[test]
    fn ddl_is_idempotent_sql() {
        for stmt in metadata_ddl() {
            ivm_sql::parse_statement(&stmt).unwrap();
            assert!(stmt.contains("IF NOT EXISTS"));
        }
    }

    #[test]
    fn remove_statements_parse() {
        for stmt in metadata_remove("v") {
            ivm_sql::parse_statement(&stmt).unwrap();
        }
    }
}
