//! Naming conventions for generated objects, matching the paper's demo
//! (`delta_groups`, `delta_query_groups`, `_duckdb_ivm_multiplicity`, …).

/// The boolean multiplicity column: `true` = insertion, `false` = deletion.
pub const MULTIPLICITY_COL: &str = "_duckdb_ivm_multiplicity";

/// Hidden Z-set weight column on materialized view tables. Groups/rows
/// whose weight reaches zero are removed in propagation Step 3.
pub const COUNT_COL: &str = "_ivm_count";

/// Metadata table holding one row per materialized view.
pub const META_VIEWS_TABLE: &str = "_openivm_views";

/// Metadata table holding the stored propagation scripts.
pub const META_SCRIPTS_TABLE: &str = "_openivm_scripts";

/// Delta table name for a base table or view: `delta_<name>`.
pub fn delta(name: &str) -> String {
    format!("delta_{name}")
}

/// Staging table used by the FULL OUTER JOIN strategy.
pub fn stage(view: &str) -> String {
    format!("_ivm_stage_{view}")
}

/// Name of the unique index built over the view key.
pub fn view_index(view: &str) -> String {
    format!("_ivm_idx_{view}")
}

/// Hidden per-aggregate helper columns (AVG keeps a sum and a count).
pub fn hidden_sum(i: usize) -> String {
    format!("_ivm_sum_{i}")
}

/// Hidden non-null count column for AVG aggregate `i`.
pub fn hidden_cnt(i: usize) -> String {
    format!("_ivm_cnt_{i}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        assert_eq!(delta("groups"), "delta_groups");
        assert_eq!(delta("query_groups"), "delta_query_groups");
        assert_eq!(MULTIPLICITY_COL, "_duckdb_ivm_multiplicity");
    }
}
