//! Propagation-script generation: the four post-processing steps of §2.
//!
//! 1. Insertion in ΔV of the tuples resulting from querying ΔT.
//! 2. Insertion or update in V of the newly-inserted tuples in ΔV.
//! 3. Deletion of the invalid rows in V (zero Z-set weight).
//! 4. Deletion from ΔT and ΔV after applying the changes.
//!
//! Step 2's emission "can drastically change depending on the input query"
//! and the chosen [`UpsertStrategy`]: a `LEFT JOIN` upsert (Listing 2), a
//! UNION-and-regroup, or a FULL OUTER JOIN through a staging table.

use ivm_engine::expr::AggFunc;
use ivm_sql::ast::{
    Assignment, ConflictAction, Cte, Delete, Expr, Insert, InsertSource, OnConflict, Query, Select,
    SelectItem, SetExpr, Statement, TableRef,
};
use ivm_sql::{print_statement, Dialect, Ident};

use crate::analyze::{ViewAnalysis, ViewClass};
use crate::error::IvmError;
use crate::flags::{IvmFlags, UpsertStrategy};
use crate::names::{self, COUNT_COL, MULTIPLICITY_COL};
use crate::rewrite::{build_delta_query, build_full_query, delta_view_layout, view_table_layout};

/// One statement of the maintenance script.
#[derive(Debug, Clone)]
pub struct PropagationStep {
    /// Which of the paper's steps this belongs to (1–4).
    pub step: u8,
    /// Human description (emitted as a `--` comment when enabled).
    pub description: String,
    /// The SQL statement (no trailing `;`).
    pub sql: String,
}

/// The full maintenance script for one view.
#[derive(Debug, Clone)]
pub struct PropagationScript {
    /// Ordered statements.
    pub steps: Vec<PropagationStep>,
}

impl PropagationScript {
    /// Just the SQL statements, in order.
    pub fn statements(&self) -> Vec<String> {
        self.steps.iter().map(|s| s.sql.clone()).collect()
    }

    /// The script as one `;`-separated text, optionally commented — this is
    /// what gets stored for "future inspection and usage without having to
    /// start DuckDB".
    pub fn to_sql(&self, comments: bool) -> String {
        let mut out = String::new();
        for s in &self.steps {
            if comments {
                out.push_str(&format!("-- Step {}: {}\n", s.step, s.description));
            }
            out.push_str(&s.sql);
            out.push_str(";\n");
        }
        out
    }
}

fn fcall(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Function {
        name: Ident::new(name),
        args,
        distinct: false,
        star: false,
    }
}

fn coalesce0(e: Expr) -> Expr {
    fcall("coalesce", vec![e, Expr::int(0)])
}

/// `CASE WHEN <mult> = FALSE THEN -<value> ELSE <value> END` — the paper's
/// sign adjustment (Listing 2, line 8).
fn signed(mult: Expr, value: Expr) -> Expr {
    Expr::Case {
        operand: None,
        branches: vec![(
            mult.eq(Expr::boolean(false)),
            Expr::Unary {
                op: ivm_sql::ast::UnaryOp::Minus,
                expr: Box::new(value.clone()),
            },
        )],
        else_result: Some(Box::new(value)),
    }
}

/// `SUM(CASE WHEN m = FALSE THEN -c ELSE c END) AS name`.
fn signed_sum(mult: Expr, value: Expr) -> Expr {
    fcall("sum", vec![signed(mult, value)])
}

/// `MIN/MAX(CASE WHEN m THEN c END)` — insertion-path extremum candidate.
fn inserted_extremum(func: &str, mult: Expr, value: Expr) -> Expr {
    fcall(
        func,
        vec![Expr::Case {
            operand: None,
            branches: vec![(mult, value)],
            else_result: None,
        }],
    )
}

fn conjoin_eq(left_qual: &str, right_qual: &str, cols: &[String]) -> Expr {
    cols.iter()
        .map(|c| Expr::qcol(left_qual, c.clone()).eq(Expr::qcol(right_qual, c.clone())))
        .reduce(|l, r| l.and(r))
        .expect("at least one key column")
}

fn select_query(select: Select, ctes: Vec<Cte>) -> Query {
    Query {
        ctes,
        body: SetExpr::Select(Box::new(select)),
        order_by: vec![],
        limit: None,
        offset: None,
    }
}

fn insert_stmt(table: &str, source: Query) -> Statement {
    Statement::Insert(Insert {
        table: Ident::new(table),
        columns: vec![],
        source: InsertSource::Query(Box::new(source)),
        or_replace: false,
        on_conflict: None,
    })
}

/// Dialect-aware upsert: `INSERT OR REPLACE` for DuckDB, `ON CONFLICT …
/// DO UPDATE` for PostgreSQL (the Coral-style dialect fork).
fn upsert_stmt(
    table: &str,
    source: Query,
    key_cols: &[String],
    all_cols: &[String],
    dialect: Dialect,
) -> Statement {
    if dialect.supports_insert_or_replace() {
        Statement::Insert(Insert {
            table: Ident::new(table),
            columns: vec![],
            source: InsertSource::Query(Box::new(source)),
            or_replace: true,
            on_conflict: None,
        })
    } else {
        let assignments = all_cols
            .iter()
            .filter(|c| !key_cols.contains(c))
            .map(|c| Assignment {
                column: Ident::new(c.clone()),
                value: Expr::qcol("excluded", c.clone()),
            })
            .collect();
        Statement::Insert(Insert {
            table: Ident::new(table),
            columns: vec![],
            source: InsertSource::Query(Box::new(source)),
            or_replace: false,
            on_conflict: Some(OnConflict {
                target: key_cols.iter().map(|c| Ident::new(c.clone())).collect(),
                action: ConflictAction::DoUpdate(assignments),
            }),
        })
    }
}

fn delete_stmt(table: &str, selection: Option<Expr>) -> Statement {
    Statement::Delete(Delete {
        table: Ident::new(table),
        selection,
    })
}

/// Generate the full propagation script for a view, using the strategy in
/// the flags. [`UpsertStrategy::Adaptive`] emits its LEFT JOIN variant —
/// the extension session stores the regroup variant alongside (see
/// [`generate_propagation_with`]) and picks per refresh.
pub fn generate_propagation(
    analysis: &ViewAnalysis,
    flags: &IvmFlags,
) -> Result<PropagationScript, IvmError> {
    let strategy = match flags.upsert_strategy {
        UpsertStrategy::Adaptive => UpsertStrategy::LeftJoinUpsert,
        other => other,
    };
    generate_propagation_with(analysis, flags, strategy)
}

/// Generate the propagation script for an explicit Step-2 strategy.
pub fn generate_propagation_with(
    analysis: &ViewAnalysis,
    flags: &IvmFlags,
    strategy: UpsertStrategy,
) -> Result<PropagationScript, IvmError> {
    // Adaptive resolves to its upsert variant when asked for directly.
    let strategy = match strategy {
        UpsertStrategy::Adaptive => UpsertStrategy::LeftJoinUpsert,
        other => other,
    };
    let dialect = flags.dialect;
    let view = analysis.view_name.clone();
    let delta_view = names::delta(&view);
    let mut steps = Vec::new();

    // ---- Step 1: ΔT → ΔV through the DBSP-rewritten query.
    let delta_query = build_delta_query(analysis)?;
    steps.push(PropagationStep {
        step: 1,
        description: format!("propagate base-table deltas into {delta_view}"),
        sql: print_statement(&insert_stmt(&delta_view, delta_query), dialect),
    });

    // ---- Step 2: fold ΔV into V.
    match strategy {
        UpsertStrategy::LeftJoinUpsert => {
            let (source, key_cols, all_cols) = left_join_merge_query(analysis, false)?;
            steps.push(PropagationStep {
                step: 2,
                description: format!("upsert merged groups into {view} (LEFT JOIN strategy)"),
                sql: print_statement(
                    &upsert_stmt(&view, source, &key_cols, &all_cols, dialect),
                    dialect,
                ),
            });
        }
        UpsertStrategy::UnionRegroup => {
            let stmts = union_regroup_statements(analysis)?;
            for (desc, stmt) in stmts {
                steps.push(PropagationStep {
                    step: 2,
                    description: desc,
                    sql: print_statement(&stmt, dialect),
                });
            }
        }
        UpsertStrategy::FullOuterJoin => {
            let stage = names::stage(&view);
            steps.push(PropagationStep {
                step: 2,
                description: format!("clear staging table {stage}"),
                sql: print_statement(&delete_stmt(&stage, None), dialect),
            });
            let (source, _, _) = left_join_merge_query(analysis, true)?;
            steps.push(PropagationStep {
                step: 2,
                description: "merge V and ΔV through a FULL OUTER JOIN".to_string(),
                sql: print_statement(&insert_stmt(&stage, source), dialect),
            });
            steps.push(PropagationStep {
                step: 2,
                description: format!("swap {view} contents from the staging table"),
                sql: print_statement(&delete_stmt(&view, None), dialect),
            });
            let cols: Vec<String> = view_table_layout(analysis)
                .into_iter()
                .map(|(n, _)| n)
                .collect();
            let select = Select::new(
                cols.iter()
                    .map(|c| SelectItem::expr(Expr::col(c.clone())))
                    .collect(),
            );
            let mut select = select;
            select.from = vec![TableRef::table(stage.clone())];
            select.selection = Some(Expr::Binary {
                left: Box::new(Expr::col(COUNT_COL)),
                op: ivm_sql::ast::BinaryOp::NotEq,
                right: Box::new(Expr::int(0)),
            });
            steps.push(PropagationStep {
                step: 2,
                description: "reload live rows".to_string(),
                sql: print_statement(&insert_stmt(&view, select_query(select, vec![])), dialect),
            });
        }
        UpsertStrategy::Adaptive => unreachable!("resolved to a concrete strategy above"),
    }

    // ---- Step 2b: MIN/MAX dirty-group recomputation from the base table.
    if analysis.has_min_max() {
        let key = analysis.key_columns()[0].clone();
        let dirty = dirty_groups_query(&delta_view, &key);
        steps.push(PropagationStep {
            step: 2,
            description: "drop groups touched by deletions (MIN/MAX recompute)".to_string(),
            sql: print_statement(
                &delete_stmt(
                    &view,
                    Some(Expr::InSubquery {
                        expr: Box::new(Expr::col(key.clone())),
                        query: Box::new(dirty.clone()),
                        negated: false,
                    }),
                ),
                dialect,
            ),
        });
        let recompute = build_full_query(analysis, Some(dirty))?;
        steps.push(PropagationStep {
            step: 2,
            description: "recompute dirty groups from the base table".to_string(),
            sql: print_statement(&insert_stmt(&view, recompute), dialect),
        });
    }

    // ---- Step 3: delete invalid rows (zero weight).
    steps.push(PropagationStep {
        step: 3,
        description: format!("delete rows of {view} whose Z-set weight reached zero"),
        sql: print_statement(
            &delete_stmt(&view, Some(Expr::col(COUNT_COL).eq(Expr::int(0)))),
            dialect,
        ),
    });

    // ---- Step 4: drain the consumed deltas.
    steps.push(PropagationStep {
        step: 4,
        description: format!("drain {delta_view}"),
        sql: print_statement(&delete_stmt(&delta_view, None), dialect),
    });
    for t in &analysis.base_tables {
        let dt = names::delta(t);
        steps.push(PropagationStep {
            step: 4,
            description: format!("drain {dt}"),
            sql: print_statement(&delete_stmt(&dt, None), dialect),
        });
    }

    Ok(PropagationScript { steps })
}

/// `SELECT DISTINCT <key> FROM ΔV WHERE multiplicity = FALSE`.
fn dirty_groups_query(delta_view: &str, key: &str) -> Query {
    let mut select = Select::new(vec![SelectItem::expr(Expr::col(key))]);
    select.distinct = true;
    select.from = vec![TableRef::table(delta_view)];
    select.selection = Some(Expr::col(MULTIPLICITY_COL).eq(Expr::boolean(false)));
    select_query(select, vec![])
}

/// Build the Step-2 merge query shared by the LEFT JOIN and FULL OUTER JOIN
/// strategies. Returns `(query, key_columns, all_columns)`.
///
/// The shape follows Listing 2: a CTE (`ivm_cte`) collapses ΔV per key with
/// sign-adjusted sums, then joins against the view table; each output
/// column merges the old and new partial states.
fn left_join_merge_query(
    analysis: &ViewAnalysis,
    full_outer: bool,
) -> Result<(Query, Vec<String>, Vec<String>), IvmError> {
    let view = analysis.view_name.clone();
    let delta_view = names::delta(&view);
    let key_cols = analysis.key_columns();
    let layout = view_table_layout(analysis);
    let all_cols: Vec<String> = layout.iter().map(|(n, _)| n.clone()).collect();
    let is_aggregate = matches!(
        analysis.class,
        ViewClass::GroupAggregate | ViewClass::JoinAggregate
    );

    // --- CTE body over ΔV.
    let mult = || Expr::col(MULTIPLICITY_COL);
    let mut cte_proj: Vec<SelectItem> = Vec::new();
    for k in &key_cols {
        cte_proj.push(SelectItem::expr(Expr::col(k.clone())));
    }
    if is_aggregate {
        for (i, agg) in analysis.aggs.iter().enumerate() {
            match agg.func {
                AggFunc::Sum | AggFunc::Count => cte_proj.push(SelectItem::aliased(
                    signed_sum(mult(), Expr::col(agg.name.clone())),
                    agg.name.clone(),
                )),
                AggFunc::Avg => {
                    cte_proj.push(SelectItem::aliased(
                        signed_sum(mult(), Expr::col(names::hidden_sum(i))),
                        names::hidden_sum(i),
                    ));
                    cte_proj.push(SelectItem::aliased(
                        signed_sum(mult(), Expr::col(names::hidden_cnt(i))),
                        names::hidden_cnt(i),
                    ));
                }
                AggFunc::Min => cte_proj.push(SelectItem::aliased(
                    inserted_extremum("min", mult(), Expr::col(agg.name.clone())),
                    agg.name.clone(),
                )),
                AggFunc::Max => cte_proj.push(SelectItem::aliased(
                    inserted_extremum("max", mult(), Expr::col(agg.name.clone())),
                    agg.name.clone(),
                )),
            }
        }
        cte_proj.push(SelectItem::aliased(
            signed_sum(mult(), Expr::col(COUNT_COL)),
            COUNT_COL,
        ));
    } else {
        // Projection views: the weight is the signed row count.
        cte_proj.push(SelectItem::aliased(
            fcall(
                "sum",
                vec![Expr::Case {
                    operand: None,
                    branches: vec![(mult().eq(Expr::boolean(false)), Expr::int(-1))],
                    else_result: Some(Box::new(Expr::int(1))),
                }],
            ),
            COUNT_COL,
        ));
    }
    let mut cte_select = Select::new(cte_proj);
    cte_select.from = vec![TableRef::table(delta_view.clone())];
    cte_select.group_by = key_cols.iter().map(|k| Expr::col(k.clone())).collect();
    let cte = Cte {
        name: Ident::new("ivm_cte"),
        query: Box::new(select_query(cte_select, vec![])),
    };

    // --- Outer merge select. Like Listing 2, the CTE is aliased with the
    // delta view's name; the view table keeps its own name.
    let d = delta_view.clone();
    let v = view.clone();
    let dcol = |c: &str| Expr::qcol(d.clone(), c.to_string());
    let vcol = |c: &str| Expr::qcol(v.clone(), c.to_string());

    let mut out_proj: Vec<SelectItem> = Vec::new();
    for (name, _ty) in &layout {
        if key_cols.contains(name) {
            let e = if full_outer {
                fcall("coalesce", vec![dcol(name), vcol(name)])
            } else {
                dcol(name)
            };
            out_proj.push(SelectItem::aliased(e, name.clone()));
            continue;
        }
        if name == COUNT_COL {
            out_proj.push(SelectItem::aliased(
                Expr::Binary {
                    left: Box::new(coalesce0(vcol(name))),
                    op: ivm_sql::ast::BinaryOp::Plus,
                    right: Box::new(coalesce0(dcol(name))),
                },
                name.clone(),
            ));
            continue;
        }
        // Aggregate / hidden columns.
        let agg = analysis.aggs.iter().enumerate().find(|(i, a)| {
            a.name == *name || names::hidden_sum(*i) == *name || names::hidden_cnt(*i) == *name
        });
        let expr = match agg {
            Some((i, info)) => match info.func {
                AggFunc::Sum | AggFunc::Count => Expr::Binary {
                    left: Box::new(coalesce0(vcol(name))),
                    op: ivm_sql::ast::BinaryOp::Plus,
                    right: Box::new(coalesce0(dcol(name))),
                },
                AggFunc::Avg if info.name == *name => {
                    // Visible AVG column: recomputed from merged hidden
                    // sum/count.
                    let sum_n = names::hidden_sum(i);
                    let cnt_n = names::hidden_cnt(i);
                    let merged_sum = Expr::Binary {
                        left: Box::new(coalesce0(vcol(&sum_n))),
                        op: ivm_sql::ast::BinaryOp::Plus,
                        right: Box::new(coalesce0(dcol(&sum_n))),
                    };
                    let merged_cnt = Expr::Binary {
                        left: Box::new(coalesce0(vcol(&cnt_n))),
                        op: ivm_sql::ast::BinaryOp::Plus,
                        right: Box::new(coalesce0(dcol(&cnt_n))),
                    };
                    Expr::Case {
                        operand: None,
                        branches: vec![(
                            merged_cnt.clone().eq(Expr::int(0)),
                            Expr::Literal(ivm_sql::ast::Literal::Null),
                        )],
                        else_result: Some(Box::new(Expr::Binary {
                            left: Box::new(merged_sum),
                            op: ivm_sql::ast::BinaryOp::Divide,
                            right: Box::new(merged_cnt),
                        })),
                    }
                }
                AggFunc::Avg => Expr::Binary {
                    // Hidden sum/count columns merge additively.
                    left: Box::new(coalesce0(vcol(name))),
                    op: ivm_sql::ast::BinaryOp::Plus,
                    right: Box::new(coalesce0(dcol(name))),
                },
                AggFunc::Min => fcall("least", vec![vcol(name), dcol(name)]),
                AggFunc::Max => fcall("greatest", vec![vcol(name), dcol(name)]),
            },
            None => {
                // Projection-view visible column.
                if full_outer {
                    fcall("coalesce", vec![dcol(name), vcol(name)])
                } else {
                    dcol(name)
                }
            }
        };
        out_proj.push(SelectItem::aliased(expr, name.clone()));
    }

    let join_kind = if full_outer {
        ivm_sql::ast::JoinKind::Full
    } else {
        ivm_sql::ast::JoinKind::Left
    };
    let mut outer = Select::new(out_proj);
    outer.from = vec![TableRef::Join {
        // `FROM ivm_cte AS delta_<view> LEFT JOIN <view> ON …` — Listing 2
        // re-uses the delta name as the CTE alias.
        left: Box::new(TableRef::aliased("ivm_cte", d.clone())),
        right: Box::new(TableRef::table(v.clone())),
        kind: join_kind,
        constraint: Some(conjoin_eq(&v, &d, &key_cols)),
    }];

    Ok((select_query(outer, vec![cte]), key_cols, all_cols))
}

/// Step-2 statements for the UNION-and-regroup strategy (aggregate views
/// only): fold the live view into ΔV with positive multiplicity, truncate,
/// and re-aggregate everything.
fn union_regroup_statements(analysis: &ViewAnalysis) -> Result<Vec<(String, Statement)>, IvmError> {
    let is_aggregate = matches!(
        analysis.class,
        ViewClass::GroupAggregate | ViewClass::JoinAggregate
    );
    if !is_aggregate {
        return Err(IvmError::unsupported(
            "the union_regroup strategy applies to aggregate views",
        ));
    }
    let view = analysis.view_name.clone();
    let delta_view = names::delta(&view);
    let key_cols = analysis.key_columns();

    // Fold V into ΔV (identity mapping by name; multiplicity TRUE).
    let delta_layout = delta_view_layout(analysis);
    let fold_proj: Vec<SelectItem> = delta_layout
        .iter()
        .map(|(name, _)| {
            if name == MULTIPLICITY_COL {
                SelectItem::aliased(Expr::boolean(true), MULTIPLICITY_COL)
            } else {
                SelectItem::expr(Expr::col(name.clone()))
            }
        })
        .collect();
    let mut fold = Select::new(fold_proj);
    fold.from = vec![TableRef::table(view.clone())];
    let fold_stmt = insert_stmt(&delta_view, select_query(fold, vec![]));

    // Re-aggregate ΔV into V.
    let mult = || Expr::col(MULTIPLICITY_COL);
    let mut proj: Vec<SelectItem> = Vec::new();
    for (name, _) in view_table_layout(analysis) {
        if key_cols.contains(&name) {
            proj.push(SelectItem::expr(Expr::col(name.clone())));
            continue;
        }
        if name == COUNT_COL {
            proj.push(SelectItem::aliased(
                signed_sum(mult(), Expr::col(COUNT_COL)),
                COUNT_COL,
            ));
            continue;
        }
        let agg = analysis.aggs.iter().enumerate().find(|(i, a)| {
            a.name == name || names::hidden_sum(*i) == name || names::hidden_cnt(*i) == name
        });
        let expr = match agg {
            Some((i, info)) => match info.func {
                AggFunc::Sum | AggFunc::Count => signed_sum(mult(), Expr::col(name.clone())),
                AggFunc::Avg if info.name == name => {
                    let s = signed_sum(mult(), Expr::col(names::hidden_sum(i)));
                    let c = signed_sum(mult(), Expr::col(names::hidden_cnt(i)));
                    Expr::Case {
                        operand: None,
                        branches: vec![(
                            c.clone().eq(Expr::int(0)),
                            Expr::Literal(ivm_sql::ast::Literal::Null),
                        )],
                        else_result: Some(Box::new(Expr::Binary {
                            left: Box::new(s),
                            op: ivm_sql::ast::BinaryOp::Divide,
                            right: Box::new(c),
                        })),
                    }
                }
                AggFunc::Avg => signed_sum(mult(), Expr::col(name.clone())),
                AggFunc::Min => inserted_extremum("min", mult(), Expr::col(name.clone())),
                AggFunc::Max => inserted_extremum("max", mult(), Expr::col(name.clone())),
            },
            None => Expr::col(name.clone()),
        };
        proj.push(SelectItem::aliased(expr, name));
    }
    let mut regroup = Select::new(proj);
    regroup.from = vec![TableRef::table(delta_view.clone())];
    regroup.group_by = key_cols.iter().map(|k| Expr::col(k.clone())).collect();
    let regroup_stmt = insert_stmt(&view, select_query(regroup, vec![]));

    Ok(vec![
        (
            format!("fold current {view} into {delta_view} (UNION regroup)"),
            fold_stmt,
        ),
        (format!("truncate {view}"), delete_stmt(&view, None)),
        (
            format!("re-aggregate {delta_view} into {view}"),
            regroup_stmt,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_view;
    use ivm_engine::Database;
    use ivm_sql::ast::Statement as Stmt;

    fn analysis(view_sql: &str) -> ViewAnalysis {
        let mut db = Database::new();
        db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        let q = match ivm_sql::parse_statement(view_sql).unwrap() {
            Stmt::Query(q) => q,
            _ => unreachable!(),
        };
        analyze_view("query_groups", &q, db.catalog()).unwrap()
    }

    const LISTING_1: &str = "SELECT group_index, SUM(group_value) AS total_value \
                             FROM groups GROUP BY group_index";

    #[test]
    fn listing_2_shape_left_join() {
        let script =
            generate_propagation(&analysis(LISTING_1), &IvmFlags::paper_defaults()).unwrap();
        let sql = script.to_sql(false);
        // Listing 2's landmarks, in order.
        let landmarks = [
            "INSERT INTO delta_query_groups",
            "GROUP BY delta_groups.group_index, delta_groups._duckdb_ivm_multiplicity",
            "INSERT OR REPLACE INTO query_groups",
            "WITH ivm_cte AS",
            "CASE WHEN _duckdb_ivm_multiplicity = FALSE THEN -total_value ELSE total_value END",
            "LEFT JOIN query_groups ON query_groups.group_index = delta_query_groups.group_index",
            "DELETE FROM query_groups WHERE _ivm_count = 0",
            "DELETE FROM delta_query_groups",
            "DELETE FROM delta_groups",
        ];
        let mut pos = 0;
        for l in landmarks {
            let at = sql[pos..]
                .find(l)
                .unwrap_or_else(|| panic!("missing {l:?} after byte {pos} in:\n{sql}"));
            pos += at;
        }
    }

    #[test]
    fn postgres_dialect_uses_on_conflict() {
        let script = generate_propagation(&analysis(LISTING_1), &IvmFlags::for_postgres()).unwrap();
        let sql = script.to_sql(false);
        assert!(!sql.contains("INSERT OR REPLACE"), "{sql}");
        assert!(
            sql.contains("ON CONFLICT (group_index) DO UPDATE SET total_value = excluded.total_value, _ivm_count = excluded._ivm_count"),
            "{sql}"
        );
    }

    #[test]
    fn union_regroup_has_fold_truncate_regroup() {
        let flags = IvmFlags {
            upsert_strategy: UpsertStrategy::UnionRegroup,
            ..IvmFlags::paper_defaults()
        };
        let script = generate_propagation(&analysis(LISTING_1), &flags).unwrap();
        let sql = script.to_sql(false);
        assert!(
            sql.contains(
                "INSERT INTO delta_query_groups SELECT group_index, total_value, _ivm_count, TRUE"
            ),
            "{sql}"
        );
        assert!(sql.contains("DELETE FROM query_groups;"), "{sql}");
        assert!(
            sql.contains("INSERT INTO query_groups SELECT group_index, sum(CASE"),
            "{sql}"
        );
    }

    #[test]
    fn full_outer_join_uses_stage() {
        let flags = IvmFlags {
            upsert_strategy: UpsertStrategy::FullOuterJoin,
            ..IvmFlags::paper_defaults()
        };
        let script = generate_propagation(&analysis(LISTING_1), &flags).unwrap();
        let sql = script.to_sql(false);
        assert!(sql.contains("DELETE FROM _ivm_stage_query_groups"), "{sql}");
        assert!(sql.contains("FULL JOIN query_groups"), "{sql}");
        assert!(
            sql.contains("coalesce(delta_query_groups.group_index, query_groups.group_index)"),
            "{sql}"
        );
        assert!(sql.contains("WHERE _ivm_count <> 0"), "{sql}");
    }

    #[test]
    fn min_max_adds_recompute_steps() {
        let a =
            analysis("SELECT group_index, MIN(group_value) AS lo FROM groups GROUP BY group_index");
        let script = generate_propagation(&a, &IvmFlags::paper_defaults()).unwrap();
        let sql = script.to_sql(false);
        assert!(
            sql.contains("DELETE FROM query_groups WHERE group_index IN (SELECT DISTINCT group_index FROM delta_query_groups WHERE _duckdb_ivm_multiplicity = FALSE)"),
            "{sql}"
        );
        assert!(sql.contains("min(groups.group_value) AS lo"), "{sql}");
    }

    #[test]
    fn simple_view_counts_rows() {
        let a = analysis("SELECT group_index FROM groups WHERE group_value > 0");
        let script = generate_propagation(&a, &IvmFlags::paper_defaults()).unwrap();
        let sql = script.to_sql(false);
        assert!(
            sql.contains(
                "sum(CASE WHEN _duckdb_ivm_multiplicity = FALSE THEN -1 ELSE 1 END) AS _ivm_count"
            ),
            "{sql}"
        );
    }

    #[test]
    fn comments_render_step_numbers() {
        let script =
            generate_propagation(&analysis(LISTING_1), &IvmFlags::paper_defaults()).unwrap();
        let sql = script.to_sql(true);
        assert!(sql.contains("-- Step 1:"));
        assert!(sql.contains("-- Step 4:"));
    }

    #[test]
    fn statements_parse_back() {
        for flags in [
            IvmFlags::paper_defaults(),
            IvmFlags::for_postgres(),
            IvmFlags {
                upsert_strategy: UpsertStrategy::UnionRegroup,
                ..IvmFlags::paper_defaults()
            },
            IvmFlags {
                upsert_strategy: UpsertStrategy::FullOuterJoin,
                ..IvmFlags::paper_defaults()
            },
        ] {
            let script = generate_propagation(&analysis(LISTING_1), &flags).unwrap();
            for stmt in script.statements() {
                ivm_sql::parse_statement(&stmt)
                    .unwrap_or_else(|e| panic!("generated SQL does not re-parse: {e}\n{stmt}"));
            }
        }
    }
}
