//! The DBSP-style incremental rewrite.
//!
//! Operates bottom-up on the view's logical plan (§2): leaves are
//! substituted so "the query is executed against the changes rather than
//! the original table" (`T → ΔT`), selections and projections keep their
//! relational form (σ\* = σ, π\* = π) while threading the boolean
//! multiplicity column, aggregates group additionally by multiplicity, and
//! "the incremental form of a join consists of three relational join
//! operators": ΔA⋈B ∪ A⋈ΔB ∪ ΔA⋈ΔB (with post-state base tables the third
//! term carries a negated sign, encoded in the multiplicity expression).

use ivm_engine::expr::{AggExpr, AggFunc, BoundExpr};
use ivm_engine::planner::LogicalPlan;
use ivm_engine::DataType;
use ivm_sql::ast::{BinaryOp, Expr, Query, TableRef};
use ivm_sql::Ident;

use crate::analyze::{OutputSource, ViewAnalysis, ViewClass};
use crate::duckast::{DuckAst, SelectFrame};
use crate::error::IvmError;
use crate::names::{self, COUNT_COL, MULTIPLICITY_COL};
use crate::unbind::unbind;

/// One rewritten relational term: a FROM/WHERE frame whose rows carry a
/// multiplicity expression.
#[derive(Debug, Clone)]
struct TermFrame {
    from: Vec<TableRef>,
    filters: Vec<Expr>,
    /// AST expression for each column of the original operator's schema.
    cols: Vec<Expr>,
    /// Multiplicity of each produced row.
    mult: Expr,
}

/// Rewrite result for a source subplan.
struct Rewritten {
    /// Incremental terms (1 for single-table sources, 3 for one join).
    delta: Vec<TermFrame>,
    /// The non-incremental frame over current base tables (used for
    /// initial population and MIN/MAX group recomputation).
    full: TermFrame,
}

fn rewrite_source(plan: &LogicalPlan) -> Result<Rewritten, IvmError> {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            let delta_name = names::delta(table);
            let delta_cols: Vec<Expr> = schema
                .columns
                .iter()
                .map(|c| Expr::qcol(delta_name.clone(), c.name.clone()))
                .collect();
            let full_cols: Vec<Expr> = schema
                .columns
                .iter()
                .map(|c| Expr::qcol(table.clone(), c.name.clone()))
                .collect();
            Ok(Rewritten {
                delta: vec![TermFrame {
                    from: vec![TableRef::table(delta_name.clone())],
                    filters: vec![],
                    cols: delta_cols,
                    mult: Expr::qcol(delta_name, MULTIPLICITY_COL),
                }],
                full: TermFrame {
                    from: vec![TableRef::table(table.clone())],
                    filters: vec![],
                    cols: full_cols,
                    mult: Expr::boolean(true),
                },
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            // σ* = σ: the same predicate applies to every term.
            let mut inner = rewrite_source(input)?;
            for frame in &mut inner.delta {
                frame.filters.push(unbind(predicate, &frame.cols)?);
            }
            inner
                .full
                .filters
                .push(unbind(predicate, &inner.full.cols)?);
            Ok(inner)
        }
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            let l = rewrite_source(left)?;
            let r = rewrite_source(right)?;
            let on = on
                .as_ref()
                .ok_or_else(|| IvmError::unsupported("joins without ON in view definitions"))?;
            let mut delta = Vec::new();
            // ΔA ⋈ B  (sign of the ΔA row)
            for dl in &l.delta {
                delta.push(join_frames(dl, &r.full, on, dl.mult.clone())?);
            }
            // A ⋈ ΔB  (sign of the ΔB row)
            for dr in &r.delta {
                delta.push(join_frames(&l.full, dr, on, dr.mult.clone())?);
            }
            // ΔA ⋈ ΔB, subtracted: with post-state tables the double-counted
            // term flips sign, so mult = (mA <> mB).
            for dl in &l.delta {
                for dr in &r.delta {
                    let mult = Expr::Binary {
                        left: Box::new(dl.mult.clone()),
                        op: BinaryOp::NotEq,
                        right: Box::new(dr.mult.clone()),
                    };
                    delta.push(join_frames(dl, dr, on, mult)?);
                }
            }
            let full = join_frames(&l.full, &r.full, on, Expr::boolean(true))?;
            Ok(Rewritten { delta, full })
        }
        other => Err(IvmError::unsupported(format!(
            "operator {:?} in view source",
            std::mem::discriminant(other)
        ))),
    }
}

fn join_frames(
    a: &TermFrame,
    b: &TermFrame,
    on: &BoundExpr,
    mult: Expr,
) -> Result<TermFrame, IvmError> {
    let mut cols = a.cols.clone();
    cols.extend(b.cols.iter().cloned());
    let mut filters = a.filters.clone();
    filters.extend(b.filters.iter().cloned());
    filters.push(unbind(on, &cols)?);
    let mut from = a.from.clone();
    from.extend(b.from.iter().cloned());
    Ok(TermFrame {
        from,
        filters,
        cols,
        mult,
    })
}

/// The decomposed top of an analyzed view plan: projection expressions,
/// optional (group keys, aggregates), and the source subplan.
type PeeledPlan<'a> = (
    &'a [BoundExpr],
    Option<(&'a [BoundExpr], &'a [AggExpr])>,
    &'a LogicalPlan,
);

fn peel(analysis: &ViewAnalysis) -> Result<PeeledPlan<'_>, IvmError> {
    let LogicalPlan::Project { input, exprs, .. } = &analysis.plan else {
        return Err(IvmError::unsupported("view plan lacks a projection"));
    };
    match input.as_ref() {
        LogicalPlan::Aggregate {
            input: agg_in,
            group,
            aggs,
            ..
        } => Ok((exprs, Some((group, aggs)), agg_in)),
        other => Ok((exprs, None, other)),
    }
}

/// The delta-table layout of ΔV: `(name, type)` pairs, multiplicity last.
pub fn delta_view_layout(analysis: &ViewAnalysis) -> Vec<(String, DataType)> {
    let mut cols = Vec::new();
    match analysis.class {
        ViewClass::GroupAggregate | ViewClass::JoinAggregate => {
            for g in analysis.group_columns() {
                cols.push((g.name.clone(), g.ty));
            }
            for (i, agg) in analysis.aggs.iter().enumerate() {
                match agg.func {
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        cols.push((agg.name.clone(), agg.ty));
                    }
                    AggFunc::Count => cols.push((agg.name.clone(), DataType::Integer)),
                    AggFunc::Avg => {
                        cols.push((names::hidden_sum(i), DataType::Double));
                        cols.push((names::hidden_cnt(i), DataType::Integer));
                    }
                }
            }
            cols.push((COUNT_COL.to_string(), DataType::Integer));
        }
        ViewClass::SimpleProjection | ViewClass::JoinProjection => {
            for c in &analysis.output {
                cols.push((c.name.clone(), c.ty));
            }
        }
    }
    cols.push((MULTIPLICITY_COL.to_string(), DataType::Boolean));
    cols
}

/// The materialized view table layout: visible columns in projection order,
/// hidden AVG helpers, then the Z-set weight column.
pub fn view_table_layout(analysis: &ViewAnalysis) -> Vec<(String, DataType)> {
    let mut cols: Vec<(String, DataType)> = analysis
        .output
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    for (i, agg) in analysis.aggs.iter().enumerate() {
        if agg.func == AggFunc::Avg {
            cols.push((names::hidden_sum(i), DataType::Double));
            cols.push((names::hidden_cnt(i), DataType::Integer));
        }
    }
    cols.push((COUNT_COL.to_string(), DataType::Integer));
    cols
}

/// Build the Step-1 query: the DBSP-rewritten view query reading ΔT and
/// producing ΔV rows (multiplicity column last, matching
/// [`delta_view_layout`]).
pub fn build_delta_query(analysis: &ViewAnalysis) -> Result<Query, IvmError> {
    let (proj_exprs, agg, source) = peel(analysis)?;
    let rewritten = rewrite_source(source)?;

    match agg {
        None => {
            // π* = π: project each term, keep its multiplicity.
            let mut frames = Vec::with_capacity(rewritten.delta.len());
            for term in &rewritten.delta {
                let mut projection = Vec::with_capacity(proj_exprs.len() + 1);
                for (expr, out) in proj_exprs.iter().zip(&analysis.output) {
                    projection.push((unbind(expr, &term.cols)?, out.name.clone()));
                }
                projection.push((term.mult.clone(), MULTIPLICITY_COL.to_string()));
                frames.push(SelectFrame {
                    from: term.from.clone(),
                    filters: term.filters.clone(),
                    projection,
                    group_by: vec![],
                });
            }
            Ok(DuckAst { frames }.to_query())
        }
        Some((group, aggs)) => {
            // Aggregate* groups by (keys, multiplicity) and emits partial
            // aggregates plus the per-group row count.
            let group_names: Vec<String> = analysis
                .group_columns()
                .iter()
                .map(|c| c.name.clone())
                .collect();
            if rewritten.delta.len() == 1 {
                let term = &rewritten.delta[0];
                let frame = aggregate_frame(term, group, aggs, &group_names, analysis)?;
                Ok(DuckAst::single(frame).to_query())
            } else {
                // Join expansion feeding an aggregate: materialize the
                // three-term union as a derived table, then aggregate it.
                let mut inner_frames = Vec::with_capacity(rewritten.delta.len());
                for term in &rewritten.delta {
                    let mut projection = Vec::new();
                    for (i, g) in group.iter().enumerate() {
                        projection.push((unbind(g, &term.cols)?, format!("_ivm_g{i}")));
                    }
                    for (i, a) in aggs.iter().enumerate() {
                        if let Some(arg) = &a.arg {
                            projection.push((unbind(arg, &term.cols)?, format!("_ivm_a{i}")));
                        }
                    }
                    projection.push((term.mult.clone(), MULTIPLICITY_COL.to_string()));
                    inner_frames.push(SelectFrame {
                        from: term.from.clone(),
                        filters: term.filters.clone(),
                        projection,
                        group_by: vec![],
                    });
                }
                let inner = DuckAst {
                    frames: inner_frames,
                };
                let (tref, _) = inner.as_derived_table("ivm_join_delta");
                // Build a pseudo-term over the derived table.
                let mut cols: Vec<Expr> = Vec::new();
                for i in 0..group.len() {
                    cols.push(Expr::qcol("ivm_join_delta", format!("_ivm_g{i}")));
                }
                // Map aggregate args to their derived columns by position:
                // constructed below via arg_cols.
                let mut arg_cols: Vec<Option<Expr>> = Vec::new();
                for (i, a) in aggs.iter().enumerate() {
                    arg_cols.push(
                        a.arg
                            .as_ref()
                            .map(|_| Expr::qcol("ivm_join_delta", format!("_ivm_a{i}"))),
                    );
                }
                let mult = Expr::qcol("ivm_join_delta", MULTIPLICITY_COL);
                let frame = aggregate_frame_prelowered(
                    vec![tref],
                    vec![],
                    (0..group.len()).map(|i| cols[i].clone()).collect(),
                    &arg_cols,
                    aggs,
                    &group_names,
                    analysis,
                    mult,
                );
                Ok(DuckAst::single(frame).to_query())
            }
        }
    }
}

/// Aggregate a single term frame (common single-table case).
fn aggregate_frame(
    term: &TermFrame,
    group: &[BoundExpr],
    aggs: &[AggExpr],
    group_names: &[String],
    analysis: &ViewAnalysis,
) -> Result<SelectFrame, IvmError> {
    let group_exprs: Vec<Expr> = group
        .iter()
        .map(|g| unbind(g, &term.cols))
        .collect::<Result<_, _>>()?;
    let mut arg_cols: Vec<Option<Expr>> = Vec::with_capacity(aggs.len());
    for a in aggs {
        arg_cols.push(match &a.arg {
            Some(arg) => Some(unbind(arg, &term.cols)?),
            None => None,
        });
    }
    Ok(aggregate_frame_prelowered(
        term.from.clone(),
        term.filters.clone(),
        group_exprs,
        &arg_cols,
        aggs,
        group_names,
        analysis,
        term.mult.clone(),
    ))
}

/// Assemble the grouped Step-1 frame once all expressions are AST-level.
#[allow(clippy::too_many_arguments)]
fn aggregate_frame_prelowered(
    from: Vec<TableRef>,
    filters: Vec<Expr>,
    group_exprs: Vec<Expr>,
    arg_cols: &[Option<Expr>],
    aggs: &[AggExpr],
    group_names: &[String],
    analysis: &ViewAnalysis,
    mult: Expr,
) -> SelectFrame {
    let mut projection: Vec<(Expr, String)> = group_exprs
        .iter()
        .cloned()
        .zip(group_names.iter().cloned())
        .collect();
    for (i, agg) in aggs.iter().enumerate() {
        let arg = arg_cols[i].clone();
        let info = &analysis.aggs[i];
        match agg.func {
            AggFunc::Sum => {
                projection.push((call("sum", arg.clone()), info.name.clone()));
            }
            AggFunc::Count => {
                projection.push((count_call(arg.clone()), info.name.clone()));
            }
            AggFunc::Avg => {
                projection.push((call("sum", arg.clone()), names::hidden_sum(i)));
                projection.push((count_call(arg.clone()), names::hidden_cnt(i)));
            }
            AggFunc::Min => {
                projection.push((call("min", arg.clone()), info.name.clone()));
            }
            AggFunc::Max => {
                projection.push((call("max", arg.clone()), info.name.clone()));
            }
        }
    }
    projection.push((count_call(None), COUNT_COL.to_string()));
    projection.push((mult.clone(), MULTIPLICITY_COL.to_string()));
    let mut group_by = group_exprs;
    group_by.push(mult);
    SelectFrame {
        from,
        filters,
        projection,
        group_by,
    }
}

fn call(name: &str, arg: Option<Expr>) -> Expr {
    Expr::Function {
        name: Ident::new(name),
        args: arg.into_iter().collect(),
        distinct: false,
        star: false,
    }
}

fn count_call(arg: Option<Expr>) -> Expr {
    match arg {
        Some(a) => Expr::Function {
            name: Ident::new("count"),
            args: vec![a],
            distinct: false,
            star: false,
        },
        None => Expr::Function {
            name: Ident::new("count"),
            args: vec![],
            distinct: false,
            star: true,
        },
    }
}

/// Build the non-incremental query producing rows in the *view table*
/// layout (visible columns, hidden AVG helpers, weight). Used for initial
/// population and — with `dirty_groups` — MIN/MAX group recomputation.
pub fn build_full_query(
    analysis: &ViewAnalysis,
    dirty_groups: Option<Query>,
) -> Result<Query, IvmError> {
    let (proj_exprs, agg, source) = peel(analysis)?;
    let rewritten = rewrite_source(source)?;
    let full = rewritten.full;

    match agg {
        None => {
            // Z-set weight = duplicate count: GROUP BY every projected
            // column and COUNT(*).
            let mut projection = Vec::with_capacity(proj_exprs.len() + 1);
            let mut group_by = Vec::with_capacity(proj_exprs.len());
            for (expr, out) in proj_exprs.iter().zip(&analysis.output) {
                let e = unbind(expr, &full.cols)?;
                group_by.push(e.clone());
                projection.push((e, out.name.clone()));
            }
            projection.push((count_call(None), COUNT_COL.to_string()));
            if dirty_groups.is_some() {
                return Err(IvmError::unsupported(
                    "dirty-group recomputation applies to aggregate views only",
                ));
            }
            Ok(DuckAst::single(SelectFrame {
                from: full.from,
                filters: full.filters,
                projection,
                group_by,
            })
            .to_query())
        }
        Some((group, aggs)) => {
            let group_exprs: Vec<Expr> = group
                .iter()
                .map(|g| unbind(g, &full.cols))
                .collect::<Result<_, _>>()?;
            // Visible columns in projection order.
            let mut projection = Vec::new();
            for (expr, out) in proj_exprs.iter().zip(&analysis.output) {
                let BoundExpr::Column { index, .. } = expr else {
                    return Err(IvmError::unsupported("projection over aggregates"));
                };
                let e = match out.source {
                    OutputSource::Group(_) => group_exprs[*index].clone(),
                    OutputSource::Agg(j) => {
                        let arg = match &aggs[j].arg {
                            Some(a) => Some(unbind(a, &full.cols)?),
                            None => None,
                        };
                        match aggs[j].func {
                            AggFunc::Sum => call("sum", arg),
                            AggFunc::Count => count_call(arg),
                            AggFunc::Avg => call("avg", arg),
                            AggFunc::Min => call("min", arg),
                            AggFunc::Max => call("max", arg),
                        }
                    }
                    OutputSource::Plain(_) => {
                        return Err(IvmError::unsupported("mixed projection sources"));
                    }
                };
                projection.push((e, out.name.clone()));
            }
            // Hidden AVG helpers.
            for (i, agg) in aggs.iter().enumerate() {
                if agg.func == AggFunc::Avg {
                    let arg = match &agg.arg {
                        Some(a) => Some(unbind(a, &full.cols)?),
                        None => None,
                    };
                    projection.push((call("sum", arg.clone()), names::hidden_sum(i)));
                    projection.push((count_call(arg), names::hidden_cnt(i)));
                }
            }
            projection.push((count_call(None), COUNT_COL.to_string()));

            let mut filters = full.filters;
            if let Some(dirty) = dirty_groups {
                // Single-key restriction is enforced by analyze for MIN/MAX.
                let key = group_exprs
                    .first()
                    .cloned()
                    .ok_or_else(|| IvmError::unsupported("dirty recompute without keys"))?;
                filters.push(Expr::InSubquery {
                    expr: Box::new(key),
                    query: Box::new(dirty),
                    negated: false,
                });
            }
            Ok(DuckAst::single(SelectFrame {
                from: full.from,
                filters,
                projection,
                group_by: group_exprs,
            })
            .to_query())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_view;
    use ivm_engine::Database;
    use ivm_sql::ast::Statement;
    use ivm_sql::{print_query, Dialect};

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
            .unwrap();
        db
    }

    fn analysis(sql: &str) -> ViewAnalysis {
        let db = setup();
        let q = match ivm_sql::parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            _ => unreachable!(),
        };
        analyze_view("v", &q, db.catalog()).unwrap()
    }

    #[test]
    fn listing_1_delta_query_matches_listing_2_shape() {
        let a = analysis(
            "SELECT group_index, SUM(group_value) AS total_value \
             FROM groups GROUP BY group_index",
        );
        let q = build_delta_query(&a).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        // Listing 2 lines 1–4: select from delta_groups, grouped by key and
        // multiplicity, emitting the partial SUM.
        assert!(sql.contains("FROM delta_groups"), "{sql}");
        assert!(
            sql.contains("sum(delta_groups.group_value) AS total_value"),
            "{sql}"
        );
        assert!(
            sql.contains(
                "GROUP BY delta_groups.group_index, delta_groups._duckdb_ivm_multiplicity"
            ),
            "{sql}"
        );
        assert!(sql.contains("count(*) AS _ivm_count"), "{sql}");
    }

    #[test]
    fn filter_views_keep_sigma() {
        let a = analysis("SELECT group_index FROM groups WHERE group_value > 10");
        let q = build_delta_query(&a).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        assert!(sql.contains("WHERE delta_groups.group_value > 10"), "{sql}");
        assert!(sql.contains("_duckdb_ivm_multiplicity"), "{sql}");
        assert!(
            !sql.contains("GROUP BY"),
            "projection views do not group: {sql}"
        );
    }

    #[test]
    fn join_view_expands_to_three_terms() {
        let a = analysis(
            "SELECT customers.name, orders.amount FROM orders \
             JOIN customers ON orders.cust = customers.id",
        );
        let q = build_delta_query(&a).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        assert_eq!(sql.matches("UNION ALL").count(), 2, "{sql}");
        assert!(sql.contains("delta_orders"), "{sql}");
        assert!(sql.contains("delta_customers"), "{sql}");
        // The ΔA⋈ΔB term carries the sign-flip multiplicity.
        assert!(
            sql.contains(
                "delta_orders._duckdb_ivm_multiplicity <> delta_customers._duckdb_ivm_multiplicity"
            ),
            "{sql}"
        );
    }

    #[test]
    fn join_aggregate_wraps_union_in_derived_table() {
        let a = analysis(
            "SELECT customers.name, SUM(orders.amount) AS total FROM orders \
             JOIN customers ON orders.cust = customers.id GROUP BY customers.name",
        );
        let q = build_delta_query(&a).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        assert!(sql.contains("FROM ((SELECT"), "{sql}");
        assert!(sql.contains("AS ivm_join_delta"), "{sql}");
        assert!(sql.contains("GROUP BY ivm_join_delta._ivm_g0"), "{sql}");
    }

    #[test]
    fn full_query_for_initial_population() {
        let a = analysis(
            "SELECT group_index, SUM(group_value) AS total_value \
             FROM groups GROUP BY group_index",
        );
        let q = build_full_query(&a, None).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        assert_eq!(
            sql,
            "SELECT groups.group_index, sum(groups.group_value) AS total_value, \
             count(*) AS _ivm_count FROM groups GROUP BY groups.group_index"
        );
    }

    #[test]
    fn full_query_simple_projection_weights_duplicates() {
        let a = analysis("SELECT group_index FROM groups WHERE group_value > 0");
        let q = build_full_query(&a, None).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        assert!(sql.contains("count(*) AS _ivm_count"), "{sql}");
        assert!(sql.contains("GROUP BY groups.group_index"), "{sql}");
    }

    #[test]
    fn avg_produces_hidden_partials() {
        let a = analysis(
            "SELECT group_index, AVG(group_value) AS mean FROM groups GROUP BY group_index",
        );
        let delta = print_query(&build_delta_query(&a).unwrap(), Dialect::DuckDb);
        assert!(delta.contains("AS _ivm_sum_0"), "{delta}");
        assert!(delta.contains("AS _ivm_cnt_0"), "{delta}");
        let layout = delta_view_layout(&a);
        assert!(layout.iter().any(|(n, _)| n == "_ivm_sum_0"));
        let vlayout = view_table_layout(&a);
        assert_eq!(vlayout.last().unwrap().0, COUNT_COL);
        assert!(vlayout.iter().any(|(n, _)| n == "mean"));
    }

    #[test]
    fn dirty_group_recompute_emits_in_subquery() {
        let a =
            analysis("SELECT group_index, MIN(group_value) AS lo FROM groups GROUP BY group_index");
        let dirty = match ivm_sql::parse_statement(
            "SELECT DISTINCT group_index FROM delta_v WHERE _duckdb_ivm_multiplicity = FALSE",
        )
        .unwrap()
        {
            Statement::Query(q) => *q,
            _ => unreachable!(),
        };
        let q = build_full_query(&a, Some(dirty)).unwrap();
        let sql = print_query(&q, Dialect::DuckDb);
        assert!(
            sql.contains("groups.group_index IN (SELECT DISTINCT group_index"),
            "{sql}"
        );
        assert!(sql.contains("min(groups.group_value) AS lo"), "{sql}");
    }
}
