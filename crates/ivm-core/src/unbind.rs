//! Lowering bound (index-based) expressions back to named AST expressions.
//!
//! The OpenIVM rewrite operates on the engine's logical plan, whose
//! expressions reference columns by position. To emit SQL we substitute
//! each position with a (usually qualified) column reference supplied by
//! the surrounding DuckAST frame.

use ivm_engine::expr::{BoundExpr, ScalarFunc};
use ivm_engine::{DataType, Value};
use ivm_sql::ast::{Expr, Literal, TypeName};
use ivm_sql::Ident;

use crate::error::IvmError;

/// Rebuild an AST expression from a bound expression, mapping column index
/// `i` to `cols[i]`.
pub fn unbind(expr: &BoundExpr, cols: &[Expr]) -> Result<Expr, IvmError> {
    Ok(match expr {
        BoundExpr::Literal(v) => Expr::Literal(unbind_value(v)),
        BoundExpr::Column { index, .. } => cols
            .get(*index)
            .cloned()
            .ok_or_else(|| IvmError::Engine(format!("column {index} out of range in unbind")))?,
        BoundExpr::Binary { op, left, right } => Expr::Binary {
            left: Box::new(unbind(left, cols)?),
            op: *op,
            right: Box::new(unbind(right, cols)?),
        },
        BoundExpr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(unbind(expr, cols)?),
        },
        BoundExpr::Case {
            branches,
            else_result,
        } => Expr::Case {
            operand: None,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((unbind(w, cols)?, unbind(t, cols)?)))
                .collect::<Result<_, IvmError>>()?,
            else_result: match else_result {
                Some(e) => Some(Box::new(unbind(e, cols)?)),
                None => None,
            },
        },
        BoundExpr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(unbind(expr, cols)?),
            ty: type_name(*ty),
        },
        BoundExpr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(unbind(expr, cols)?),
            negated: *negated,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(unbind(expr, cols)?),
            list: list
                .iter()
                .map(|e| unbind(e, cols))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(unbind(expr, cols)?),
            pattern: Box::new(unbind(pattern, cols)?),
            negated: *negated,
        },
        BoundExpr::ScalarFn { func, args } => Expr::Function {
            name: Ident::new(scalar_name(*func)),
            args: args
                .iter()
                .map(|e| unbind(e, cols))
                .collect::<Result<_, _>>()?,
            distinct: false,
            star: false,
        },
        BoundExpr::InSubquery { .. } | BoundExpr::InSet { .. } => {
            return Err(IvmError::unsupported("subqueries in view expressions"));
        }
    })
}

fn unbind_value(v: &Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Boolean(b) => Literal::Boolean(*b),
        Value::Integer(i) => Literal::Number(i.to_string()),
        Value::Double(d) => {
            // Keep a decimal point so the literal re-binds as DOUBLE.
            let s = format!("{d}");
            if s.contains(['.', 'e', 'E', 'n', 'i']) {
                Literal::Number(s)
            } else {
                Literal::Number(format!("{s}.0"))
            }
        }
        Value::Varchar(s) => Literal::String(s.clone()),
        Value::Date(d) => Literal::String(ivm_engine::value::format_date(*d)),
    }
}

fn type_name(t: DataType) -> TypeName {
    t.into()
}

fn scalar_name(f: ScalarFunc) -> &'static str {
    f.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_sql::ast::BinaryOp;
    use ivm_sql::{print_expr, Dialect};

    #[test]
    fn unbind_round_trips_named_sql() {
        // (c0 > 5) AND coalesce(c1, 0) = 0, with c0 → t.a, c1 → t.b
        let bound = BoundExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(BoundExpr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(BoundExpr::Column {
                    index: 0,
                    ty: None,
                    name: "a".into(),
                }),
                right: Box::new(BoundExpr::Literal(Value::Integer(5))),
            }),
            right: Box::new(BoundExpr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(BoundExpr::ScalarFn {
                    func: ScalarFunc::Coalesce,
                    args: vec![
                        BoundExpr::Column {
                            index: 1,
                            ty: None,
                            name: "b".into(),
                        },
                        BoundExpr::Literal(Value::Integer(0)),
                    ],
                }),
                right: Box::new(BoundExpr::Literal(Value::Integer(0))),
            }),
        };
        let cols = vec![Expr::qcol("t", "a"), Expr::qcol("t", "b")];
        let ast = unbind(&bound, &cols).unwrap();
        assert_eq!(
            print_expr(&ast, Dialect::DuckDb),
            "t.a > 5 AND coalesce(t.b, 0) = 0"
        );
    }

    #[test]
    fn doubles_keep_decimal_point() {
        let b = BoundExpr::Literal(Value::Double(2.0));
        let ast = unbind(&b, &[]).unwrap();
        assert_eq!(print_expr(&ast, Dialect::DuckDb), "2.0");
    }

    #[test]
    fn out_of_range_column_errors() {
        let b = BoundExpr::Column {
            index: 3,
            ty: None,
            name: "x".into(),
        };
        assert!(unbind(&b, &[]).is_err());
    }
}
