//! End-to-end IVM correctness: for every supported view class and every
//! upsert strategy, the maintained view must equal a from-scratch
//! recomputation after arbitrary insert/update/delete sequences.

use ivm_core::{IvmFlags, IvmSession, PropagationMode, UpsertStrategy};

fn session(strategy: UpsertStrategy, propagation: PropagationMode) -> IvmSession {
    IvmSession::new(IvmFlags {
        upsert_strategy: strategy,
        propagation,
        ..IvmFlags::paper_defaults()
    })
}

fn setup_groups(ivm: &mut IvmSession) {
    ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    ivm.execute(
        "INSERT INTO groups VALUES ('apple', 2), ('apple', 3), ('banana', 2), ('cherry', 7)",
    )
    .unwrap();
}

const DML: &[&str] = &[
    "INSERT INTO groups VALUES ('banana', 1), ('date', 4)",
    "DELETE FROM groups WHERE group_index = 'apple' AND group_value = 3",
    "UPDATE groups SET group_value = group_value + 10 WHERE group_index = 'banana'",
    "DELETE FROM groups WHERE group_index = 'cherry'",
    "INSERT INTO groups VALUES ('cherry', 1)",
    "UPDATE groups SET group_index = 'apple' WHERE group_index = 'date'",
    "DELETE FROM groups WHERE group_value > 100",
];

fn drive(ivm: &mut IvmSession, view: &str) {
    for (i, dml) in DML.iter().enumerate() {
        ivm.execute(dml)
            .unwrap_or_else(|e| panic!("{dml} failed: {e}"));
        assert!(
            ivm.check_consistency(view).unwrap(),
            "inconsistent after statement {i}: {dml}"
        );
    }
}

#[test]
fn listing_1_sum_view_all_strategies() {
    for strategy in [
        UpsertStrategy::LeftJoinUpsert,
        UpsertStrategy::UnionRegroup,
        UpsertStrategy::FullOuterJoin,
    ] {
        let mut ivm = session(strategy, PropagationMode::Lazy);
        setup_groups(&mut ivm);
        ivm.execute(
            "CREATE MATERIALIZED VIEW query_groups AS \
             SELECT group_index, SUM(group_value) AS total_value \
             FROM groups GROUP BY group_index",
        )
        .unwrap();
        assert!(
            ivm.check_consistency("query_groups").unwrap(),
            "initial {strategy:?}"
        );
        drive(&mut ivm, "query_groups");
    }
}

#[test]
fn count_and_multiple_aggregates() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW stats AS \
         SELECT group_index, COUNT(*) AS n, SUM(group_value) AS total, \
                COUNT(group_value) AS n_vals \
         FROM groups GROUP BY group_index",
    )
    .unwrap();
    drive(&mut ivm, "stats");
}

#[test]
fn avg_view() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW means AS \
         SELECT group_index, AVG(group_value) AS mean FROM groups GROUP BY group_index",
    )
    .unwrap();
    drive(&mut ivm, "means");
}

#[test]
fn min_max_views_with_deletions() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW extrema AS \
         SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS hi \
         FROM groups GROUP BY group_index",
    )
    .unwrap();
    assert!(ivm.check_consistency("extrema").unwrap());
    // Deleting the current minimum forces the dirty-group recompute path.
    ivm.execute("DELETE FROM groups WHERE group_index = 'apple' AND group_value = 2")
        .unwrap();
    assert!(
        ivm.check_consistency("extrema").unwrap(),
        "after min deletion"
    );
    drive(&mut ivm, "extrema");
}

#[test]
fn filtered_projection_view() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW big_values AS \
         SELECT group_index, group_value FROM groups WHERE group_value >= 2",
    )
    .unwrap();
    drive(&mut ivm, "big_values");
}

#[test]
fn projection_with_expressions_and_duplicates() {
    let mut ivm = IvmSession::with_defaults();
    ivm.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        .unwrap();
    ivm.execute("INSERT INTO t VALUES (1, 1), (1, 1), (2, 5)")
        .unwrap();
    ivm.execute("CREATE MATERIALIZED VIEW doubled AS SELECT a * 2 AS d FROM t")
        .unwrap();
    // Bag semantics: duplicates must round-trip through the Z-set weight.
    let rows = ivm.query_view("doubled").unwrap().rows;
    assert_eq!(rows.len(), 3);
    ivm.execute("INSERT INTO t VALUES (1, 9)").unwrap();
    assert!(ivm.check_consistency("doubled").unwrap());
    ivm.execute("DELETE FROM t WHERE a = 1 AND b = 1").unwrap();
    assert!(ivm.check_consistency("doubled").unwrap());
    let rows = ivm.query_view("doubled").unwrap().rows;
    assert_eq!(rows.len(), 2, "two rows remain: (1,9) and (2,5)");
}

#[test]
fn join_projection_view() {
    let mut ivm = IvmSession::with_defaults();
    ivm.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
        .unwrap();
    ivm.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
        .unwrap();
    ivm.execute("INSERT INTO customers VALUES (1, 'ada'), (2, 'bob')")
        .unwrap();
    ivm.execute("INSERT INTO orders VALUES (10, 1, 100), (11, 2, 50), (12, 1, 70)")
        .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW order_names AS \
         SELECT customers.name, orders.amount FROM orders \
         JOIN customers ON orders.cust = customers.id",
    )
    .unwrap();
    assert!(ivm.check_consistency("order_names").unwrap());
    // Deltas on both sides of the join, including the ΔA⋈ΔB term.
    ivm.execute("INSERT INTO orders VALUES (13, 2, 10)")
        .unwrap();
    assert!(
        ivm.check_consistency("order_names").unwrap(),
        "right-side delta"
    );
    ivm.execute("INSERT INTO customers VALUES (3, 'eve')")
        .unwrap();
    ivm.execute("INSERT INTO orders VALUES (14, 3, 5)").unwrap();
    assert!(
        ivm.check_consistency("order_names").unwrap(),
        "both-sides delta"
    );
    ivm.execute("DELETE FROM orders WHERE cust = 1").unwrap();
    assert!(
        ivm.check_consistency("order_names").unwrap(),
        "left deletions"
    );
    ivm.execute("UPDATE customers SET name = 'robert' WHERE id = 2")
        .unwrap();
    assert!(
        ivm.check_consistency("order_names").unwrap(),
        "dimension update"
    );
    ivm.execute("DELETE FROM customers WHERE id = 3").unwrap();
    assert!(
        ivm.check_consistency("order_names").unwrap(),
        "customer deletion"
    );
}

#[test]
fn join_aggregate_view() {
    let mut ivm = IvmSession::with_defaults();
    ivm.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
        .unwrap();
    ivm.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
        .unwrap();
    ivm.execute("INSERT INTO customers VALUES (1, 'ada'), (2, 'bob')")
        .unwrap();
    ivm.execute("INSERT INTO orders VALUES (10, 1, 100), (11, 2, 50), (12, 1, 70)")
        .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW revenue AS \
         SELECT customers.name, SUM(orders.amount) AS total, COUNT(*) AS n \
         FROM orders JOIN customers ON orders.cust = customers.id \
         GROUP BY customers.name",
    )
    .unwrap();
    assert!(ivm.check_consistency("revenue").unwrap());
    ivm.execute("INSERT INTO orders VALUES (13, 1, 30)")
        .unwrap();
    assert!(ivm.check_consistency("revenue").unwrap());
    ivm.execute("DELETE FROM orders WHERE id = 11").unwrap();
    assert!(ivm.check_consistency("revenue").unwrap(), "group vanishes");
    ivm.execute("UPDATE orders SET amount = amount * 2 WHERE cust = 1")
        .unwrap();
    assert!(ivm.check_consistency("revenue").unwrap());
}

#[test]
fn eager_vs_lazy_vs_batch() {
    for (mode, expected_runs) in [
        (PropagationMode::Eager, 3usize),
        (PropagationMode::Lazy, 0usize),
        (PropagationMode::Batch(2), 1usize),
    ] {
        let mut ivm = session(UpsertStrategy::LeftJoinUpsert, mode);
        setup_groups(&mut ivm);
        ivm.execute(
            "CREATE MATERIALIZED VIEW qg AS \
             SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
        )
        .unwrap();
        ivm.execute("INSERT INTO groups VALUES ('x', 1)").unwrap();
        ivm.execute("INSERT INTO groups VALUES ('y', 2)").unwrap();
        ivm.execute("INSERT INTO groups VALUES ('z', 3)").unwrap();
        assert_eq!(
            ivm.stats().maintenance_runs,
            expected_runs,
            "mode {mode:?} before read"
        );
        // Reading the view always reconciles.
        assert!(ivm.check_consistency("qg").unwrap());
    }
}

#[test]
fn lazy_refresh_triggers_on_view_query_through_sql() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    ivm.execute("INSERT INTO groups VALUES ('zebra', 9)")
        .unwrap();
    assert_eq!(ivm.stats().maintenance_runs, 0, "lazy: nothing ran yet");
    // Plain SQL SELECT against the view name triggers the refresh.
    let r = ivm
        .execute("SELECT total FROM qg WHERE group_index = 'zebra'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(ivm.stats().maintenance_runs, 1);
}

#[test]
fn multiple_views_share_delta_tables() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW sums AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW counts AS \
         SELECT group_index, COUNT(*) AS n FROM groups GROUP BY group_index",
    )
    .unwrap();
    ivm.execute("INSERT INTO groups VALUES ('kiwi', 6)")
        .unwrap();
    // Refreshing one view must not starve the other (shared ΔT drain).
    assert!(ivm.check_consistency("sums").unwrap());
    assert!(ivm.check_consistency("counts").unwrap());
    ivm.execute("DELETE FROM groups WHERE group_index = 'kiwi'")
        .unwrap();
    assert!(ivm.check_consistency("counts").unwrap());
    assert!(ivm.check_consistency("sums").unwrap());
}

#[test]
fn drop_materialized_view_cleans_up() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    ivm.execute("DROP VIEW qg").unwrap();
    assert!(ivm.view("qg").is_none());
    assert!(!ivm.database().catalog().has_table("qg"));
    assert!(!ivm.database().catalog().has_table("delta_qg"));
    assert!(
        !ivm.database().catalog().has_table("delta_groups"),
        "last user dropped"
    );
    // Recreating works.
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    assert!(ivm.check_consistency("qg").unwrap());
}

#[test]
fn base_table_protected_while_views_exist() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    assert!(ivm.execute("DROP TABLE groups").is_err());
    ivm.execute("DROP VIEW qg").unwrap();
    ivm.execute("DROP TABLE groups").unwrap();
}

#[test]
fn metadata_tables_populated() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    let r = ivm
        .execute("SELECT view_name, query_type, strategy FROM _openivm_views")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1].to_string(), "group_aggregate");
    assert_eq!(r.rows[0][2].to_string(), "left_join_upsert");
    let r = ivm
        .execute("SELECT COUNT(*) FROM _openivm_scripts")
        .unwrap();
    assert!(
        r.scalar().unwrap().as_integer().unwrap() >= 4,
        "4 steps stored"
    );
}

#[test]
fn insert_from_select_is_captured() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute("CREATE TABLE staging (g VARCHAR, v INTEGER)")
        .unwrap();
    ivm.execute("INSERT INTO staging VALUES ('bulk', 1), ('bulk', 2)")
        .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    ivm.execute("INSERT INTO groups SELECT g, v FROM staging")
        .unwrap();
    assert!(ivm.check_consistency("qg").unwrap());
    let r = ivm.query_view("qg").unwrap();
    assert!(r.rows.iter().any(|row| row[0].to_string() == "bulk"));
}

#[test]
fn upsert_on_tracked_base_table_rejected() {
    let mut ivm = IvmSession::with_defaults();
    ivm.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    ivm.execute("CREATE MATERIALIZED VIEW s AS SELECT k, v FROM t WHERE v > 0")
        .unwrap();
    assert!(ivm
        .execute("INSERT OR REPLACE INTO t VALUES (1, 2)")
        .is_err());
}

#[test]
fn postgres_dialect_session_works_end_to_end() {
    // The generated ON CONFLICT scripts must run on the engine too.
    let mut ivm = IvmSession::new(IvmFlags::for_postgres());
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    drive(&mut ivm, "qg");
}

#[test]
fn stored_scripts_match_registered_statements() {
    let mut ivm = IvmSession::with_defaults();
    setup_groups(&mut ivm);
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    let artifacts = ivm.view("qg").unwrap().artifacts.clone();
    let stored = ivm
        .execute("SELECT sql FROM _openivm_scripts ORDER BY step")
        .unwrap();
    assert_eq!(stored.rows.len(), artifacts.propagation.steps.len());
}

#[test]
fn adaptive_strategy_switches_paths_and_stays_consistent() {
    // Small threshold: a handful of groups regroups, many groups upsert.
    let mut ivm = IvmSession::new(IvmFlags {
        upsert_strategy: UpsertStrategy::Adaptive,
        adaptive_threshold: 8,
        ..IvmFlags::paper_defaults()
    });
    ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    // Phase 1: tiny view → regroup path.
    ivm.execute("INSERT INTO groups VALUES ('a', 1), ('b', 2)")
        .unwrap();
    assert!(ivm.check_consistency("qg").unwrap());
    assert_eq!(ivm.stats().adaptive_regroups, 1);
    assert_eq!(ivm.stats().adaptive_upserts, 0);
    // Phase 2: grow past the threshold (the choice keys on the live view
    // size *before* the refresh, so this refresh may still regroup)…
    for i in 0..20 {
        ivm.execute(&format!("INSERT INTO groups VALUES ('g{i}', {i})"))
            .unwrap();
    }
    assert!(ivm.check_consistency("qg").unwrap());
    // …phase 3: now the view is large; the next refresh must upsert.
    ivm.execute("INSERT INTO groups VALUES ('late', 99)")
        .unwrap();
    assert!(ivm.check_consistency("qg").unwrap());
    assert!(ivm.stats().adaptive_upserts >= 1, "{:?}", ivm.stats());
    // Deletions still reconcile on both paths.
    ivm.execute("DELETE FROM groups WHERE group_value > 10")
        .unwrap();
    assert!(ivm.check_consistency("qg").unwrap());
}

#[test]
fn adaptive_projection_views_fall_back_to_upsert() {
    // Regroup does not apply to projection views: alt script is absent and
    // the upsert path is used without adaptive counters moving.
    let mut ivm = IvmSession::new(IvmFlags {
        upsert_strategy: UpsertStrategy::Adaptive,
        ..IvmFlags::paper_defaults()
    });
    ivm.execute("CREATE TABLE t (a VARCHAR, b INTEGER)")
        .unwrap();
    ivm.execute("CREATE MATERIALIZED VIEW p AS SELECT a, b FROM t WHERE b > 0")
        .unwrap();
    ivm.execute("INSERT INTO t VALUES ('x', 1), ('y', -1)")
        .unwrap();
    assert!(ivm.check_consistency("p").unwrap());
    assert_eq!(ivm.stats().adaptive_regroups, 0);
    assert_eq!(ivm.stats().adaptive_upserts, 0);
}

#[test]
fn adaptive_artifacts_carry_both_scripts() {
    let mut ivm = IvmSession::new(IvmFlags {
        upsert_strategy: UpsertStrategy::Adaptive,
        ..IvmFlags::paper_defaults()
    });
    ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW qg AS \
         SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
    )
    .unwrap();
    let artifacts = &ivm.view("qg").unwrap().artifacts;
    let primary = artifacts.propagation.to_sql(false);
    assert!(primary.contains("INSERT OR REPLACE"), "{primary}");
    let alt = artifacts.alt_propagation.as_ref().unwrap().to_sql(false);
    assert!(alt.contains("DELETE FROM qg;"), "regroup truncates: {alt}");
    assert!(!alt.contains("INSERT OR REPLACE"), "{alt}");
}
