//! The database catalog: tables and (non-materialized) views.

use std::collections::HashMap;

use ivm_sql::ast::Query;

use crate::error::EngineError;
use crate::storage::Table;

/// Holds every table and view of one database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, Query>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table. Errors when a table or view of the same name exists.
    pub fn create_table(&mut self, table: Table) -> Result<(), EngineError> {
        let name = table.name.clone();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(EngineError::catalog(format!("{name} already exists")));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a logical (non-materialized) view.
    pub fn create_view(
        &mut self,
        name: impl Into<String>,
        query: Query,
    ) -> Result<(), EngineError> {
        let name = name.into();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(EngineError::catalog(format!("{name} already exists")));
        }
        self.views.insert(name, query);
        Ok(())
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::catalog(format!("table {name} does not exist")))
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| EngineError::catalog(format!("table {name} does not exist")))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Borrow a view's defining query.
    pub fn view(&self, name: &str) -> Option<&Query> {
        self.views.get(name)
    }

    /// Whether a view exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Drop a table; `if_exists` suppresses the missing-object error.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<bool, EngineError> {
        if self.tables.remove(name).is_some() {
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(EngineError::catalog(format!("table {name} does not exist")))
        }
    }

    /// Drop a view; `if_exists` suppresses the missing-object error.
    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<bool, EngineError> {
        if self.views.remove(name).is_some() {
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(EngineError::catalog(format!("view {name} does not exist")))
        }
    }

    /// Names of all tables (sorted, for deterministic output).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all views (sorted).
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::types::DataType;

    fn t(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::new("a", DataType::Integer)]),
            vec![],
        )
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        assert!(c.has_table("x"));
        assert!(c.table("x").is_ok());
        assert!(c.table("y").is_err());
        assert!(c.create_table(t("x")).is_err(), "duplicate");
        assert_eq!(c.table_names(), vec!["x"]);
    }

    #[test]
    fn drop_semantics() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        assert!(c.drop_table("x", false).unwrap());
        assert!(!c.drop_table("x", true).unwrap());
        assert!(c.drop_table("x", false).is_err());
    }

    #[test]
    fn views_share_namespace_with_tables() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        let q = match ivm_sql::parse_statement("SELECT 1").unwrap() {
            ivm_sql::ast::Statement::Query(q) => *q,
            _ => unreachable!(),
        };
        assert!(c.create_view("x", q.clone()).is_err());
        c.create_view("v", q).unwrap();
        assert!(c.has_view("v"));
        assert!(c.drop_view("v", false).unwrap());
    }
}
