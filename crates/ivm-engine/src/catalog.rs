//! The database catalog: tables and (non-materialized) views.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ivm_sql::ast::Query;
use ivm_sql::Dialect;

use crate::error::EngineError;
use crate::storage::wal::{Wal, WalRecord};
use crate::storage::Table;

/// Holds every table and view of one database.
///
/// In a durable database a WAL handle is attached
/// ([`Catalog::set_wal`]); DDL then emits logical redo records, and the
/// handle is propagated to every table so DML does too. A catalog may
/// also track *unloaded* tables — tables whose data lives only in the
/// durable page store (see `Database::unload_table`): they still occupy
/// the namespace, but borrowing them is a clean error until reloaded.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, Query>,
    unloaded: HashSet<String>,
    wal: Option<Arc<Wal>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Attach (or detach) the redo log. Propagates to every resident
    /// table and to tables registered later.
    pub(crate) fn set_wal(&mut self, wal: Option<Arc<Wal>>) {
        for table in self.tables.values_mut() {
            table.set_wal(wal.clone());
        }
        self.wal = wal;
    }

    /// Freeze a copy-on-write snapshot of the whole catalog: every
    /// resident table is [`Table::snapshot`]ed (O(columns) refcount
    /// bumps per table, no rows copied), view definitions and the
    /// unloaded set are cloned. The snapshot carries no WAL handle —
    /// it is a read-only image for concurrent readers, and mutating it
    /// would never reach the redo log by construction.
    pub fn snapshot(&self) -> Catalog {
        Catalog {
            tables: self
                .tables
                .iter()
                .map(|(name, table)| (name.clone(), table.snapshot()))
                .collect(),
            views: self.views.clone(),
            unloaded: self.unloaded.clone(),
            wal: None,
        }
    }

    /// Register a table. Errors when a table or view of the same name exists.
    pub fn create_table(&mut self, mut table: Table) -> Result<(), EngineError> {
        let name = table.name.clone();
        if self.tables.contains_key(&name)
            || self.views.contains_key(&name)
            || self.unloaded.contains(&name)
        {
            return Err(EngineError::catalog(format!("{name} already exists")));
        }
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::CreateTable {
                name: name.clone(),
                columns: table.schema.columns.clone(),
                primary_key: table.primary_key.clone(),
            });
            // Rows and indexes built *before* registration are part of
            // the redo stream too: replay recreates the table empty.
            for (_, row) in table.scan() {
                wal.log(&WalRecord::Insert {
                    table: name.clone(),
                    row,
                });
            }
            for (iname, columns, unique) in table.secondary_index_defs() {
                wal.log(&WalRecord::CreateIndex {
                    table: name.clone(),
                    name: iname,
                    columns,
                    unique,
                });
            }
        }
        table.set_wal(self.wal.clone());
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a logical (non-materialized) view.
    pub fn create_view(
        &mut self,
        name: impl Into<String>,
        query: Query,
    ) -> Result<(), EngineError> {
        let name = name.into();
        if self.tables.contains_key(&name)
            || self.views.contains_key(&name)
            || self.unloaded.contains(&name)
        {
            return Err(EngineError::catalog(format!("{name} already exists")));
        }
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::CreateView {
                name: name.clone(),
                sql: ivm_sql::print_query(&query, Dialect::DuckDb),
            });
        }
        self.views.insert(name, query);
        Ok(())
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables.get(name).ok_or_else(|| {
            if self.unloaded.contains(name) {
                EngineError::execution(format!("table {name} is not resident (unloaded)"))
            } else {
                EngineError::catalog(format!("table {name} does not exist"))
            }
        })
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        if self.tables.contains_key(name) {
            return Ok(self.tables.get_mut(name).unwrap());
        }
        if self.unloaded.contains(name) {
            return Err(EngineError::execution(format!(
                "table {name} is not resident (unloaded)"
            )));
        }
        Err(EngineError::catalog(format!("table {name} does not exist")))
    }

    /// Whether a table exists (resident or unloaded).
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name) || self.unloaded.contains(name)
    }

    /// Whether the table exists but is currently unloaded.
    pub fn is_unloaded(&self, name: &str) -> bool {
        self.unloaded.contains(name)
    }

    /// Borrow a view's defining query.
    pub fn view(&self, name: &str) -> Option<&Query> {
        self.views.get(name)
    }

    /// Whether a view exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Drop a table; `if_exists` suppresses the missing-object error.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<bool, EngineError> {
        let removed = self.tables.remove(name).is_some() || self.unloaded.remove(name);
        if removed {
            if let Some(wal) = &self.wal {
                wal.log(&WalRecord::DropTable {
                    name: name.to_string(),
                });
            }
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(EngineError::catalog(format!("table {name} does not exist")))
        }
    }

    /// Drop a view; `if_exists` suppresses the missing-object error.
    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<bool, EngineError> {
        if self.views.remove(name).is_some() {
            if let Some(wal) = &self.wal {
                wal.log(&WalRecord::DropView {
                    name: name.to_string(),
                });
            }
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(EngineError::catalog(format!("view {name} does not exist")))
        }
    }

    /// Names of all tables, resident and unloaded (sorted, for
    /// deterministic output).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.extend(self.unloaded.iter().cloned());
        names.sort();
        names
    }

    /// Names of resident tables only (sorted).
    pub fn resident_table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of unloaded tables (sorted).
    pub fn unloaded_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.unloaded.iter().cloned().collect();
        names.sort();
        names
    }

    /// Names of all views (sorted).
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }

    /// Evict a resident table from memory, keeping its name registered
    /// as unloaded. Returns the evicted table. No WAL record — residency
    /// is a runtime property, not a logical catalog change.
    pub(crate) fn evict_table(&mut self, name: &str) -> Result<Table, EngineError> {
        let table = self
            .tables
            .remove(name)
            .ok_or_else(|| EngineError::catalog(format!("table {name} is not resident")))?;
        self.unloaded.insert(name.to_string());
        Ok(table)
    }

    /// Re-install a previously evicted table. The inverse of
    /// [`Catalog::evict_table`]; no WAL record for the same reason.
    pub(crate) fn restore_table(&mut self, mut table: Table) -> Result<(), EngineError> {
        let name = table.name.clone();
        if !self.unloaded.remove(&name) {
            return Err(EngineError::catalog(format!(
                "table {name} is not unloaded"
            )));
        }
        table.set_wal(self.wal.clone());
        self.tables.insert(name, table);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::types::DataType;

    fn t(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::new("a", DataType::Integer)]),
            vec![],
        )
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        assert!(c.has_table("x"));
        assert!(c.table("x").is_ok());
        assert!(c.table("y").is_err());
        assert!(c.create_table(t("x")).is_err(), "duplicate");
        assert_eq!(c.table_names(), vec!["x"]);
    }

    #[test]
    fn drop_semantics() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        assert!(c.drop_table("x", false).unwrap());
        assert!(!c.drop_table("x", true).unwrap());
        assert!(c.drop_table("x", false).is_err());
    }

    #[test]
    fn views_share_namespace_with_tables() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        let q = match ivm_sql::parse_statement("SELECT 1").unwrap() {
            ivm_sql::ast::Statement::Query(q) => *q,
            _ => unreachable!(),
        };
        assert!(c.create_view("x", q.clone()).is_err());
        c.create_view("v", q).unwrap();
        assert!(c.has_view("v"));
        assert!(c.drop_view("v", false).unwrap());
    }

    #[test]
    fn unloaded_tables_occupy_namespace_without_residency() {
        let mut c = Catalog::new();
        c.create_table(t("x")).unwrap();
        let evicted = c.evict_table("x").unwrap();
        assert!(c.has_table("x"), "still in the namespace");
        assert!(c.is_unloaded("x"));
        assert_eq!(c.table_names(), vec!["x"]);
        assert!(c.resident_table_names().is_empty());
        let err = c.table("x").unwrap_err().to_string();
        assert!(err.contains("not resident"), "{err}");
        assert!(c.create_table(t("x")).is_err(), "name still taken");
        c.restore_table(evicted).unwrap();
        assert!(c.table("x").is_ok());
        assert!(!c.is_unloaded("x"));
        // Dropping an unloaded table works too.
        c.evict_table("x").unwrap();
        assert!(c.drop_table("x", false).unwrap());
        assert!(!c.has_table("x"));
    }
}
