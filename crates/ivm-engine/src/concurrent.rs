//! Concurrent snapshot reads: the epoch-versioned snapshot hub and the
//! per-reader session layer.
//!
//! [`Database`] is deliberately single-session — every statement takes
//! `&mut self`, which is the right discipline for the one writer but
//! means nobody can query a view while the HTAP pipeline ingests and
//! refreshes. This module adds the missing read side without giving up
//! that discipline:
//!
//! * The writer stays exclusive. After each *committed point* (a
//!   completed statement, ingest batch, or refresh) it calls
//!   [`SnapshotHub::publish`], which freezes the catalog into an
//!   immutable [`Snapshot`] stamped with a monotonically increasing
//!   epoch. Freezing is O(tables × columns) `Arc` refcount bumps
//!   ([`Catalog::snapshot`]) — no row is copied, ever.
//! * Readers are [`ReadSession`]s. At statement start a reader *pins*
//!   the hub's current snapshot (one `Arc` clone under a briefly-held
//!   lock) and executes entirely against that frozen image — serial or
//!   through the morsel-driven parallel executor — while the writer
//!   keeps appending. Copy-on-write inside [`crate::storage::Table`]
//!   guarantees the pinned image never changes underneath the reader.
//! * Because the hub only ever holds images of committed points, every
//!   read is trivially torn-free: a reader can observe snapshot *n* or
//!   *n+1*, never half of each.
//!
//! The hub also owns the shared cross-session prepared-statement cache:
//! the per-`Database` bound-plan cache of PR 3, promoted to a
//! process-wide map keyed by `(SQL, memory budget, parallelism)` and
//! validated against the snapshot's catalog-shape generation, so N
//! readers pay each query's plan/optimize/lower cost once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use ivm_sql::ast::{Query, Statement};
use ivm_sql::parse_statement;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{
    execute_parallel, execute_physical_budgeted, MemoryBudget, ParallelOptions, DEFAULT_BATCH_SIZE,
    DEFAULT_MORSEL_SIZE,
};
use crate::optimizer::optimize;
use crate::planner::physical::{lower_with_budget, PhysicalPlan};
use crate::planner::plan_query;
use crate::session::{env_budget, env_parallelism, Database, QueryResult};

/// An immutable, epoch-stamped image of the catalog at a committed point.
///
/// Obtained from [`SnapshotHub::pin`]; holding the `Arc` keeps the image
/// alive (and its storage shared) for as long as the reader needs it.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    ddl_generation: u64,
    catalog: Catalog,
}

impl Snapshot {
    /// The publication epoch: strictly increasing across publishes, so
    /// two reads can be ordered by the snapshots they saw.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen catalog image.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// Key of the shared prepared-statement cache; see
/// [`crate::session::Database::execute_statement_cached`] for why budget
/// and parallelism are part of plan identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SharedPlanKey {
    sql: String,
    budget: Option<usize>,
    parallelism: usize,
}

#[derive(Debug, Clone)]
struct SharedPlan {
    ddl_generation: u64,
    physical: Arc<PhysicalPlan>,
    columns: Vec<String>,
}

#[derive(Debug)]
struct HubInner {
    current: RwLock<Arc<Snapshot>>,
    epochs: AtomicU64,
    plans: Mutex<HashMap<SharedPlanKey, SharedPlan>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

/// The shared rendezvous between one writer and N readers.
///
/// Cloning the hub is cheap (`Arc`); hand clones to reader threads and
/// keep one beside the writer for publishing.
#[derive(Debug, Clone)]
pub struct SnapshotHub {
    inner: Arc<HubInner>,
}

/// Bound on distinct `(SQL, budget, parallelism)` entries in the shared
/// plan cache; mirrors the per-session cap in `session.rs`.
const SHARED_PLAN_CACHE_CAP: usize = 1024;

impl SnapshotHub {
    /// A hub whose initial snapshot is the database's current state.
    pub fn new(db: &Database) -> SnapshotHub {
        let snapshot = Arc::new(Snapshot {
            epoch: 1,
            ddl_generation: db.ddl_generation(),
            catalog: db.catalog().snapshot(),
        });
        SnapshotHub {
            inner: Arc::new(HubInner {
                current: RwLock::new(snapshot),
                epochs: AtomicU64::new(1),
                plans: Mutex::new(HashMap::new()),
                plan_hits: AtomicU64::new(0),
                plan_misses: AtomicU64::new(0),
            }),
        }
    }

    /// Publish the database's current state as the next snapshot. Call
    /// only at committed points — readers will serve exactly this image
    /// until the next publish. Returns the new epoch.
    pub fn publish(&self, db: &Database) -> u64 {
        let epoch = self.inner.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        let snapshot = Arc::new(Snapshot {
            epoch,
            ddl_generation: db.ddl_generation(),
            catalog: db.catalog().snapshot(),
        });
        *self.inner.current.write().unwrap() = snapshot;
        epoch
    }

    /// Pin the current snapshot: one `Arc` clone under a briefly-held
    /// read lock. The returned image is immutable for its lifetime.
    pub fn pin(&self) -> Arc<Snapshot> {
        Arc::clone(&self.inner.current.read().unwrap())
    }

    /// The epoch of the currently published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.inner.epochs.load(Ordering::Relaxed)
    }

    /// A new reader session against this hub. Each reader carries its
    /// own executor settings (initialized from the same environment
    /// defaults as [`Database::new`]) and its own statement state; all
    /// readers share the hub's snapshot stream and plan cache.
    pub fn reader(&self) -> ReadSession {
        ReadSession {
            hub: self.clone(),
            batch_size: DEFAULT_BATCH_SIZE,
            parallelism: env_parallelism(),
            morsel_size: DEFAULT_MORSEL_SIZE,
            budget: env_budget(),
            last_epoch: 0,
        }
    }

    /// `(entries, hits, misses)` of the shared prepared-statement cache.
    pub fn plan_cache_stats(&self) -> (usize, u64, u64) {
        (
            self.inner.plans.lock().unwrap().len(),
            self.inner.plan_hits.load(Ordering::Relaxed),
            self.inner.plan_misses.load(Ordering::Relaxed),
        )
    }

    /// The cached plan for `key` when its catalog-shape generation
    /// matches, else the plan produced by `build`, stored for the next
    /// session to hit. `build` runs outside the cache lock: a slow
    /// lowering must not stall other readers (two concurrent misses on
    /// the same key both build; last insert wins — both plans are
    /// equally valid for that generation).
    fn plan_for(
        &self,
        key: SharedPlanKey,
        ddl_generation: u64,
        build: impl FnOnce() -> Result<(Arc<PhysicalPlan>, Vec<String>), EngineError>,
    ) -> Result<(Arc<PhysicalPlan>, Vec<String>), EngineError> {
        {
            let plans = self.inner.plans.lock().unwrap();
            if let Some(hit) = plans.get(&key) {
                if hit.ddl_generation == ddl_generation {
                    self.inner.plan_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&hit.physical), hit.columns.clone()));
                }
            }
        }
        self.inner.plan_misses.fetch_add(1, Ordering::Relaxed);
        let (physical, columns) = build()?;
        let mut plans = self.inner.plans.lock().unwrap();
        if plans.len() >= SHARED_PLAN_CACHE_CAP {
            plans.retain(|_, e| e.ddl_generation == ddl_generation);
            if plans.len() >= SHARED_PLAN_CACHE_CAP {
                plans.clear();
            }
        }
        plans.insert(
            key,
            SharedPlan {
                ddl_generation,
                physical: Arc::clone(&physical),
                columns: columns.clone(),
            },
        );
        Ok((physical, columns))
    }
}

/// A read-only session over a [`SnapshotHub`].
///
/// Each statement pins the newest published snapshot and runs entirely
/// against it; repeated statements see monotonically non-decreasing
/// epochs. Sessions are cheap and single-threaded — create one per
/// connection/thread rather than sharing one behind a lock.
#[derive(Debug)]
pub struct ReadSession {
    hub: SnapshotHub,
    batch_size: usize,
    parallelism: usize,
    morsel_size: usize,
    budget: MemoryBudget,
    last_epoch: u64,
}

impl ReadSession {
    /// Set the executor worker count for this reader (clamped to ≥ 1).
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    /// Set this reader's executor memory budget (`None` = unbounded).
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.budget.set_limit(bytes);
    }

    /// Set the scan batch size (clamped to ≥ 1).
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size.max(1);
    }

    /// The epoch of the snapshot the most recent [`query`](Self::query)
    /// ran against (0 before the first query).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Execute one `SELECT` against the newest published snapshot.
    ///
    /// The statement is planned against the pinned snapshot's catalog
    /// (through the shared prepared-statement cache) and executed —
    /// serially, or on the morsel-driven parallel executor when this
    /// reader's parallelism is above 1 — wholly against that frozen
    /// image. DML/DDL is rejected: writes go through the single writer.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(EngineError::unsupported(
                "read sessions accept SELECT statements only; writes go through the writer session",
            ));
        };
        let snapshot = self.hub.pin();
        self.last_epoch = snapshot.epoch();
        let rows = self.query_snapshot(sql, &q, &snapshot)?;
        Ok(rows)
    }

    /// [`query`](Self::query) against an explicitly pinned snapshot —
    /// the repeatable-read form: every statement of a report can run
    /// against one consistent epoch regardless of concurrent publishes.
    pub fn query_pinned(
        &mut self,
        sql: &str,
        snapshot: &Snapshot,
    ) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(EngineError::unsupported(
                "read sessions accept SELECT statements only; writes go through the writer session",
            ));
        };
        self.last_epoch = snapshot.epoch();
        self.query_snapshot(sql, &q, snapshot)
    }

    /// Pin the current snapshot for use with
    /// [`query_pinned`](Self::query_pinned).
    pub fn pin(&self) -> Arc<Snapshot> {
        self.hub.pin()
    }

    fn query_snapshot(
        &self,
        sql: &str,
        q: &Query,
        snapshot: &Snapshot,
    ) -> Result<QueryResult, EngineError> {
        let key = SharedPlanKey {
            sql: sql.to_string(),
            budget: self.budget.limit(),
            parallelism: self.parallelism,
        };
        let catalog = snapshot.catalog();
        let (physical, columns) = self.hub.plan_for(key, snapshot.ddl_generation, || {
            let plan = optimize(plan_query(q, catalog)?);
            let columns = plan.schema().names();
            let physical = Arc::new(lower_with_budget(&plan, catalog, self.budget.limit())?);
            Ok((physical, columns))
        })?;
        let rows = if self.parallelism > 1 {
            execute_parallel(
                &physical,
                catalog,
                self.batch_size,
                ParallelOptions {
                    workers: self.parallelism,
                    morsel_size: self.morsel_size,
                    budget: self.budget.clone(),
                    adaptive_morsels: true,
                },
            )?
        } else {
            execute_physical_budgeted(&physical, catalog, self.batch_size, &self.budget)?
        };
        Ok(QueryResult {
            columns,
            rows,
            rows_affected: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn db_with_rows(n: i64) -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)").unwrap();
        for i in 0..n {
            db.execute(&format!("INSERT INTO t VALUES ({}, {})", i % 4, i))
                .unwrap();
        }
        db
    }

    #[test]
    fn pinned_snapshot_is_frozen_while_writer_appends() {
        let mut db = db_with_rows(10);
        let hub = SnapshotHub::new(&db);
        let pinned = hub.pin();
        assert_eq!(pinned.epoch(), 1);

        // Writer keeps appending and even compacts; the pinned image
        // must not move.
        for i in 10..500 {
            db.execute(&format!("INSERT INTO t VALUES ({}, {})", i % 4, i))
                .unwrap();
        }
        db.execute("DELETE FROM t WHERE v >= 250").unwrap();
        db.catalog_mut().table_mut("t").unwrap().compact();

        let mut reader = hub.reader();
        reader.set_parallelism(1);
        let old = reader
            .query_pinned("SELECT COUNT(*) FROM t", &pinned)
            .unwrap();
        assert_eq!(old.rows, vec![vec![Value::Integer(10)]]);

        // A fresh publish exposes the new state.
        hub.publish(&db);
        let new = reader.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(new.rows, vec![vec![Value::Integer(250)]]);
        assert_eq!(reader.last_epoch(), 2);
    }

    #[test]
    fn reader_rejects_writes() {
        let db = db_with_rows(1);
        let hub = SnapshotHub::new(&db);
        let mut reader = hub.reader();
        let err = reader.query("INSERT INTO t VALUES (9, 9)").unwrap_err();
        assert!(err.message().contains("read sessions accept SELECT"));
    }

    #[test]
    fn epochs_increase_monotonically() {
        let mut db = db_with_rows(2);
        let hub = SnapshotHub::new(&db);
        assert_eq!(hub.current_epoch(), 1);
        db.execute("INSERT INTO t VALUES (1, 2)").unwrap();
        assert_eq!(hub.publish(&db), 2);
        db.execute("INSERT INTO t VALUES (1, 3)").unwrap();
        assert_eq!(hub.publish(&db), 3);
        assert_eq!(hub.pin().epoch(), 3);
    }

    #[test]
    fn shared_plan_cache_hits_across_readers_and_validates_ddl() {
        let mut db = db_with_rows(8);
        let hub = SnapshotHub::new(&db);
        let mut r1 = hub.reader();
        let mut r2 = hub.reader();
        r1.set_parallelism(1);
        r2.set_parallelism(1);
        r1.query("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        r2.query("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let (entries, hits, misses) = hub.plan_cache_stats();
        assert_eq!((entries, hits, misses), (1, 1, 1), "r2 reuses r1's plan");

        // DDL on the writer → next publish carries a new generation →
        // the cached plan stops matching and is rebuilt.
        db.execute("CREATE TABLE other (x INTEGER)").unwrap();
        hub.publish(&db);
        r1.query("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let (_, hits, misses) = hub.plan_cache_stats();
        assert_eq!((hits, misses), (1, 2), "stale generation re-plans");

        // Different executor settings are different plan identities.
        r2.set_memory_budget(Some(1));
        r2.query("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let (entries, _, misses) = hub.plan_cache_stats();
        assert_eq!((entries, misses), (2, 3), "budget is part of the key");
    }

    #[test]
    fn parallel_reader_matches_serial_reader() {
        let db = db_with_rows(512);
        let hub = SnapshotHub::new(&db);
        let mut serial = hub.reader();
        serial.set_parallelism(1);
        let mut parallel = hub.reader();
        parallel.set_parallelism(4);
        let sql = "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k";
        assert_eq!(serial.query(sql).unwrap(), parallel.query(sql).unwrap());
    }
}
