//! Engine error type.

use std::fmt;

/// Errors raised by the engine: catalog misses, binder/type errors,
/// execution failures, and constraint violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    kind: ErrorKind,
    message: String,
}

/// Classification of an [`EngineError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// SQL could not be parsed.
    Parse,
    /// A referenced catalog object does not exist (or already exists).
    Catalog,
    /// Name resolution or type checking failed.
    Bind,
    /// A cast failed at runtime.
    InvalidCast,
    /// Arithmetic overflow/division by zero and similar runtime faults.
    Execution,
    /// Primary-key or NOT NULL violation.
    Constraint,
    /// Feature outside the supported subset.
    Unsupported,
}

impl EngineError {
    pub(crate) fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        EngineError {
            kind,
            message: message.into(),
        }
    }

    /// Parse-phase error (wraps [`ivm_sql::SqlError`]).
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Parse, message)
    }

    /// Catalog error: unknown/duplicate table, view, or index.
    pub fn catalog(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Catalog, message)
    }

    /// Binder error: unknown column, ambiguous name, type mismatch.
    pub fn bind(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Bind, message)
    }

    /// Cast failure.
    pub fn invalid_cast(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::InvalidCast, message)
    }

    /// Runtime execution failure.
    pub fn execution(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Execution, message)
    }

    /// Constraint violation.
    pub fn constraint(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Constraint, message)
    }

    /// Unsupported SQL feature.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Unsupported, message)
    }

    /// The error's classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ErrorKind::Parse => "parse error",
            ErrorKind::Catalog => "catalog error",
            ErrorKind::Bind => "binder error",
            ErrorKind::InvalidCast => "cast error",
            ErrorKind::Execution => "execution error",
            ErrorKind::Constraint => "constraint violation",
            ErrorKind::Unsupported => "unsupported",
        };
        write!(f, "{kind}: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<ivm_sql::SqlError> for EngineError {
    fn from(e: ivm_sql::SqlError) -> Self {
        EngineError::parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind() {
        let e = EngineError::bind("unknown column x");
        assert_eq!(e.to_string(), "binder error: unknown column x");
        assert_eq!(e.kind(), ErrorKind::Bind);
        assert_eq!(e.message(), "unknown column x");
    }
}
