//! Hash aggregation over batched input.
//!
//! The operator consumes its child on first pull, folding rows into
//! per-group accumulators keyed by the evaluated group expressions, then
//! re-emits one output batch per `batch_size` groups in first-seen order.
//! [`AggMode::Ungrouped`] runs a single accumulator set and always emits
//! exactly one row, even for empty input.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::error::EngineError;
use crate::exec::batch::RowBatch;
use crate::exec::{BatchBuilder, BoxedOperator, Operator};
use crate::expr::{AggExpr, AggFunc, BoundExpr};
use crate::planner::physical::AggMode;
use crate::value::Value;

/// One accumulator per aggregate per group.
#[derive(Debug, Clone)]
enum Acc {
    Sum {
        total_i: i64,
        total_f: f64,
        is_float: bool,
        seen: bool,
    },
    Count(i64),
    Avg {
        total: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum {
                total_i: 0,
                total_f: 0.0,
                is_float: false,
                seen: false,
            },
            AggFunc::Count => Acc::Count(0),
            AggFunc::Avg => Acc::Avg {
                total: 0.0,
                count: 0,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<(), EngineError> {
        // NULLs never reach here (skipped by the caller), except COUNT(*)
        // which feeds a non-null marker.
        match self {
            Acc::Sum {
                total_i,
                total_f,
                is_float,
                seen,
            } => {
                *seen = true;
                match v {
                    Value::Integer(i) => {
                        if *is_float {
                            *total_f += *i as f64;
                        } else {
                            *total_i = total_i
                                .checked_add(*i)
                                .ok_or_else(|| EngineError::execution("integer overflow in SUM"))?;
                        }
                    }
                    Value::Double(d) => {
                        if !*is_float {
                            *total_f = *total_i as f64;
                            *is_float = true;
                        }
                        *total_f += d;
                    }
                    other => {
                        return Err(EngineError::execution(format!("SUM of {other}")));
                    }
                }
            }
            Acc::Count(c) => *c += 1,
            Acc::Avg { total, count } => {
                let d = v
                    .as_f64()
                    .ok_or_else(|| EngineError::execution(format!("AVG of {v}")))?;
                *total += d;
                *count += 1;
            }
            Acc::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Sum {
                total_i,
                total_f,
                is_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if is_float {
                    Value::Double(total_f)
                } else {
                    Value::Integer(total_i)
                }
            }
            Acc::Count(c) => Value::Integer(c),
            Acc::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(total / count as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

struct GroupState {
    accs: Vec<Acc>,
    distinct_seen: Vec<Option<HashSet<Value>>>,
}

/// Hash (or single-group) aggregation operator.
pub struct HashAggregateOp<'a> {
    input: BoxedOperator<'a>,
    group: Vec<BoundExpr>,
    aggs: Vec<AggExpr>,
    mode: AggMode,
    batch_size: usize,
    output: Option<VecDeque<RowBatch<'a>>>,
}

impl<'a> HashAggregateOp<'a> {
    /// Aggregate `input`; `group` and agg arguments must be prepared.
    pub fn new(
        input: BoxedOperator<'a>,
        group: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        mode: AggMode,
        batch_size: usize,
    ) -> HashAggregateOp<'a> {
        debug_assert_eq!(mode == AggMode::Ungrouped, group.is_empty());
        HashAggregateOp {
            input,
            group,
            aggs,
            mode,
            batch_size,
            output: None,
        }
    }

    fn new_group_state(&self) -> GroupState {
        GroupState {
            accs: self.aggs.iter().map(|a| Acc::new(a.func)).collect(),
            distinct_seen: self
                .aggs
                .iter()
                .map(|a| a.distinct.then(HashSet::new))
                .collect(),
        }
    }

    fn fold_row(
        aggs: &[AggExpr],
        state: &mut GroupState,
        row: &crate::exec::batch::BatchRow<'_, 'a>,
    ) -> Result<(), EngineError> {
        for (i, agg) in aggs.iter().enumerate() {
            let value = match &agg.arg {
                Some(e) => e.eval(row)?,
                // COUNT(*) counts rows; feed a constant marker.
                None => Value::Boolean(true),
            };
            if value.is_null() {
                continue;
            }
            if let Some(seen) = &mut state.distinct_seen[i] {
                if !seen.insert(value.clone()) {
                    continue;
                }
            }
            state.accs[i].update(&value)?;
        }
        Ok(())
    }

    fn drain_and_aggregate(&mut self) -> Result<VecDeque<RowBatch<'a>>, EngineError> {
        let width = self.group.len() + self.aggs.len();
        let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut global = (self.mode == AggMode::Ungrouped).then(|| self.new_group_state());

        while let Some(batch) = self.input.next_batch()? {
            for r in 0..batch.num_rows() {
                let row = batch.row_view(r);
                let state = match &mut global {
                    Some(s) => s,
                    None => {
                        let mut key = Vec::with_capacity(self.group.len());
                        for g in &self.group {
                            key.push(g.eval(&row)?);
                        }
                        match groups.get_mut(&key) {
                            Some(s) => s,
                            None => {
                                order.push(key.clone());
                                let fresh = self.new_group_state();
                                groups.entry(key).or_insert(fresh)
                            }
                        }
                    }
                };
                Self::fold_row(&self.aggs, state, &row)?;
            }
        }

        let mut out = VecDeque::new();
        let mut builder = BatchBuilder::new(width);
        let flush = |builder: &mut BatchBuilder, out: &mut VecDeque<RowBatch<'a>>| {
            if !builder.is_empty() {
                out.push_back(std::mem::replace(builder, BatchBuilder::new(width)).finish());
            }
        };
        match global {
            Some(state) => {
                // Global aggregates produce one row even for empty input.
                builder.push_row(state.accs.into_iter().map(Acc::finish));
                flush(&mut builder, &mut out);
            }
            None => {
                for key in order {
                    let state = groups.remove(&key).expect("group recorded");
                    builder.push_row(
                        key.into_iter()
                            .chain(state.accs.into_iter().map(Acc::finish)),
                    );
                    if builder.len() == self.batch_size {
                        flush(&mut builder, &mut out);
                    }
                }
                flush(&mut builder, &mut out);
            }
        }
        Ok(out)
    }
}

impl<'a> Operator<'a> for HashAggregateOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.output.is_none() {
            let aggregated = self.drain_and_aggregate()?;
            self.output = Some(aggregated);
        }
        Ok(self.output.as_mut().and_then(VecDeque::pop_front))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{drain, StaticOp};
    use crate::exec::Row;
    use crate::types::DataType;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column {
            index: i,
            ty: Some(DataType::Integer),
            name: format!("c{i}"),
        }
    }

    fn agg(func: AggFunc, arg: Option<BoundExpr>) -> AggExpr {
        AggExpr {
            func,
            arg,
            distinct: false,
            name: func.name().to_string(),
        }
    }

    fn run(
        width: usize,
        rows: Vec<Row>,
        group: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        batch_size: usize,
    ) -> Vec<Row> {
        let mode = if group.is_empty() {
            AggMode::Ungrouped
        } else {
            AggMode::HashGrouped
        };
        let op = HashAggregateOp::new(
            Box::new(StaticOp::from_rows(width, rows, batch_size)),
            group,
            aggs,
            mode,
            batch_size,
        );
        drain(Box::new(op)).unwrap()
    }

    #[test]
    fn grouped_sum_count_across_batches() {
        let rows = vec![
            vec![Value::from("a"), Value::Integer(1)],
            vec![Value::from("b"), Value::Integer(2)],
            vec![Value::from("a"), Value::Integer(3)],
        ];
        let group = vec![BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Varchar),
            name: "g".into(),
        }];
        // Batch size 1 forces group state to span batches.
        let out = run(
            2,
            rows,
            group,
            vec![agg(AggFunc::Sum, Some(col(1))), agg(AggFunc::Count, None)],
            1,
        );
        assert_eq!(
            out,
            vec![
                vec![Value::from("a"), Value::Integer(4), Value::Integer(2)],
                vec![Value::from("b"), Value::Integer(2), Value::Integer(1)],
            ]
        );
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_one_row() {
        let out = run(
            1,
            vec![],
            vec![],
            vec![
                agg(AggFunc::Sum, Some(col(0))),
                agg(AggFunc::Count, None),
                agg(AggFunc::Min, Some(col(0))),
                agg(AggFunc::Avg, Some(col(0))),
            ],
            16,
        );
        assert_eq!(
            out,
            vec![vec![
                Value::Null,
                Value::Integer(0),
                Value::Null,
                Value::Null
            ]]
        );
    }

    #[test]
    fn nulls_are_skipped() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Null],
            vec![Value::Integer(3)],
        ];
        let out = run(
            1,
            rows,
            vec![],
            vec![
                agg(AggFunc::Sum, Some(col(0))),
                agg(AggFunc::Count, Some(col(0))),
                agg(AggFunc::Count, None),
                agg(AggFunc::Avg, Some(col(0))),
            ],
            2,
        );
        assert_eq!(
            out,
            vec![vec![
                Value::Integer(4),
                Value::Integer(2),
                Value::Integer(3),
                Value::Double(2.0),
            ]]
        );
    }

    #[test]
    fn sum_promotes_to_double() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Double(2.5)],
            vec![Value::Integer(2)],
        ];
        let out = run(1, rows, vec![], vec![agg(AggFunc::Sum, Some(col(0)))], 2);
        assert_eq!(out, vec![vec![Value::Double(5.5)]]);
    }

    #[test]
    fn min_max_strings() {
        let rows = vec![
            vec![Value::from("pear")],
            vec![Value::from("apple")],
            vec![Value::from("fig")],
        ];
        let out = run(
            1,
            rows,
            vec![],
            vec![
                agg(AggFunc::Min, Some(col(0))),
                agg(AggFunc::Max, Some(col(0))),
            ],
            2,
        );
        assert_eq!(out, vec![vec![Value::from("apple"), Value::from("pear")]]);
    }

    #[test]
    fn distinct_aggregation_spans_batches() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Integer(1)],
            vec![Value::Integer(2)],
        ];
        let mut sum_distinct = agg(AggFunc::Sum, Some(col(0)));
        sum_distinct.distinct = true;
        let mut count_distinct = agg(AggFunc::Count, Some(col(0)));
        count_distinct.distinct = true;
        let out = run(1, rows, vec![], vec![sum_distinct, count_distinct], 1);
        assert_eq!(out, vec![vec![Value::Integer(3), Value::Integer(2)]]);
    }

    #[test]
    fn null_group_keys_group_together() {
        let rows = vec![
            vec![Value::Null, Value::Integer(1)],
            vec![Value::Null, Value::Integer(2)],
        ];
        let group = vec![BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Varchar),
            name: "g".into(),
        }];
        let out = run(2, rows, group, vec![agg(AggFunc::Sum, Some(col(1)))], 4);
        assert_eq!(out, vec![vec![Value::Null, Value::Integer(3)]]);
    }

    #[test]
    fn sum_overflow_errors() {
        let rows = vec![vec![Value::Integer(i64::MAX)], vec![Value::Integer(1)]];
        let op = HashAggregateOp::new(
            Box::new(StaticOp::from_rows(1, rows, 4)),
            vec![],
            vec![agg(AggFunc::Sum, Some(col(0)))],
            AggMode::Ungrouped,
            4,
        );
        assert!(drain(Box::new(op)).is_err());
    }

    #[test]
    fn many_groups_chunk_into_batches() {
        let rows: Vec<Row> = (0..10)
            .map(|v| vec![Value::Integer(v), Value::Integer(1)])
            .collect();
        let out = run(
            2,
            rows,
            vec![col(0)],
            vec![agg(AggFunc::Count, None)],
            3, // 10 groups → 4 output batches
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| r[1] == Value::Integer(1)));
    }
}
