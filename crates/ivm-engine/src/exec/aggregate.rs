//! Hash aggregation over batched input.
//!
//! The operator consumes its child on first pull, folding rows into
//! per-group accumulators keyed by the evaluated group expressions, then
//! re-emits one output batch per `batch_size` groups in first-seen order.
//! [`AggMode::Ungrouped`] runs a single accumulator set and always emits
//! exactly one row, even for empty input.
//!
//! Group keys and aggregate arguments are evaluated **vectorized**: each
//! expression is compiled once into a [`VectorKernel`] and evaluated
//! chunk-at-a-time against the input batch, so the per-row work inside
//! the fold loop is reduced to cloning the pre-computed values into the
//! group hash table. The same [`AggSpec`] fold path is reused by the
//! morsel-driven parallel executor ([`crate::exec::parallel`]), which
//! folds per-morsel partial states and merges them with [`Acc::merge`].

use std::collections::{HashSet, VecDeque};

use crate::error::EngineError;
use crate::exec::batch::RowBatch;
use crate::exec::hash::{hash_key_columns, FlatTable};
use crate::exec::spill::{
    for_each_fitting_group, MemoryBudget, MergeEmit, OutputRuns, PartitionedSpiller, SpillPartition,
};
use crate::exec::typed::{note_fallback_rows, note_typed_rows, EncodedChunk, TupleStore};
use crate::exec::{BatchBuilder, BoxedOperator, Operator, Row};
use crate::expr::{AggExpr, AggFunc, BoundExpr, EvalChunk, VectorKernel};
use crate::planner::physical::AggMode;
use crate::value::Value;

/// An exactly-rounded floating-point sum accumulator.
///
/// Compensated summation generalized to a full error expansion:
/// instead of one Neumaier-style running compensation term, the
/// accumulator keeps the *entire* rounding error as a list of
/// non-overlapping partials of increasing magnitude (Shewchuk's
/// grow-expansion, as in CPython's `math.fsum`), so the partials
/// represent the real-number sum of everything added with **no error at
/// all**. [`value`](ExactSum::value) then rounds that exact sum once,
/// correctly (round-half-even). Because the represented sum is exact,
/// the result is independent of addition order and of where partial
/// accumulators are [`merge`](ExactSum::merge)d — which is what makes
/// the parallel executor's morsel-boundary merges bitwise identical to
/// the serial fold, where a single running compensation would differ in
/// the last ulp.
///
/// Non-finite inputs (and exact sums that overflow the `f64` range)
/// collapse the accumulator to plain IEEE addition semantics: NaN is
/// sticky, `+inf + -inf` is NaN — matching what a `+` fold produces.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExactSum {
    partials: Vec<f64>,
    /// Set once any input or the exact sum itself leaves the finite
    /// range; from then on plain IEEE addition applies.
    special: Option<f64>,
}

impl ExactSum {
    /// Add one addend, maintaining the exact expansion.
    pub(crate) fn add(&mut self, value: f64) {
        if let Some(s) = &mut self.special {
            *s += value;
            return;
        }
        if !value.is_finite() {
            self.special = Some(self.round() + value);
            self.partials.clear();
            return;
        }
        let mut x = value;
        let mut out = 0;
        for i in 0..self.partials.len() {
            let mut y = self.partials[i];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            // Dekker two-sum: hi is the rounded sum, lo the exact error.
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[out] = lo;
                out += 1;
            }
            x = hi;
        }
        self.partials.truncate(out);
        if x != 0.0 {
            if !x.is_finite() {
                // The exact sum left the f64 range.
                self.special = Some(x);
                self.partials.clear();
                return;
            }
            self.partials.push(x);
        }
    }

    /// Fold another accumulator in. Merging expansions adds exact
    /// quantities, so any merge tree yields the same exact sum — and
    /// therefore the same rounded [`value`](ExactSum::value) — as the
    /// serial element-order fold.
    pub(crate) fn merge(&mut self, later: &ExactSum) {
        if let Some(s) = later.special {
            self.add(s);
            return;
        }
        for &x in &later.partials {
            self.add(x);
        }
    }

    /// The correctly rounded (round-half-even) value of the exact sum.
    pub(crate) fn value(&self) -> f64 {
        match self.special {
            Some(s) => s,
            None => self.round(),
        }
    }

    /// CPython `math.fsum`'s backward pass: sum partials highest first,
    /// stopping at the first nonzero remainder, then apply the halfway
    /// correction so the result rounds as if computed in one operation.
    fn round(&self) -> f64 {
        let p = &self.partials;
        let Some(mut n) = p.len().checked_sub(1) else {
            return 0.0;
        };
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            debug_assert!(x.abs() >= y.abs());
            hi = x + y;
            lo = y - (hi - x);
            if lo != 0.0 {
                break;
            }
        }
        // hi may sit exactly halfway between representable values; if
        // the remaining partials push in the same direction as lo, the
        // exact sum is past the halfway point and hi must round away.
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// One accumulator per aggregate per group.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Sum {
        total_i: i64,
        total_f: ExactSum,
        is_float: bool,
        seen: bool,
    },
    Count(i64),
    Avg {
        total: ExactSum,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum {
                total_i: 0,
                total_f: ExactSum::default(),
                is_float: false,
                seen: false,
            },
            AggFunc::Count => Acc::Count(0),
            AggFunc::Avg => Acc::Avg {
                total: ExactSum::default(),
                count: 0,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<(), EngineError> {
        // NULLs never reach here (skipped by the caller), except COUNT(*)
        // which feeds a non-null marker.
        match self {
            Acc::Sum {
                total_i,
                total_f,
                is_float,
                seen,
            } => {
                *seen = true;
                match v {
                    Value::Integer(i) => {
                        if *is_float {
                            total_f.add(*i as f64);
                        } else {
                            *total_i = total_i
                                .checked_add(*i)
                                .ok_or_else(|| EngineError::execution("integer overflow in SUM"))?;
                        }
                    }
                    Value::Double(d) => {
                        if !*is_float {
                            total_f.add(*total_i as f64);
                            *is_float = true;
                        }
                        total_f.add(*d);
                    }
                    other => {
                        return Err(EngineError::execution(format!("SUM of {other}")));
                    }
                }
            }
            Acc::Count(c) => *c += 1,
            Acc::Avg { total, count } => {
                let d = v
                    .as_f64()
                    .ok_or_else(|| EngineError::execution(format!("AVG of {v}")))?;
                total.add(d);
                *count += 1;
            }
            Acc::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// [`update`](Acc::update) specialized for a non-null integer fed
    /// from a typed argument chunk — no `Value` is constructed unless an
    /// extremum is actually stored.
    #[inline]
    fn update_i64(&mut self, v: i64) -> Result<(), EngineError> {
        match self {
            Acc::Sum {
                total_i,
                total_f,
                is_float,
                seen,
            } => {
                *seen = true;
                if *is_float {
                    total_f.add(v as f64);
                } else {
                    *total_i = total_i
                        .checked_add(v)
                        .ok_or_else(|| EngineError::execution("integer overflow in SUM"))?;
                }
            }
            Acc::Count(c) => *c += 1,
            Acc::Avg { total, count } => {
                total.add(v as f64);
                *count += 1;
            }
            Acc::Min(cur) => {
                if cur
                    .as_ref()
                    .is_none_or(|c| Value::Integer(v).total_cmp(c).is_lt())
                {
                    *cur = Some(Value::Integer(v));
                }
            }
            Acc::Max(cur) => {
                if cur
                    .as_ref()
                    .is_none_or(|c| Value::Integer(v).total_cmp(c).is_gt())
                {
                    *cur = Some(Value::Integer(v));
                }
            }
        }
        Ok(())
    }

    /// [`update`](Acc::update) specialized for a non-null double fed from
    /// a typed argument chunk.
    #[inline]
    fn update_f64(&mut self, v: f64) -> Result<(), EngineError> {
        match self {
            Acc::Sum {
                total_i,
                total_f,
                is_float,
                seen,
            } => {
                *seen = true;
                if !*is_float {
                    total_f.add(*total_i as f64);
                    *is_float = true;
                }
                total_f.add(v);
            }
            Acc::Count(c) => *c += 1,
            Acc::Avg { total, count } => {
                total.add(v);
                *count += 1;
            }
            Acc::Min(cur) => {
                if cur
                    .as_ref()
                    .is_none_or(|c| Value::Double(v).total_cmp(c).is_lt())
                {
                    *cur = Some(Value::Double(v));
                }
            }
            Acc::Max(cur) => {
                if cur
                    .as_ref()
                    .is_none_or(|c| Value::Double(v).total_cmp(c).is_gt())
                {
                    *cur = Some(Value::Double(v));
                }
            }
        }
        Ok(())
    }

    /// Fold `later` (a partial accumulator over rows that come *after*
    /// every row `self` has seen) into `self`. Used by the parallel
    /// executor to merge per-morsel partial states in morsel order, which
    /// keeps first-seen semantics (MIN/MAX ties, SUM type promotion)
    /// aligned with the serial fold.
    pub(crate) fn merge(&mut self, later: Acc) -> Result<(), EngineError> {
        match (self, later) {
            (
                Acc::Sum {
                    total_i,
                    total_f,
                    is_float,
                    seen,
                },
                Acc::Sum {
                    total_i: bi,
                    total_f: bf,
                    is_float: bfl,
                    seen: bs,
                },
            ) => {
                *seen |= bs;
                if *is_float || bfl {
                    if !*is_float {
                        total_f.add(*total_i as f64);
                        *is_float = true;
                    }
                    if bfl {
                        total_f.merge(&bf);
                    } else {
                        total_f.add(bi as f64);
                    }
                } else {
                    *total_i = total_i
                        .checked_add(bi)
                        .ok_or_else(|| EngineError::execution("integer overflow in SUM"))?;
                }
            }
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (
                Acc::Avg { total, count },
                Acc::Avg {
                    total: bt,
                    count: bc,
                },
            ) => {
                total.merge(&bt);
                *count += bc;
            }
            (Acc::Min(cur), Acc::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Max(cur), Acc::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                        *cur = Some(v);
                    }
                }
            }
            _ => unreachable!("mismatched accumulator kinds"),
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Sum {
                total_i,
                total_f,
                is_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if is_float {
                    Value::Double(total_f.value())
                } else {
                    Value::Integer(total_i)
                }
            }
            Acc::Count(c) => Value::Integer(c),
            Acc::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(total.value() / count as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Per-group accumulator state: one [`Acc`] per aggregate, plus the seen
/// sets of DISTINCT aggregates.
#[derive(Debug)]
pub(crate) struct GroupState {
    pub(crate) accs: Vec<Acc>,
    pub(crate) distinct_seen: Vec<Option<HashSet<Value>>>,
}

impl GroupState {
    /// Merge a partial state over *later* rows into this one (same
    /// ordering contract as [`Acc::merge`]). DISTINCT seen-sets are
    /// unioned; with [`AggSpec::deferred_distinct`] the accumulators of
    /// distinct aggregates are untouched until
    /// [`AggSpec::finalize_distinct`] folds the merged sets.
    pub(crate) fn merge(&mut self, later: GroupState) -> Result<(), EngineError> {
        for (acc, b) in self.accs.iter_mut().zip(later.accs) {
            acc.merge(b)?;
        }
        for (set, b) in self.distinct_seen.iter_mut().zip(later.distinct_seen) {
            if let (Some(set), Some(b)) = (set, b) {
                set.extend(b);
            }
        }
        Ok(())
    }
}

/// The grouped accumulator store: a flat open-addressing index
/// ([`FlatTable`]) over arena-stored group keys, states, and hashes.
/// Group keys live in a typed key arena (packed `(tag, word)` columns —
/// see [`crate::exec::typed`]) while representable, so a group lookup is
/// a branch-free word compare; an unrepresentable key (integer beyond
/// ±2^53) demotes the store losslessly to `Vec<Value>` keys. Arena order
/// *is* first-seen order, so draining the arenas reproduces the serial
/// output order with no separate `order` vector; stored per-group hashes
/// make morsel merges reuse the fold-time hash (a group key is hashed
/// once per operator, never re-hashed at merge).
#[derive(Debug, Default)]
pub(crate) struct GroupTable {
    table: FlatTable,
    keys: TupleStore,
    hashes: Vec<u64>,
    states: Vec<GroupState>,
    scratch: EncodedChunk,
    hint: usize,
}

impl GroupTable {
    /// An empty table.
    pub(crate) fn new() -> GroupTable {
        GroupTable::default()
    }

    /// An empty table pre-sized for about `hint` groups (planner sizing
    /// hint; 0 = unknown).
    pub(crate) fn with_capacity(hint: usize) -> GroupTable {
        GroupTable {
            table: FlatTable::with_capacity(hint),
            keys: TupleStore::Empty,
            hashes: Vec::with_capacity(hint),
            states: Vec::with_capacity(hint),
            scratch: EncodedChunk::new(),
            hint,
        }
    }

    /// Number of groups.
    pub(crate) fn len(&self) -> usize {
        self.states.len()
    }

    /// Encode one batch's evaluated key columns into the typed scratch
    /// chunk *and* hash them — one fused pass per batch, each key value
    /// enum-dispatched exactly once (bit-identical to
    /// [`hash_key_columns`]) — before the per-row
    /// [`group_index`](GroupTable::group_index) loop. Returns the per-row
    /// key hashes.
    fn begin_chunk(&mut self, key_cols: &[Vec<Value>], rows: usize) -> Vec<u64> {
        self.keys.ensure_width(key_cols.len());
        if let TupleStore::Typed(arena) = &mut self.keys {
            if arena.is_empty() && self.hint > 0 {
                arena.reserve(self.hint);
                self.hint = 0;
            }
            let hashes = arena.encode_chunk_hashed(&mut self.scratch, rows, |r, c| &key_cols[c][r]);
            note_typed_rows((rows - self.scratch.bad_rows()) as u64);
            note_fallback_rows(self.scratch.bad_rows() as u64);
            hashes
        } else {
            note_fallback_rows(rows as u64);
            hash_key_columns(key_cols, rows)
        }
    }

    /// Resolve the store for `width`-column keys and report whether it is
    /// typed — the precondition for
    /// [`begin_chunk_columns`](GroupTable::begin_chunk_columns).
    fn typed_ready(&mut self, width: usize) -> bool {
        self.keys.ensure_width(width);
        matches!(self.keys, TupleStore::Typed(_))
    }

    /// [`begin_chunk`](GroupTable::begin_chunk) for bare-column group
    /// keys: encodes and hashes straight off the batch's columns, never
    /// materializing the keys as `Vec<Value>`. Caller must have checked
    /// [`typed_ready`](GroupTable::typed_ready).
    fn begin_chunk_columns(&mut self, batch: &RowBatch<'_>, cols: &[usize]) -> Vec<u64> {
        let rows = batch.num_rows();
        let TupleStore::Typed(arena) = &mut self.keys else {
            unreachable!("typed_ready checked before begin_chunk_columns")
        };
        if arena.is_empty() && self.hint > 0 {
            arena.reserve(self.hint);
            self.hint = 0;
        }
        let hashes = arena.encode_batch_hashed(&mut self.scratch, batch, cols);
        note_typed_rows((rows - self.scratch.bad_rows()) as u64);
        note_fallback_rows(self.scratch.bad_rows() as u64);
        hashes
    }

    /// The group index for the key at row `r` of the evaluated key
    /// columns, creating a fresh state (first-seen append) when new.
    /// Requires a [`begin_chunk`](GroupTable::begin_chunk) call for this
    /// batch.
    fn group_index(
        &mut self,
        hash: u64,
        key_cols: &[Vec<Value>],
        r: usize,
        spec: &AggSpec,
    ) -> usize {
        if matches!(self.keys, TupleStore::Typed(_)) && !self.scratch.ok(r) {
            self.keys.demote();
        }
        match &mut self.keys {
            TupleStore::Typed(arena) => {
                let (table, scratch) = (&self.table, &self.scratch);
                match table.find(hash, |g| arena.eq_chunk(g as usize, scratch, r)) {
                    Some(g) => g as usize,
                    None => {
                        let g = arena.push_from_chunk(scratch, r);
                        self.hashes.push(hash);
                        self.states.push(spec.new_state());
                        self.table.insert(hash, g);
                        g as usize
                    }
                }
            }
            TupleStore::Rows(keys) => {
                let found = self.table.find(hash, |g| {
                    let key = &keys[g as usize];
                    key_cols.iter().zip(key).all(|(c, kv)| &c[r] == kv)
                });
                match found {
                    Some(g) => g as usize,
                    None => {
                        let g = keys.len();
                        keys.push(key_cols.iter().map(|c| c[r].clone()).collect());
                        self.hashes.push(hash);
                        self.states.push(spec.new_state());
                        self.table.insert(hash, g as u32);
                        g
                    }
                }
            }
            TupleStore::Empty => unreachable!("begin_chunk resolves the store"),
        }
    }

    /// The state for an already-materialized key (morsel merges),
    /// creating a fresh state when new. Uses the key's stored fold-time
    /// hash.
    fn merge_index(&mut self, hash: u64, key: &[Value], spec: &AggSpec) -> usize {
        self.keys.ensure_width(key.len());
        let mut demote = false;
        if let TupleStore::Typed(arena) = &mut self.keys {
            // No batch fold is in flight during a merge, so the chunk
            // scratch is free for the single-key encode.
            arena.encode_chunk(&mut self.scratch, 1, |_, c| &key[c]);
            if self.scratch.ok(0) {
                let (table, scratch) = (&self.table, &self.scratch);
                if let Some(g) = table.find(hash, |g| arena.eq_chunk(g as usize, scratch, 0)) {
                    return g as usize;
                }
                let g = arena.push_from_chunk(scratch, 0);
                self.hashes.push(hash);
                self.states.push(spec.new_state());
                self.table.insert(hash, g);
                return g as usize;
            }
            demote = true;
        }
        if demote {
            self.keys.demote();
        }
        let keys = match &mut self.keys {
            TupleStore::Rows(keys) => keys,
            _ => unreachable!(),
        };
        let found = self.table.find(hash, |g| keys[g as usize] == key);
        match found {
            Some(g) => g as usize,
            None => {
                let g = keys.len();
                keys.push(key.to_vec());
                self.hashes.push(hash);
                self.states.push(spec.new_state());
                self.table.insert(hash, g as u32);
                g
            }
        }
    }

    /// Merge `later` (per-morsel partial groups over rows *after* every
    /// row this table has seen) in its first-seen order — reconstructing
    /// the global serial first-seen order across morsels. Keys decode out
    /// of `later`'s arena one at a time (exact round trip).
    pub(crate) fn merge_from(
        &mut self,
        later: GroupTable,
        spec: &AggSpec,
    ) -> Result<(), EngineError> {
        let keys = later.keys;
        for ((g, hash), state) in (0usize..).zip(later.hashes).zip(later.states) {
            let key = keys.row(g);
            let idx = self.merge_index(hash, &key, spec);
            self.states[idx].merge(state)?;
        }
        Ok(())
    }

    /// Drain into `(key, state)` pairs in first-seen group order.
    pub(crate) fn into_ordered(self) -> impl Iterator<Item = (Vec<Value>, GroupState)> {
        let keys = match self.keys {
            TupleStore::Empty => Vec::new(),
            TupleStore::Typed(arena) => arena.decode_all(),
            TupleStore::Rows(keys) => keys,
        };
        keys.into_iter().zip(self.states)
    }

    /// Drain straight into `batch_size`-row output batches — key columns
    /// then finished aggregate columns, first-seen group order. Key
    /// values decode column-wise out of the arena into the output
    /// columns, so no per-group key row is ever materialized (the
    /// [`into_ordered`](GroupTable::into_ordered) path allocates one
    /// `Vec<Value>` per group, which dominates high-cardinality emits).
    pub(crate) fn into_batches(self, batch_size: usize) -> VecDeque<RowBatch<'static>> {
        let n = self.states.len();
        let mut out = VecDeque::new();
        if n == 0 {
            return out;
        }
        let agg_width = self.states[0].accs.len();
        let step = batch_size.max(1);
        let mut states = self.states.into_iter();
        let mut emit = |cols: Vec<Vec<Value>>| out.push_back(RowBatch::from_columns(cols));
        match self.keys {
            TupleStore::Typed(arena) => {
                let kw = arena.width();
                let mut start = 0usize;
                while start < n {
                    let end = (start + step).min(n);
                    let mut cols: Vec<Vec<Value>> = (0..kw + agg_width)
                        .map(|_| Vec::with_capacity(end - start))
                        .collect();
                    for (c, col) in cols.iter_mut().enumerate().take(kw) {
                        for g in start..end {
                            col.push(arena.value_at(g, c));
                        }
                    }
                    for state in states.by_ref().take(end - start) {
                        for (j, acc) in state.accs.into_iter().enumerate() {
                            cols[kw + j].push(acc.finish());
                        }
                    }
                    emit(cols);
                    start = end;
                }
            }
            TupleStore::Rows(keys) => {
                let kw = keys.first().map_or(0, Vec::len);
                let mut keys = keys.into_iter();
                let mut start = 0usize;
                while start < n {
                    let end = (start + step).min(n);
                    let mut cols: Vec<Vec<Value>> = (0..kw + agg_width)
                        .map(|_| Vec::with_capacity(end - start))
                        .collect();
                    for (key, state) in keys.by_ref().zip(states.by_ref()).take(end - start) {
                        for (c, v) in key.into_iter().enumerate() {
                            cols[c].push(v);
                        }
                        for (j, acc) in state.accs.into_iter().enumerate() {
                            cols[kw + j].push(acc.finish());
                        }
                    }
                    emit(cols);
                    start = end;
                }
            }
            // Grouped folds resolve the store on first batch; states are
            // only non-empty once that happened.
            TupleStore::Empty => unreachable!("groups exist without a key store"),
        }
        out
    }
}

/// The compiled form of one aggregation: vectorized kernels for the group
/// keys and aggregate arguments plus the fold/merge/finish logic, shared
/// by the serial [`HashAggregateOp`] and the parallel partitioned
/// aggregation.
pub(crate) struct AggSpec {
    aggs: Vec<AggExpr>,
    group_kernels: Vec<VectorKernel>,
    arg_kernels: Vec<Option<VectorKernel>>,
    /// When every group key is a bare column reference (`GROUP BY k`),
    /// their input column indexes: the fold then encodes and hashes keys
    /// straight off the batch columns instead of evaluating each kernel
    /// into a cloned `Vec<Value>`.
    bare_group_cols: Option<Vec<usize>>,
    /// When set (parallel mode), DISTINCT aggregates only collect their
    /// seen-sets during folding; the accumulators are fed once from the
    /// merged set in [`AggSpec::finalize_distinct`]. The serial path
    /// folds distinct values immediately (first-occurrence order).
    deferred_distinct: bool,
}

impl AggSpec {
    /// Compile kernels for prepared group expressions and aggregates.
    pub(crate) fn new(group: &[BoundExpr], aggs: Vec<AggExpr>, deferred_distinct: bool) -> AggSpec {
        let group_kernels: Vec<VectorKernel> = group.iter().map(VectorKernel::compile).collect();
        let arg_kernels = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(VectorKernel::compile))
            .collect();
        let bare_group_cols = (!group.is_empty())
            .then(|| {
                group_kernels
                    .iter()
                    .map(VectorKernel::column_index)
                    .collect::<Option<Vec<usize>>>()
            })
            .flatten();
        AggSpec {
            aggs,
            group_kernels,
            arg_kernels,
            bare_group_cols,
            deferred_distinct,
        }
    }

    /// Number of aggregate output columns.
    pub(crate) fn agg_width(&self) -> usize {
        self.aggs.len()
    }

    /// A fresh per-group state.
    pub(crate) fn new_state(&self) -> GroupState {
        // Without any DISTINCT aggregate the seen-set vector stays empty
        // (`Vec::new` never allocates): grouped folds create one state
        // per group, so a dead allocation here is paid once per group.
        let distinct_seen = if self.aggs.iter().any(|a| a.distinct) {
            self.aggs
                .iter()
                .map(|a| a.distinct.then(HashSet::new))
                .collect()
        } else {
            Vec::new()
        };
        GroupState {
            accs: self.aggs.iter().map(|a| Acc::new(a.func)).collect(),
            distinct_seen,
        }
    }

    /// Evaluate the aggregate-argument kernels for one batch
    /// (chunk-at-a-time, numeric outputs staying typed; `None` slots are
    /// `COUNT(*)`).
    fn arg_chunks(&self, batch: &RowBatch<'_>) -> Result<Vec<Option<EvalChunk>>, EngineError> {
        self.arg_kernels
            .iter()
            .map(|k| k.as_ref().map(|k| k.eval_chunk(batch)).transpose())
            .collect()
    }

    fn fold_row(
        &self,
        state: &mut GroupState,
        row: usize,
        arg_cols: &[Option<EvalChunk>],
    ) -> Result<(), EngineError> {
        for (i, chunk) in arg_cols.iter().enumerate() {
            match chunk {
                // COUNT(*) counts rows; feed a constant marker.
                None => {
                    if let Some(seen) = state.distinct_seen.get_mut(i).and_then(Option::as_mut) {
                        if !seen.insert(Value::Boolean(true)) {
                            continue;
                        }
                        if self.deferred_distinct {
                            continue;
                        }
                    }
                    state.accs[i].update(&Value::Boolean(true))?;
                }
                Some(EvalChunk::Ints { data, nulls }) => {
                    if nulls.as_ref().is_some_and(|n| n[row]) {
                        continue;
                    }
                    let v = data[row];
                    if let Some(seen) = state.distinct_seen.get_mut(i).and_then(Option::as_mut) {
                        if !seen.insert(Value::Integer(v)) {
                            continue;
                        }
                        if self.deferred_distinct {
                            continue;
                        }
                    }
                    state.accs[i].update_i64(v)?;
                }
                Some(EvalChunk::Floats { data, nulls }) => {
                    if nulls.as_ref().is_some_and(|n| n[row]) {
                        continue;
                    }
                    let v = data[row];
                    if let Some(seen) = state.distinct_seen.get_mut(i).and_then(Option::as_mut) {
                        if !seen.insert(Value::Double(v)) {
                            continue;
                        }
                        if self.deferred_distinct {
                            continue;
                        }
                    }
                    state.accs[i].update_f64(v)?;
                }
                Some(EvalChunk::Values(vals)) => {
                    let value = &vals[row];
                    if value.is_null() {
                        continue;
                    }
                    if let Some(seen) = state.distinct_seen.get_mut(i).and_then(Option::as_mut) {
                        if seen.contains(value) {
                            continue;
                        }
                        seen.insert(value.clone());
                        if self.deferred_distinct {
                            // Parallel mode: the accumulator is fed from
                            // the merged set at finalization, never
                            // during folding.
                            continue;
                        }
                    }
                    state.accs[i].update(value)?;
                }
            }
        }
        Ok(())
    }

    /// Evaluate the group-key kernels and their per-row hashes for one
    /// batch (the spill path uses this to route rows to radix partitions
    /// without folding them yet).
    pub(crate) fn group_hashes(&self, batch: &RowBatch<'_>) -> Result<Vec<u64>, EngineError> {
        let key_cols: Vec<Vec<Value>> = self
            .group_kernels
            .iter()
            .map(|k| k.eval_column(batch))
            .collect::<Result<_, _>>()?;
        Ok(hash_key_columns(&key_cols, batch.num_rows()))
    }

    /// Fold one batch into the grouped flat table, evaluating group keys,
    /// aggregate arguments, *and key hashes* vectorized — each key is
    /// hashed exactly once, chunk-at-a-time, and only materialized on
    /// first sight.
    pub(crate) fn fold_batch_grouped(
        &self,
        batch: &RowBatch<'_>,
        groups: &mut GroupTable,
    ) -> Result<(), EngineError> {
        self.fold_batch_grouped_observed(batch, groups, |_| {})
    }

    /// [`fold_batch_grouped`](AggSpec::fold_batch_grouped) with a hook
    /// invoked with the batch row index whenever that row *creates* a new
    /// group — the spill path records the creating row's global sequence
    /// number to restore the serial first-seen emission order.
    pub(crate) fn fold_batch_grouped_observed(
        &self,
        batch: &RowBatch<'_>,
        groups: &mut GroupTable,
        mut on_new_group: impl FnMut(usize),
    ) -> Result<(), EngineError> {
        let rows = batch.num_rows();
        // Bare-column keys encode and hash straight off the batch columns
        // while the store is typed; the keys only materialize as
        // `Vec<Value>` when the row-based path can actually observe them.
        let bare = self
            .bare_group_cols
            .as_deref()
            .filter(|cols| cols.iter().all(|&c| c < batch.width()));
        let mut key_cols: Vec<Vec<Value>> = Vec::new();
        let hashes = match bare {
            Some(cols) if groups.typed_ready(cols.len()) => {
                let hashes = groups.begin_chunk_columns(batch, cols);
                if !groups.scratch.all_ok() {
                    // Unrepresentable keys in this batch demote the store
                    // mid-fold, which needs materialized key values.
                    key_cols = cols
                        .iter()
                        .map(|&c| {
                            let mut out = Vec::with_capacity(rows);
                            batch.column(c).for_each_value(rows, |_, v| {
                                out.push(v.clone());
                            });
                            out
                        })
                        .collect();
                }
                hashes
            }
            _ => {
                key_cols = self
                    .group_kernels
                    .iter()
                    .map(|k| k.eval_column(batch))
                    .collect::<Result<_, _>>()?;
                groups.begin_chunk(&key_cols, rows)
            }
        };
        let arg_cols = self.arg_chunks(batch)?;
        for (r, &hash) in hashes.iter().enumerate() {
            let before = groups.len();
            let g = groups.group_index(hash, &key_cols, r, self);
            if groups.len() > before {
                on_new_group(r);
            }
            self.fold_row(&mut groups.states[g], r, &arg_cols)?;
        }
        Ok(())
    }

    /// Fold one batch into a single (ungrouped) accumulator state.
    pub(crate) fn fold_batch_global(
        &self,
        batch: &RowBatch<'_>,
        state: &mut GroupState,
    ) -> Result<(), EngineError> {
        let arg_cols = self.arg_chunks(batch)?;
        for r in 0..batch.num_rows() {
            self.fold_row(state, r, &arg_cols)?;
        }
        Ok(())
    }

    /// Feed the merged DISTINCT sets into their accumulators (deferred
    /// mode only). Values are folded in total order, which is
    /// deterministic regardless of how morsels were scheduled.
    pub(crate) fn finalize_distinct(&self, state: &mut GroupState) -> Result<(), EngineError> {
        debug_assert!(self.deferred_distinct);
        for (i, seen) in state.distinct_seen.iter_mut().enumerate() {
            let Some(seen) = seen else { continue };
            let mut values: Vec<Value> = seen.drain().collect();
            values.sort_by(|a, b| a.total_cmp(b));
            for v in &values {
                state.accs[i].update(v)?;
            }
        }
        Ok(())
    }
}

/// Hash (or single-group) aggregation operator.
///
/// With a bounded [`MemoryBudget`], grouped aggregation routes its input
/// rows through a [`PartitionedSpiller`] keyed on the group hash and
/// folds one radix partition's [`GroupTable`] at a time (recursively
/// re-partitioning partitions that still do not fit). A group's rows all
/// share its partition, so per-group fold order matches the serial fold
/// exactly; groups are tagged with the sequence number of their creating
/// row and merged back into the global first-seen order — spilled output
/// is row-identical, order included, to the in-memory fold. Ungrouped
/// aggregation holds one accumulator set and never needs to spill.
pub struct HashAggregateOp<'a> {
    input: BoxedOperator<'a>,
    spec: AggSpec,
    group_width: usize,
    mode: AggMode,
    batch_size: usize,
    /// Planner sizing hint for the group table (0 = unknown).
    groups_hint: usize,
    budget: MemoryBudget,
    /// Pre-partitioned input groups (one per parallel worker) plus the
    /// input row width; set by [`HashAggregateOp::with_prepartitioned`].
    prepart: Option<(Vec<Vec<SpillPartition>>, usize)>,
    output: Option<VecDeque<RowBatch<'a>>>,
    spilled_emit: Option<MergeEmit>,
}

impl<'a> HashAggregateOp<'a> {
    /// Aggregate `input`; `group` and agg arguments must be prepared.
    /// `groups_hint` pre-sizes the flat group table (0 = unknown).
    pub fn new(
        input: BoxedOperator<'a>,
        group: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        mode: AggMode,
        batch_size: usize,
        groups_hint: usize,
    ) -> HashAggregateOp<'a> {
        debug_assert_eq!(mode == AggMode::Ungrouped, group.is_empty());
        HashAggregateOp {
            spec: AggSpec::new(&group, aggs, false),
            group_width: group.len(),
            input,
            mode,
            batch_size,
            groups_hint,
            budget: MemoryBudget::unbounded(),
            prepart: None,
            output: None,
            spilled_emit: None,
        }
    }

    /// Attach a memory budget: grouped folds that overflow it spill
    /// radix partitions of their input to disk and aggregate partition
    /// at a time.
    pub fn with_budget(mut self, budget: MemoryBudget) -> HashAggregateOp<'a> {
        self.budget = budget;
        self
    }

    /// Aggregate pre-partitioned input groups (one spiller result per
    /// parallel worker, hashed on the group key) of `input_width`-column
    /// rows instead of draining `input`. Grouped spill path only.
    pub(crate) fn with_prepartitioned(
        mut self,
        groups: Vec<Vec<SpillPartition>>,
        input_width: usize,
    ) -> HashAggregateOp<'a> {
        self.prepart = Some((groups, input_width));
        self
    }

    /// The spill path for grouped aggregation under a bounded budget.
    fn drain_and_aggregate_spilled(&mut self) -> Result<MergeEmit, EngineError> {
        let width = self.group_width + self.spec.agg_width();
        let (groups_in, input_width) = match self.prepart.take() {
            Some((groups, w)) => (groups, w),
            None => {
                let mut spiller = PartitionedSpiller::new(self.budget.clone(), 0);
                let mut seq = 0u64;
                let mut input_width = 0usize;
                while let Some(batch) = self.input.next_batch()? {
                    input_width = batch.width();
                    let hashes = self.spec.group_hashes(&batch)?;
                    for (r, &hash) in hashes.iter().enumerate() {
                        spiller.push(hash, seq, batch.materialize_row(r))?;
                        seq += 1;
                    }
                }
                (vec![spiller.finish()?], input_width)
            }
        };
        // Each partition appends one run of (first-seen sequence, output
        // row) pairs — ascending, because groups are discovered while
        // folding in sequence order — and the emission merge restores
        // the global serial first-seen order.
        let mut runs = OutputRuns::new(self.budget.clone());
        let budget = self.budget.clone();
        let spec = &self.spec;
        let batch_size = self.batch_size.max(1);
        for_each_fitting_group(groups_in, &budget, 0, &mut |tuples| {
            let mut groups = GroupTable::new();
            let mut first_seqs: Vec<u64> = Vec::new();
            for chunk in tuples.chunks(batch_size) {
                let seqs: Vec<u64> = chunk.iter().map(|(_, s, _)| *s).collect();
                let rows: Vec<Row> = chunk.iter().map(|(_, _, r)| r.clone()).collect();
                let batch = RowBatch::from_rows(input_width, rows);
                spec.fold_batch_grouped_observed(&batch, &mut groups, |r| {
                    first_seqs.push(seqs[r]);
                })?;
            }
            runs.begin_run();
            for (g, (key, state)) in groups.into_ordered().enumerate() {
                let row: Row = key
                    .into_iter()
                    .chain(state.accs.into_iter().map(Acc::finish))
                    .collect();
                runs.push(first_seqs[g], 0, row)?;
            }
            Ok(())
        })?;
        runs.finish(width, self.batch_size)
    }

    /// Whether this aggregation runs the out-of-core grouped path.
    fn spills(&self) -> bool {
        self.prepart.is_some() || (self.budget.is_bounded() && self.mode == AggMode::HashGrouped)
    }

    fn drain_and_aggregate(&mut self) -> Result<VecDeque<RowBatch<'a>>, EngineError> {
        let width = self.group_width + self.spec.agg_width();
        // Arena order doubles as first-seen group order.
        let mut groups = GroupTable::with_capacity(self.groups_hint);
        let mut global = (self.mode == AggMode::Ungrouped).then(|| self.spec.new_state());

        while let Some(batch) = self.input.next_batch()? {
            match &mut global {
                Some(state) => self.spec.fold_batch_global(&batch, state)?,
                None => self.spec.fold_batch_grouped(&batch, &mut groups)?,
            }
        }

        match global {
            Some(state) => {
                // Global aggregates produce one row even for empty input.
                let mut builder = BatchBuilder::new(width);
                builder.push_row(state.accs.into_iter().map(Acc::finish));
                let mut out = VecDeque::new();
                out.push_back(builder.finish());
                Ok(out)
            }
            None => Ok(groups.into_batches(self.batch_size)),
        }
    }
}

impl<'a> Operator<'a> for HashAggregateOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.spilled_emit.is_some() || self.spills() {
            if self.spilled_emit.is_none() {
                let emit = self.drain_and_aggregate_spilled()?;
                self.spilled_emit = Some(emit);
            }
            return self.spilled_emit.as_mut().expect("just set").next_batch();
        }
        if self.output.is_none() {
            let aggregated = self.drain_and_aggregate()?;
            self.output = Some(aggregated);
        }
        Ok(self.output.as_mut().and_then(VecDeque::pop_front))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{drain, StaticOp};
    use crate::exec::Row;
    use crate::types::DataType;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column {
            index: i,
            ty: Some(DataType::Integer),
            name: format!("c{i}"),
        }
    }

    fn agg(func: AggFunc, arg: Option<BoundExpr>) -> AggExpr {
        AggExpr {
            func,
            arg,
            distinct: false,
            name: func.name().to_string(),
        }
    }

    fn run(
        width: usize,
        rows: Vec<Row>,
        group: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        batch_size: usize,
    ) -> Vec<Row> {
        let mode = if group.is_empty() {
            AggMode::Ungrouped
        } else {
            AggMode::HashGrouped
        };
        let op = HashAggregateOp::new(
            Box::new(StaticOp::from_rows(width, rows, batch_size)),
            group,
            aggs,
            mode,
            batch_size,
            0,
        );
        drain(Box::new(op)).unwrap()
    }

    #[test]
    fn grouped_sum_count_across_batches() {
        let rows = vec![
            vec![Value::from("a"), Value::Integer(1)],
            vec![Value::from("b"), Value::Integer(2)],
            vec![Value::from("a"), Value::Integer(3)],
        ];
        let group = vec![BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Varchar),
            name: "g".into(),
        }];
        // Batch size 1 forces group state to span batches.
        let out = run(
            2,
            rows,
            group,
            vec![agg(AggFunc::Sum, Some(col(1))), agg(AggFunc::Count, None)],
            1,
        );
        assert_eq!(
            out,
            vec![
                vec![Value::from("a"), Value::Integer(4), Value::Integer(2)],
                vec![Value::from("b"), Value::Integer(2), Value::Integer(1)],
            ]
        );
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_one_row() {
        let out = run(
            1,
            vec![],
            vec![],
            vec![
                agg(AggFunc::Sum, Some(col(0))),
                agg(AggFunc::Count, None),
                agg(AggFunc::Min, Some(col(0))),
                agg(AggFunc::Avg, Some(col(0))),
            ],
            16,
        );
        assert_eq!(
            out,
            vec![vec![
                Value::Null,
                Value::Integer(0),
                Value::Null,
                Value::Null
            ]]
        );
    }

    #[test]
    fn nulls_are_skipped() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Null],
            vec![Value::Integer(3)],
        ];
        let out = run(
            1,
            rows,
            vec![],
            vec![
                agg(AggFunc::Sum, Some(col(0))),
                agg(AggFunc::Count, Some(col(0))),
                agg(AggFunc::Count, None),
                agg(AggFunc::Avg, Some(col(0))),
            ],
            2,
        );
        assert_eq!(
            out,
            vec![vec![
                Value::Integer(4),
                Value::Integer(2),
                Value::Integer(3),
                Value::Double(2.0),
            ]]
        );
    }

    #[test]
    fn sum_promotes_to_double() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Double(2.5)],
            vec![Value::Integer(2)],
        ];
        let out = run(1, rows, vec![], vec![agg(AggFunc::Sum, Some(col(0)))], 2);
        assert_eq!(out, vec![vec![Value::Double(5.5)]]);
    }

    #[test]
    fn min_max_strings() {
        let rows = vec![
            vec![Value::from("pear")],
            vec![Value::from("apple")],
            vec![Value::from("fig")],
        ];
        let out = run(
            1,
            rows,
            vec![],
            vec![
                agg(AggFunc::Min, Some(col(0))),
                agg(AggFunc::Max, Some(col(0))),
            ],
            2,
        );
        assert_eq!(out, vec![vec![Value::from("apple"), Value::from("pear")]]);
    }

    #[test]
    fn distinct_aggregation_spans_batches() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Integer(1)],
            vec![Value::Integer(2)],
        ];
        let mut sum_distinct = agg(AggFunc::Sum, Some(col(0)));
        sum_distinct.distinct = true;
        let mut count_distinct = agg(AggFunc::Count, Some(col(0)));
        count_distinct.distinct = true;
        let out = run(1, rows, vec![], vec![sum_distinct, count_distinct], 1);
        assert_eq!(out, vec![vec![Value::Integer(3), Value::Integer(2)]]);
    }

    #[test]
    fn null_group_keys_group_together() {
        let rows = vec![
            vec![Value::Null, Value::Integer(1)],
            vec![Value::Null, Value::Integer(2)],
        ];
        let group = vec![BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Varchar),
            name: "g".into(),
        }];
        let out = run(2, rows, group, vec![agg(AggFunc::Sum, Some(col(1)))], 4);
        assert_eq!(out, vec![vec![Value::Null, Value::Integer(3)]]);
    }

    #[test]
    fn sum_overflow_errors() {
        let rows = vec![vec![Value::Integer(i64::MAX)], vec![Value::Integer(1)]];
        let op = HashAggregateOp::new(
            Box::new(StaticOp::from_rows(1, rows, 4)),
            vec![],
            vec![agg(AggFunc::Sum, Some(col(0)))],
            AggMode::Ungrouped,
            4,
            0,
        );
        assert!(drain(Box::new(op)).is_err());
    }

    #[test]
    fn many_groups_chunk_into_batches() {
        let rows: Vec<Row> = (0..10)
            .map(|v| vec![Value::Integer(v), Value::Integer(1)])
            .collect();
        let out = run(
            2,
            rows,
            vec![col(0)],
            vec![agg(AggFunc::Count, None)],
            3, // 10 groups → 4 output batches
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| r[1] == Value::Integer(1)));
    }

    #[test]
    fn spilled_aggregation_is_row_identical_to_in_memory() {
        // Many groups, NULL keys, DISTINCT aggregates, mixed types.
        let rows: Vec<Row> = (0..500)
            .map(|i| {
                let g = if i % 19 == 0 {
                    Value::Null
                } else {
                    Value::from(format!("g{}", i % 37))
                };
                vec![g, Value::Integer(i % 29), Value::Integer(i % 5)]
            })
            .collect();
        let group = vec![BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Varchar),
            name: "g".into(),
        }];
        let mut distinct_sum = agg(AggFunc::Sum, Some(col(2)));
        distinct_sum.distinct = true;
        let aggs = vec![
            agg(AggFunc::Sum, Some(col(1))),
            agg(AggFunc::Count, None),
            agg(AggFunc::Min, Some(col(1))),
            agg(AggFunc::Max, Some(col(1))),
            agg(AggFunc::Avg, Some(col(1))),
            distinct_sum,
        ];
        let run_with = |budget: MemoryBudget, batch_size: usize| {
            let op = HashAggregateOp::new(
                Box::new(StaticOp::from_rows(3, rows.clone(), batch_size)),
                group.clone(),
                aggs.clone(),
                AggMode::HashGrouped,
                batch_size,
                0,
            )
            .with_budget(budget);
            drain(Box::new(op)).unwrap()
        };
        let unbounded = run_with(MemoryBudget::unbounded(), 16);
        for limit in [1usize, 1024, 64 * 1024] {
            for batch_size in [1usize, 16, 1024] {
                let budget = MemoryBudget::with_limit(limit);
                let spilled = run_with(budget.clone(), batch_size);
                assert_eq!(
                    unbounded, spilled,
                    "budget {limit} batch {batch_size} changed aggregation output"
                );
                if limit == 1 {
                    assert!(budget.stats().spilled(), "1-byte budget must spill");
                }
            }
        }
    }

    #[test]
    fn bounded_ungrouped_aggregation_never_spills() {
        let budget = MemoryBudget::with_limit(1);
        let op = HashAggregateOp::new(
            Box::new(StaticOp::from_rows(
                1,
                (0..100).map(|v| vec![Value::Integer(v)]).collect(),
                8,
            )),
            vec![],
            vec![agg(AggFunc::Sum, Some(col(0)))],
            AggMode::Ungrouped,
            8,
            0,
        )
        .with_budget(budget.clone());
        assert_eq!(
            drain(Box::new(op)).unwrap(),
            vec![vec![Value::Integer(4950)]]
        );
        assert!(
            !budget.stats().spilled(),
            "one accumulator set never spills"
        );
    }

    #[test]
    fn acc_merge_matches_sequential_fold() {
        // SUM: int + promoted-double partials merge exactly.
        let mut a = Acc::new(AggFunc::Sum);
        a.update(&Value::Integer(3)).unwrap();
        let mut b = Acc::new(AggFunc::Sum);
        b.update(&Value::Double(2.5)).unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.finish(), Value::Double(5.5));
        // Overflow surfaces through merge too.
        let mut a = Acc::new(AggFunc::Sum);
        a.update(&Value::Integer(i64::MAX)).unwrap();
        let mut b = Acc::new(AggFunc::Sum);
        b.update(&Value::Integer(1)).unwrap();
        assert!(a.merge(b).is_err());
        // MIN/MAX keep the earlier partial's value on equal keys.
        let mut a = Acc::new(AggFunc::Min);
        a.update(&Value::Integer(7)).unwrap();
        let mut b = Acc::new(AggFunc::Min);
        b.update(&Value::Integer(7)).unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.finish(), Value::Integer(7));
        // AVG partials combine totals and counts.
        let mut a = Acc::new(AggFunc::Avg);
        a.update(&Value::Integer(1)).unwrap();
        let mut b = Acc::new(AggFunc::Avg);
        b.update(&Value::Integer(3)).unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.finish(), Value::Double(2.0));
        // Empty partials merge to the empty result.
        let mut a = Acc::new(AggFunc::Sum);
        a.merge(Acc::new(AggFunc::Sum)).unwrap();
        assert_eq!(a.finish(), Value::Null);
    }

    #[test]
    fn exact_sum_is_order_and_split_independent() {
        // The classic compensation-killer sequence: big and tiny
        // magnitudes whose naive fold loses the tiny terms entirely.
        let xs = [1e300, 1.0, -1e300, 1e-7, 1e16, 3.25, -1e16, -1.0];
        let mut serial = ExactSum::default();
        for &x in &xs {
            serial.add(x);
        }
        // Every split point, merged as the parallel executor would.
        for cut in 0..=xs.len() {
            let (a, b) = xs.split_at(cut);
            let mut left = ExactSum::default();
            for &x in a {
                left.add(x);
            }
            let mut right = ExactSum::default();
            for &x in b {
                right.add(x);
            }
            left.merge(&right);
            assert_eq!(
                left.value().to_bits(),
                serial.value().to_bits(),
                "split at {cut}"
            );
        }
        // Exactness, not just consistency: the tiny terms survive.
        assert_eq!(serial.value(), 1e-7 + 3.25);
    }

    #[test]
    fn exact_sum_rounds_half_to_even() {
        // 1 + 2^-53 + 2^-53: the naive left fold loses both halves and
        // returns 1.0; the exact sum is 1 + 2^-52, representable.
        let ulp_half = (2.0f64).powi(-53);
        let mut s = ExactSum::default();
        s.add(1.0);
        s.add(ulp_half);
        s.add(ulp_half);
        assert_eq!(s.value(), 1.0 + (2.0f64).powi(-52));
        // 1 + 2^-53 alone sits exactly halfway; round-half-even keeps 1.
        let mut s = ExactSum::default();
        s.add(1.0);
        s.add(ulp_half);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn exact_sum_special_values_follow_ieee() {
        let mut s = ExactSum::default();
        s.add(1.0);
        s.add(f64::INFINITY);
        s.add(5.0);
        assert_eq!(s.value(), f64::INFINITY);
        s.add(f64::NEG_INFINITY);
        assert!(s.value().is_nan(), "inf + -inf is NaN");
        let mut s = ExactSum::default();
        s.add(f64::NAN);
        s.add(1.0);
        assert!(s.value().is_nan(), "NaN is sticky");
        // Exact-sum overflow collapses to infinity like a `+` fold.
        let mut s = ExactSum::default();
        s.add(f64::MAX);
        s.add(f64::MAX);
        assert_eq!(s.value(), f64::INFINITY);
        // Empty sum is 0.0.
        assert_eq!(ExactSum::default().value(), 0.0);
    }
}
