//! Hash aggregation.

use std::collections::{HashMap, HashSet};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{prepare_expr, Row};
use crate::expr::{AggExpr, AggFunc, BoundExpr};
use crate::value::Value;

/// One accumulator per aggregate per group.
#[derive(Debug, Clone)]
enum Acc {
    Sum { total_i: i64, total_f: f64, is_float: bool, seen: bool },
    Count(i64),
    Avg { total: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum { total_i: 0, total_f: 0.0, is_float: false, seen: false },
            AggFunc::Count => Acc::Count(0),
            AggFunc::Avg => Acc::Avg { total: 0.0, count: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<(), EngineError> {
        // NULLs never reach here (skipped by the caller), except COUNT(*)
        // which feeds a non-null marker.
        match self {
            Acc::Sum { total_i, total_f, is_float, seen } => {
                *seen = true;
                match v {
                    Value::Integer(i) => {
                        if *is_float {
                            *total_f += *i as f64;
                        } else {
                            *total_i = total_i.checked_add(*i).ok_or_else(|| {
                                EngineError::execution("integer overflow in SUM")
                            })?;
                        }
                    }
                    Value::Double(d) => {
                        if !*is_float {
                            *total_f = *total_i as f64;
                            *is_float = true;
                        }
                        *total_f += d;
                    }
                    other => {
                        return Err(EngineError::execution(format!("SUM of {other}")));
                    }
                }
            }
            Acc::Count(c) => *c += 1,
            Acc::Avg { total, count } => {
                let d = v
                    .as_f64()
                    .ok_or_else(|| EngineError::execution(format!("AVG of {v}")))?;
                *total += d;
                *count += 1;
            }
            Acc::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Sum { total_i, total_f, is_float, seen } => {
                if !seen {
                    Value::Null
                } else if is_float {
                    Value::Double(total_f)
                } else {
                    Value::Integer(total_i)
                }
            }
            Acc::Count(c) => Value::Integer(c),
            Acc::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(total / count as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Execute hash aggregation over materialized input rows.
pub(crate) fn execute_aggregate(
    rows: Vec<Row>,
    group: &[BoundExpr],
    aggs: &[AggExpr],
    catalog: &Catalog,
) -> Result<Vec<Row>, EngineError> {
    let group_exprs: Vec<BoundExpr> = group
        .iter()
        .map(|e| prepare_expr(e, catalog))
        .collect::<Result<_, _>>()?;
    let agg_args: Vec<Option<BoundExpr>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| prepare_expr(e, catalog)).transpose())
        .collect::<Result<_, _>>()?;

    struct GroupState {
        accs: Vec<Acc>,
        distinct_seen: Vec<Option<HashSet<Value>>>,
    }

    let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Vec<Value>> = Vec::new();

    for row in &rows {
        let mut key = Vec::with_capacity(group_exprs.len());
        for g in &group_exprs {
            key.push(g.eval(row)?);
        }
        let state = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(|| GroupState {
                    accs: aggs.iter().map(|a| Acc::new(a.func)).collect(),
                    distinct_seen: aggs
                        .iter()
                        .map(|a| a.distinct.then(HashSet::new))
                        .collect(),
                })
            }
        };
        for (i, _agg) in aggs.iter().enumerate() {
            let value = match &agg_args[i] {
                Some(e) => e.eval(row)?,
                // COUNT(*) counts rows; feed a constant marker.
                None => Value::Boolean(true),
            };
            if value.is_null() {
                continue;
            }
            if let Some(seen) = &mut state.distinct_seen[i] {
                if !seen.insert(value.clone()) {
                    continue;
                }
            }
            state.accs[i].update(&value)?;
        }
    }

    // Global aggregates over empty input still produce one row.
    if group_exprs.is_empty() && groups.is_empty() {
        let out: Vec<Value> =
            aggs.iter().map(|a| Acc::new(a.func).finish()).collect();
        return Ok(vec![out]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let state = groups.remove(&key).expect("group recorded");
        let mut row = key;
        for acc in state.accs {
            row.push(acc.finish());
        }
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column { index: i, ty: Some(DataType::Integer), name: format!("c{i}") }
    }

    fn agg(func: AggFunc, arg: Option<BoundExpr>) -> AggExpr {
        AggExpr { func, arg, distinct: false, name: func.name().to_string() }
    }

    fn run(rows: Vec<Row>, group: &[BoundExpr], aggs: &[AggExpr]) -> Vec<Row> {
        execute_aggregate(rows, group, aggs, &Catalog::new()).unwrap()
    }

    #[test]
    fn grouped_sum_count() {
        let rows = vec![
            vec![Value::from("a"), Value::Integer(1)],
            vec![Value::from("b"), Value::Integer(2)],
            vec![Value::from("a"), Value::Integer(3)],
        ];
        let group = [BoundExpr::Column { index: 0, ty: Some(DataType::Varchar), name: "g".into() }];
        let out = run(
            rows,
            &group,
            &[agg(AggFunc::Sum, Some(col(1))), agg(AggFunc::Count, None)],
        );
        assert_eq!(
            out,
            vec![
                vec![Value::from("a"), Value::Integer(4), Value::Integer(2)],
                vec![Value::from("b"), Value::Integer(2), Value::Integer(1)],
            ]
        );
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let out = run(
            vec![],
            &[],
            &[
                agg(AggFunc::Sum, Some(col(0))),
                agg(AggFunc::Count, None),
                agg(AggFunc::Min, Some(col(0))),
                agg(AggFunc::Avg, Some(col(0))),
            ],
        );
        assert_eq!(
            out,
            vec![vec![Value::Null, Value::Integer(0), Value::Null, Value::Null]]
        );
    }

    #[test]
    fn nulls_are_skipped() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Null],
            vec![Value::Integer(3)],
        ];
        let out = run(
            rows,
            &[],
            &[
                agg(AggFunc::Sum, Some(col(0))),
                agg(AggFunc::Count, Some(col(0))),
                agg(AggFunc::Count, None),
                agg(AggFunc::Avg, Some(col(0))),
            ],
        );
        assert_eq!(
            out,
            vec![vec![
                Value::Integer(4),
                Value::Integer(2),
                Value::Integer(3),
                Value::Double(2.0),
            ]]
        );
    }

    #[test]
    fn sum_promotes_to_double() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Double(2.5)],
            vec![Value::Integer(2)],
        ];
        let out = run(rows, &[], &[agg(AggFunc::Sum, Some(col(0)))]);
        assert_eq!(out, vec![vec![Value::Double(5.5)]]);
    }

    #[test]
    fn min_max_strings() {
        let rows = vec![
            vec![Value::from("pear")],
            vec![Value::from("apple")],
            vec![Value::from("fig")],
        ];
        let out = run(
            rows,
            &[],
            &[agg(AggFunc::Min, Some(col(0))), agg(AggFunc::Max, Some(col(0)))],
        );
        assert_eq!(out, vec![vec![Value::from("apple"), Value::from("pear")]]);
    }

    #[test]
    fn distinct_aggregation() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Integer(1)],
            vec![Value::Integer(2)],
        ];
        let mut sum_distinct = agg(AggFunc::Sum, Some(col(0)));
        sum_distinct.distinct = true;
        let mut count_distinct = agg(AggFunc::Count, Some(col(0)));
        count_distinct.distinct = true;
        let out = run(rows, &[], &[sum_distinct, count_distinct]);
        assert_eq!(out, vec![vec![Value::Integer(3), Value::Integer(2)]]);
    }

    #[test]
    fn null_group_keys_group_together() {
        let rows = vec![
            vec![Value::Null, Value::Integer(1)],
            vec![Value::Null, Value::Integer(2)],
        ];
        let group = [BoundExpr::Column { index: 0, ty: Some(DataType::Varchar), name: "g".into() }];
        let out = run(rows, &group, &[agg(AggFunc::Sum, Some(col(1)))]);
        assert_eq!(out, vec![vec![Value::Null, Value::Integer(3)]]);
    }

    #[test]
    fn sum_overflow_errors() {
        let rows = vec![vec![Value::Integer(i64::MAX)], vec![Value::Integer(1)]];
        let res = execute_aggregate(
            rows,
            &[],
            &[agg(AggFunc::Sum, Some(col(0)))],
            &Catalog::new(),
        );
        assert!(res.is_err());
    }
}
