//! Columnar row batches flowing between physical operators.
//!
//! A [`RowBatch`] is a vector of column chunks plus a logical row count.
//! Chunks either *borrow* a storage column (zero-copy scans) or *own*
//! computed values, and each carries an optional selection vector so
//! filters and projections can drop or reorder rows without touching the
//! underlying `Value`s. Rows are only materialized at pipeline boundaries
//! (hash tables, sorts, final results).

use std::sync::Arc;

use crate::value::{Tuple, Value};

/// Default number of logical rows per batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Backing storage of one column chunk.
#[derive(Debug, Clone)]
enum Values<'a> {
    /// Values computed by an operator, shared so projections stay cheap.
    Owned(Arc<Vec<Value>>),
    /// A borrowed slice of a storage column (zero-copy scan).
    Borrowed(&'a [Value]),
}

impl Values<'_> {
    fn get(&self, physical: usize) -> &Value {
        match self {
            Values::Owned(v) => &v[physical],
            Values::Borrowed(s) => &s[physical],
        }
    }
}

/// One column of a batch: values plus an optional logical→physical
/// selection vector.
#[derive(Debug, Clone)]
pub struct ColumnData<'a> {
    values: Values<'a>,
    sel: Option<Arc<Vec<u32>>>,
}

impl<'a> ColumnData<'a> {
    /// A column owning its values, aligned with the logical row order.
    pub fn owned(values: Vec<Value>) -> ColumnData<'a> {
        ColumnData {
            values: Values::Owned(Arc::new(values)),
            sel: None,
        }
    }

    /// A zero-copy view of a storage column slice, aligned with the
    /// logical row order.
    pub fn borrowed(values: &'a [Value]) -> ColumnData<'a> {
        ColumnData {
            values: Values::Borrowed(values),
            sel: None,
        }
    }

    /// A zero-copy view selecting `sel[i]` as logical row `i`.
    pub fn borrowed_with_sel(values: &'a [Value], sel: Arc<Vec<u32>>) -> ColumnData<'a> {
        ColumnData {
            values: Values::Borrowed(values),
            sel: Some(sel),
        }
    }

    /// A column sharing an owned value buffer, selecting `sel[i]` as
    /// logical row `i`. Lets operators that keep a columnar copy of
    /// materialized rows (e.g. a join's build side) emit gathered output
    /// without cloning any [`Value`].
    pub fn shared_with_sel(values: Arc<Vec<Value>>, sel: Arc<Vec<u32>>) -> ColumnData<'a> {
        ColumnData {
            values: Values::Owned(values),
            sel: Some(sel),
        }
    }

    /// Value at the logical row index.
    pub fn get(&self, logical: usize) -> &Value {
        let physical = match &self.sel {
            Some(sel) => sel[logical] as usize,
            None => logical,
        };
        self.values.get(physical)
    }

    /// Visit the first `rows` logical values in order. The selection
    /// dispatch happens once per chunk instead of once per value, so
    /// chunk-at-a-time kernels (e.g. the hash kernels in
    /// [`crate::exec::hash`]) run a tight slice loop in the common
    /// unselected case.
    pub fn for_each_value(&self, rows: usize, mut f: impl FnMut(usize, &Value)) {
        match (&self.values, &self.sel) {
            (Values::Owned(v), None) => {
                for (i, val) in v[..rows].iter().enumerate() {
                    f(i, val);
                }
            }
            (Values::Borrowed(s), None) => {
                for (i, val) in s[..rows].iter().enumerate() {
                    f(i, val);
                }
            }
            (values, Some(sel)) => {
                for (i, &p) in sel[..rows].iter().enumerate() {
                    f(i, values.get(p as usize));
                }
            }
        }
    }

    /// Restrict/reorder to the logical rows in `keep`, without copying
    /// values: selections compose. `composed` memoizes compositions per
    /// distinct source selection, since a batch's columns usually share
    /// one selection `Arc`.
    fn select(
        &self,
        keep: &Arc<Vec<u32>>,
        composed: &mut Vec<(*const Vec<u32>, Arc<Vec<u32>>)>,
    ) -> ColumnData<'a> {
        let sel = match &self.sel {
            None => Arc::clone(keep),
            Some(old) => {
                let ptr = Arc::as_ptr(old);
                match composed.iter().find(|(p, _)| *p == ptr) {
                    Some((_, sel)) => Arc::clone(sel),
                    None => {
                        let sel: Arc<Vec<u32>> =
                            Arc::new(keep.iter().map(|&i| old[i as usize]).collect());
                        composed.push((ptr, Arc::clone(&sel)));
                        sel
                    }
                }
            }
        };
        ColumnData {
            values: self.values.clone(),
            sel: Some(sel),
        }
    }
}

/// A batch of logical rows in columnar layout.
#[derive(Debug, Clone)]
pub struct RowBatch<'a> {
    columns: Vec<ColumnData<'a>>,
    rows: usize,
}

impl<'a> RowBatch<'a> {
    /// Build from column chunks. All columns must describe `rows` logical
    /// rows (zero-column batches carry the count alone, e.g. `Dual`).
    pub fn new(columns: Vec<ColumnData<'a>>, rows: usize) -> RowBatch<'a> {
        RowBatch { columns, rows }
    }

    /// Build from owned, fully-aligned column vectors.
    pub fn from_columns(columns: Vec<Vec<Value>>) -> RowBatch<'a> {
        let rows = columns.first().map_or(0, Vec::len);
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        RowBatch {
            columns: columns.into_iter().map(ColumnData::owned).collect(),
            rows,
        }
    }

    /// Transpose materialized rows (all of width `width`) into a batch.
    pub fn from_rows(width: usize, rows: Vec<Vec<Value>>) -> RowBatch<'a> {
        let mut columns: Vec<Vec<Value>> =
            (0..width).map(|_| Vec::with_capacity(rows.len())).collect();
        let n = rows.len();
        for row in rows {
            debug_assert_eq!(row.len(), width);
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        RowBatch {
            columns: columns.into_iter().map(ColumnData::owned).collect(),
            rows: n,
        }
    }

    /// Number of logical rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column chunk.
    pub fn column(&self, index: usize) -> &ColumnData<'a> {
        &self.columns[index]
    }

    /// Value at `(column, logical row)`.
    pub fn value(&self, column: usize, row: usize) -> &Value {
        self.columns[column].get(row)
    }

    /// A [`Tuple`] view of one logical row, for expression evaluation.
    pub fn row_view(&self, row: usize) -> BatchRow<'_, 'a> {
        debug_assert!(row < self.rows);
        BatchRow { batch: self, row }
    }

    /// Clone one logical row out of the batch.
    pub fn materialize_row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row).clone()).collect()
    }

    /// Clone every logical row out of the batch.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.materialize_row(i)).collect()
    }

    /// Keep only (and reorder to) the logical rows listed in `keep`.
    /// Zero-copy: the underlying values are shared, selections compose
    /// (computed once per distinct source selection, not per column).
    pub fn select(&self, keep: Vec<u32>) -> RowBatch<'a> {
        debug_assert!(keep.iter().all(|&i| (i as usize) < self.rows));
        let rows = keep.len();
        let keep = Arc::new(keep);
        let mut composed = Vec::new();
        RowBatch {
            columns: self
                .columns
                .iter()
                .map(|c| c.select(&keep, &mut composed))
                .collect(),
            rows,
        }
    }

    /// The standard keep-vector epilogue for streaming row-dropping
    /// operators: `None` when nothing survives, the batch itself when
    /// everything does, a composed selection otherwise.
    pub fn retain(self, keep: Vec<u32>) -> Option<RowBatch<'a>> {
        if keep.is_empty() {
            None
        } else if keep.len() == self.rows {
            Some(self)
        } else {
            Some(self.select(keep))
        }
    }

    /// The contiguous logical sub-range `[start, start + len)`, zero-copy.
    pub fn slice(&self, start: usize, len: usize) -> RowBatch<'a> {
        debug_assert!(start + len <= self.rows);
        self.select((start as u32..(start + len) as u32).collect())
    }

    /// Decompose into column chunks (for operators that splice batches,
    /// e.g. joins gluing probe-side and build-side columns together).
    pub fn into_columns(self) -> Vec<ColumnData<'a>> {
        self.columns
    }
}

/// One logical row inside a [`RowBatch`], usable wherever expression
/// evaluation expects a [`Tuple`].
#[derive(Debug, Clone, Copy)]
pub struct BatchRow<'b, 'a> {
    batch: &'b RowBatch<'a>,
    row: usize,
}

impl Tuple for BatchRow<'_, '_> {
    fn col(&self, index: usize) -> Option<&Value> {
        if index < self.batch.width() {
            Some(self.batch.value(index, self.row))
        } else {
            None
        }
    }
}

/// A [`Tuple`] over a probe-side batch row concatenated with a
/// materialized build-side row — the frame join residuals evaluate in,
/// without assembling the concatenated row.
#[derive(Debug, Clone, Copy)]
pub struct JoinedRow<'b, 'a> {
    probe: BatchRow<'b, 'a>,
    probe_width: usize,
    build: &'b [Value],
}

impl<'b, 'a> JoinedRow<'b, 'a> {
    /// View of `probe_row ++ build_row`.
    pub fn new(probe: BatchRow<'b, 'a>, probe_width: usize, build: &'b [Value]) -> Self {
        JoinedRow {
            probe,
            probe_width,
            build,
        }
    }
}

impl Tuple for JoinedRow<'_, '_> {
    fn col(&self, index: usize) -> Option<&Value> {
        if index < self.probe_width {
            self.probe.col(index)
        } else {
            self.build.get(index - self.probe_width)
        }
    }
}

/// Incremental columnar builder for operator output.
#[derive(Debug)]
pub struct BatchBuilder {
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl BatchBuilder {
    /// An empty builder for `width` columns.
    pub fn new(width: usize) -> BatchBuilder {
        BatchBuilder {
            columns: (0..width).map(|_| Vec::new()).collect(),
            rows: 0,
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row given as an iterator of values.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = Value>) {
        let mut cols = self.columns.iter_mut();
        let mut n = 0;
        for v in row {
            cols.next().expect("row wider than builder").push(v);
            n += 1;
        }
        debug_assert_eq!(n, self.columns.len(), "row narrower than builder");
        self.rows += 1;
    }

    /// Finish into a batch.
    pub fn finish<'a>(self) -> RowBatch<'a> {
        RowBatch::from_columns(self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![i(1), i(10)], vec![i(2), i(20)]];
        let batch = RowBatch::from_rows(2, rows.clone());
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.width(), 2);
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(batch.value(1, 1), &i(20));
    }

    #[test]
    fn selections_compose_without_copying() {
        let col: Vec<Value> = (0..10).map(i).collect();
        let batch = RowBatch::new(vec![ColumnData::borrowed(&col)], 10);
        let evens = batch.select(vec![0, 2, 4, 6, 8]);
        assert_eq!(evens.num_rows(), 5);
        let tail = evens.select(vec![3, 4]);
        assert_eq!(tail.to_rows(), vec![vec![i(6)], vec![i(8)]]);
    }

    #[test]
    fn slice_is_a_contiguous_selection() {
        let batch = RowBatch::from_rows(1, (0..5).map(|v| vec![i(v)]).collect());
        let mid = batch.slice(1, 3);
        assert_eq!(mid.to_rows(), vec![vec![i(1)], vec![i(2)], vec![i(3)]]);
    }

    #[test]
    fn zero_width_batches_carry_row_counts() {
        let dual = RowBatch::new(vec![], 1);
        assert_eq!(dual.num_rows(), 1);
        assert_eq!(dual.to_rows(), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn row_views_are_tuples() {
        use crate::value::Tuple;
        let batch = RowBatch::from_rows(2, vec![vec![i(7), Value::Null]]);
        let row = batch.row_view(0);
        assert_eq!(row.col(0), Some(&i(7)));
        assert_eq!(row.col(1), Some(&Value::Null));
        assert_eq!(row.col(2), None);
    }

    #[test]
    fn joined_row_spans_both_sides() {
        use crate::value::Tuple;
        let batch = RowBatch::from_rows(1, vec![vec![i(1)]]);
        let build = vec![i(2), i(3)];
        let joined = JoinedRow::new(batch.row_view(0), 1, &build);
        assert_eq!(joined.col(0), Some(&i(1)));
        assert_eq!(joined.col(2), Some(&i(3)));
        assert_eq!(joined.col(3), None);
    }

    #[test]
    fn builder_collects_columnar_output() {
        let mut b = BatchBuilder::new(2);
        assert!(b.is_empty());
        b.push_row(vec![i(1), i(2)]);
        b.push_row(vec![i(3), i(4)]);
        assert_eq!(b.len(), 2);
        let batch = b.finish();
        assert_eq!(batch.to_rows(), vec![vec![i(1), i(2)], vec![i(3), i(4)]]);
    }
}
