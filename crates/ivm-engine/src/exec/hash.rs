//! Vectorized hash kernels and the flat open-addressing hash table
//! shared by every hash operator (join build/probe, aggregation group
//! tables, DISTINCT, set operations, the parallel radix partitioner, and
//! the delta-ingest victim map in `ivm-core`).
//!
//! The old hot paths keyed heap-allocated `Vec<Value>` rows into
//! `std::collections::HashMap` — SipHash, one streaming `Hash` call per
//! row, and a `Vec` allocation per key. Here the work is split the way
//! DuckDB/HyPer split it:
//!
//! 1. **Hash kernels** ([`hash_batch_keys`], [`hash_batch_rows`],
//!    [`hash_key_columns`], [`hash_rows_keys`]) hash a whole key-column
//!    set chunk-at-a-time into a `Vec<u64>`: a typed loop per column
//!    (i64/f64/bool/date take one multiply-mix on the scalar bits, text
//!    hashes its bytes, NULL takes a sentinel), combined across columns
//!    with a mixer. A key is hashed exactly once per operator.
//! 2. **[`FlatTable`]**: a `RawTable`-style flat open-addressing table —
//!    power-of-two capacity, linear probing, an 8-bit tag array for early
//!    rejection, and `u32` payloads indexing arena-stored keys/rows. The
//!    table never stores keys; callers compare candidates through a
//!    closure over their own arena (typed column compares, no per-key
//!    allocation). Stored hashes make growth a pure reinsertion pass.
//!
//! Hashes are consistent with the *grouping* equality of
//! [`Value`](crate::value::Value): `NULL` hashes to a constant (groups
//! with `NULL`), and numerically-equal `INTEGER`/`DOUBLE` values hash the
//! same (both hash their `f64` bits), mirroring `Value::hash`. The bit
//! layout is partitioned so the parallel radix partitioner can reuse one
//! hash column: **partition bits are the high bits** (`hash >>
//! part_shift`), the **table index is the low bits** (`hash & mask`), and
//! the tag byte comes from the middle bits — no second hash anywhere.

use crate::exec::batch::RowBatch;
use crate::exec::Row;
use crate::value::Value;

/// Seed every row hash starts from (also the hash of a zero-column row).
const HASH_SEED: u64 = 0x243F_6A88_85A3_08D3;

/// Sentinel mixed in for SQL NULL (NULL groups with NULL).
const NULL_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-type salts keeping differently-typed values apart (numerics share
/// one salt so `INTEGER 3` and `DOUBLE 3.0` hash identically, matching
/// grouping equality).
const BOOL_SALT: u64 = 0xBF58_476D_1CE4_E5B9;
const NUM_SALT: u64 = 0x94D0_49BB_1331_11EB;
const TEXT_SALT: u64 = 0xD6E8_FEB8_6659_FD93;
const DATE_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Finalizer (Murmur3/SplitMix-style): full-avalanche so the low bits
/// (table index), middle bits (tag), and high bits (radix partition) are
/// all usable independently.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Combine a per-column value hash into a row hash (order-sensitive).
#[inline]
fn combine(acc: u64, h: u64) -> u64 {
    mix(acc.rotate_left(23) ^ h)
}

/// FNV-1a over bytes, mixed — the text path of the hash kernels.
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    mix(h ^ TEXT_SALT)
}

/// Hash one value, consistent with grouping equality: equal values (under
/// `Value::total_cmp`) always hash equal.
#[inline]
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => NULL_SALT,
        Value::Boolean(b) => mix(BOOL_SALT ^ u64::from(*b)),
        // Numerics hash their f64 bits so INTEGER 3 == DOUBLE 3.0 holds.
        Value::Integer(i) => mix(NUM_SALT ^ (*i as f64).to_bits()),
        Value::Double(d) => mix(NUM_SALT ^ d.to_bits()),
        Value::Varchar(s) => hash_bytes(s.as_bytes()),
        Value::Date(d) => mix(DATE_SALT ^ (*d as u32 as u64)),
    }
}

/// Hash a materialized row (all columns, NULLs as values).
pub fn hash_row(row: &[Value]) -> u64 {
    hash_value_iter(row.iter())
}

/// Hash an iterator of values as one row key (all values, NULLs as
/// values).
pub fn hash_value_iter<'v>(values: impl Iterator<Item = &'v Value>) -> u64 {
    let mut h = HASH_SEED;
    for v in values {
        h = combine(h, hash_value(v));
    }
    h
}

/// Key hashes for one batch or row set, with NULL-key tracking for join
/// semantics (SQL: a NULL in any key column means the row never matches).
/// The null mask is only allocated when a NULL key actually occurs.
#[derive(Debug)]
pub struct KeyHashes {
    /// One combined hash per row.
    pub hashes: Vec<u64>,
    nulls: Option<Vec<bool>>,
}

impl KeyHashes {
    /// Whether row `r` had a NULL in any key column.
    #[inline]
    pub fn is_null(&self, r: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[r])
    }

    fn mark_null(&mut self, r: usize) {
        self.nulls
            .get_or_insert_with(|| vec![false; self.hashes.len()])[r] = true;
    }

    /// A zeroed hash set for `n` rows, to be filled by
    /// [`splice_from`](KeyHashes::splice_from) (parallel chunked
    /// hashing).
    pub fn with_len(n: usize) -> KeyHashes {
        KeyHashes {
            hashes: vec![0; n],
            nulls: None,
        }
    }

    /// Copy a chunk's hashes (and null marks) in at row `offset`.
    pub fn splice_from(&mut self, offset: usize, chunk: KeyHashes) {
        let len = chunk.hashes.len();
        self.hashes[offset..offset + len].copy_from_slice(&chunk.hashes);
        if let Some(chunk_nulls) = chunk.nulls {
            let total = self.hashes.len();
            let nulls = self.nulls.get_or_insert_with(|| vec![false; total]);
            nulls[offset..offset + len].copy_from_slice(&chunk_nulls);
        }
    }
}

/// Hash the key columns `cols` of a batch chunk-at-a-time: one typed
/// column loop per key column, combined into a single `Vec<u64>`, with
/// NULL keys marked for join semantics.
pub fn hash_batch_keys(batch: &RowBatch<'_>, cols: &[usize]) -> KeyHashes {
    let rows = batch.num_rows();
    let mut out = KeyHashes {
        hashes: vec![HASH_SEED; rows],
        nulls: None,
    };
    for &c in cols {
        let col = batch.column(c);
        let hashes = &mut out.hashes;
        let mut nulls: Vec<usize> = Vec::new();
        col.for_each_value(rows, |r, v| {
            if v.is_null() {
                nulls.push(r);
            }
            hashes[r] = combine(hashes[r], hash_value(v));
        });
        for r in nulls {
            out.mark_null(r);
        }
    }
    out
}

/// Hash every column of a batch into whole-row hashes (NULLs as values) —
/// the DISTINCT/set-operation kernel.
pub fn hash_batch_rows(batch: &RowBatch<'_>) -> Vec<u64> {
    let rows = batch.num_rows();
    let mut hashes = vec![HASH_SEED; rows];
    for c in 0..batch.width() {
        let col = batch.column(c);
        let out = &mut hashes;
        col.for_each_value(rows, |r, v| {
            out[r] = combine(out[r], hash_value(v));
        });
    }
    hashes
}

/// Hash pre-evaluated key columns (e.g. group-key kernels' output) into
/// per-row hashes. NULL group keys are values here (they group together).
pub fn hash_key_columns(cols: &[Vec<Value>], rows: usize) -> Vec<u64> {
    let mut hashes = vec![HASH_SEED; rows];
    for col in cols {
        debug_assert_eq!(col.len(), rows);
        for (h, v) in hashes.iter_mut().zip(col) {
            *h = combine(*h, hash_value(v));
        }
    }
    hashes
}

/// Hash the key columns of materialized rows (join build sides), marking
/// NULL keys.
pub fn hash_rows_keys(rows: &[Row], keys: &[usize]) -> KeyHashes {
    let mut out = KeyHashes {
        hashes: vec![HASH_SEED; rows.len()],
        nulls: None,
    };
    for (r, row) in rows.iter().enumerate() {
        let mut h = HASH_SEED;
        let mut null = false;
        for &k in keys {
            let v = &row[k];
            null |= v.is_null();
            h = combine(h, hash_value(v));
        }
        out.hashes[r] = h;
        if null {
            out.mark_null(r);
        }
    }
    out
}

/// Tag byte for a hash: middle bits (32..39), so it stays discriminating
/// inside a radix partition (whose rows share the *high* bits) and across
/// a probe run (which walks the *low* bits). `0x80` marks occupancy —
/// zero always means empty.
#[inline]
fn tag_of(hash: u64) -> u8 {
    0x80 | ((hash >> 32) as u8 & 0x7F)
}

const EMPTY_TAG: u8 = 0;

/// A flat open-addressing hash table: power-of-two capacity, linear
/// probing, an 8-bit tag array for early rejection, and `u32` payloads
/// pointing into caller-owned arenas.
///
/// The table stores `(tag, hash, payload)` per slot and never the keys
/// themselves: lookups pass an equality closure over the payload, so key
/// storage, comparison, and chaining stay in the operator's arena (build
/// rows, group-key vectors, …) with no per-key allocation. There is no
/// deletion (none of the engine's hash operators delete), which keeps
/// probing tombstone-free.
#[derive(Debug, Default, Clone)]
pub struct FlatTable {
    tags: Vec<u8>,
    hashes: Vec<u64>,
    payloads: Vec<u32>,
    /// capacity - 1; capacity is a power of two (0 before first insert).
    mask: usize,
    len: usize,
    /// Inserts left before the next doubling (7/8 load factor).
    growth_left: usize,
}

impl FlatTable {
    /// An empty table; allocates on first insert.
    pub fn new() -> FlatTable {
        FlatTable::default()
    }

    /// A table pre-sized so `n` inserts never rehash — size from exact
    /// input counts wherever they are known.
    pub fn with_capacity(n: usize) -> FlatTable {
        let mut t = FlatTable::default();
        if n > 0 {
            t.resize_to(capacity_for(n));
        }
        t
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity (0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Find the payload of the entry with this hash whose arena key
    /// satisfies `eq`. The tag byte rejects most non-matching slots
    /// before the full hash (let alone the key) is compared.
    #[inline]
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let tag = tag_of(hash);
        let mut i = (hash as usize) & self.mask;
        loop {
            let t = self.tags[i];
            if t == EMPTY_TAG {
                return None;
            }
            if t == tag && self.hashes[i] == hash && eq(self.payloads[i]) {
                return Some(self.payloads[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Like [`find`](FlatTable::find), but yields a mutable payload slot —
    /// join builds use this to prepend chain heads in place.
    #[inline]
    pub fn find_mut(&mut self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<&mut u32> {
        if self.len == 0 {
            return None;
        }
        let tag = tag_of(hash);
        let mut i = (hash as usize) & self.mask;
        loop {
            let t = self.tags[i];
            if t == EMPTY_TAG {
                return None;
            }
            if t == tag && self.hashes[i] == hash && eq(self.payloads[i]) {
                return Some(&mut self.payloads[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert an entry known to be absent (callers always
    /// [`find`](FlatTable::find) first). Grows by doubling when the 7/8
    /// load factor is hit; growth reinserts stored hashes — keys are
    /// never re-hashed or touched.
    pub fn insert(&mut self, hash: u64, payload: u32) {
        if self.growth_left == 0 {
            let cap = if self.tags.is_empty() {
                8
            } else {
                self.tags.len() * 2
            };
            self.resize_to(cap);
        }
        self.insert_slot(hash, payload);
        self.len += 1;
        self.growth_left -= 1;
    }

    #[inline]
    fn insert_slot(&mut self, hash: u64, payload: u32) {
        let mut i = (hash as usize) & self.mask;
        while self.tags[i] != EMPTY_TAG {
            i = (i + 1) & self.mask;
        }
        self.tags[i] = tag_of(hash);
        self.hashes[i] = hash;
        self.payloads[i] = payload;
    }

    fn resize_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        let old_tags = std::mem::replace(&mut self.tags, vec![EMPTY_TAG; cap]);
        let old_hashes = std::mem::replace(&mut self.hashes, vec![0; cap]);
        let old_payloads = std::mem::replace(&mut self.payloads, vec![0; cap]);
        self.mask = cap - 1;
        self.growth_left = cap - cap / 8 - self.len;
        for ((t, h), p) in old_tags.iter().zip(old_hashes).zip(old_payloads) {
            if *t != EMPTY_TAG {
                self.insert_slot(h, p);
            }
        }
    }
}

/// Capacity (power of two) at which `n` entries stay under the 7/8 load
/// factor.
fn capacity_for(n: usize) -> usize {
    let needed = n + n.div_ceil(7); // ceil(n * 8/7)
    needed.next_power_of_two().max(8)
}

/// Prepend entry `i` onto its equal-key chain in `table`: the chain head
/// is found by `hash` + `eq`; when one exists, `set_next(old_head)` links
/// `i` in front of it (the caller owns the chain array), otherwise `i`
/// starts a new chain. This is the one chain-building step shared by the
/// serial join build, the partitioned parallel build, and the
/// delta-ingest victim index — prepending over a reverse scan yields
/// chains that iterate in ascending entry order.
pub fn chain_prepend(
    table: &mut FlatTable,
    hash: u64,
    i: u32,
    eq: impl FnMut(u32) -> bool,
    set_next: impl FnOnce(u32),
) {
    match table.find_mut(hash, eq) {
        Some(head) => {
            set_next(*head);
            *head = i;
        }
        None => table.insert(hash, i),
    }
}

/// A set of materialized rows over a [`FlatTable`] — the DISTINCT /
/// set-operation "seen" structure (rows arena + flat index, no per-row
/// `HashMap` key allocation).
#[derive(Debug, Default)]
pub struct RowSet {
    table: FlatTable,
    rows: Vec<Row>,
}

impl RowSet {
    /// An empty set.
    pub fn new() -> RowSet {
        RowSet::default()
    }

    /// Insert batch row `r` (pre-hashed as `hash`); `true` when it was
    /// not yet present. The row is only materialized on first sight.
    pub fn insert_batch_row(&mut self, hash: u64, batch: &RowBatch<'_>, r: usize) -> bool {
        let rows = &self.rows;
        let width = batch.width();
        let present = self
            .table
            .find(hash, |p| {
                let seen = &rows[p as usize];
                (0..width).all(|c| batch.value(c, r) == &seen[c])
            })
            .is_some();
        if present {
            return false;
        }
        let idx = self.rows.len() as u32;
        self.rows.push(batch.materialize_row(r));
        self.table.insert(hash, idx);
        true
    }

    /// Insert a materialized row; `true` when it was not yet present.
    pub fn insert_row(&mut self, hash: u64, row: Row) -> bool {
        let rows = &self.rows;
        if self.table.find(hash, |p| rows[p as usize] == row).is_some() {
            return false;
        }
        let idx = self.rows.len() as u32;
        self.rows.push(row);
        self.table.insert(hash, idx);
        true
    }
}

/// A multiplicity map over whole rows (arena + flat index) — the
/// EXCEPT/INTERSECT right-side counter.
#[derive(Debug, Default)]
pub struct RowCounter {
    table: FlatTable,
    rows: Vec<Row>,
    counts: Vec<usize>,
}

impl RowCounter {
    /// An empty counter.
    pub fn new() -> RowCounter {
        RowCounter::default()
    }

    fn index_of(&self, hash: u64, batch: &RowBatch<'_>, r: usize) -> Option<usize> {
        let rows = &self.rows;
        let width = batch.width();
        self.table
            .find(hash, |p| {
                let seen = &rows[p as usize];
                (0..width).all(|c| batch.value(c, r) == &seen[c])
            })
            .map(|p| p as usize)
    }

    /// Bump the multiplicity of batch row `r` (pre-hashed as `hash`).
    pub fn add_batch_row(&mut self, hash: u64, batch: &RowBatch<'_>, r: usize) {
        match self.index_of(hash, batch, r) {
            Some(i) => self.counts[i] += 1,
            None => {
                let idx = self.rows.len() as u32;
                self.rows.push(batch.materialize_row(r));
                self.counts.push(1);
                self.table.insert(hash, idx);
            }
        }
    }

    /// Whether the row occurs at all (set semantics; multiplicities of 0
    /// still count as present, matching the consumed-map contract of
    /// EXCEPT ALL).
    pub fn contains_batch_row(&self, hash: u64, batch: &RowBatch<'_>, r: usize) -> bool {
        self.index_of(hash, batch, r).is_some()
    }

    /// Mutable multiplicity of the row, when present (bag semantics
    /// consume one per match).
    pub fn count_mut(&mut self, hash: u64, batch: &RowBatch<'_>, r: usize) -> Option<&mut usize> {
        self.index_of(hash, batch, r).map(|i| &mut self.counts[i])
    }

    fn index_of_row(&self, hash: u64, row: &[Value]) -> Option<usize> {
        let rows = &self.rows;
        self.table
            .find(hash, |p| rows[p as usize] == row)
            .map(|p| p as usize)
    }

    /// Bump the multiplicity of an already-materialized row (spill-path
    /// counterpart of [`add_batch_row`](RowCounter::add_batch_row)).
    pub fn add_row(&mut self, hash: u64, row: Row) {
        match self.index_of_row(hash, &row) {
            Some(i) => self.counts[i] += 1,
            None => {
                let idx = self.rows.len() as u32;
                self.rows.push(row);
                self.counts.push(1);
                self.table.insert(hash, idx);
            }
        }
    }

    /// Whether the materialized row occurs at all (set semantics).
    pub fn contains_row(&self, hash: u64, row: &[Value]) -> bool {
        self.index_of_row(hash, row).is_some()
    }

    /// Mutable multiplicity of the materialized row, when present.
    pub fn count_mut_row(&mut self, hash: u64, row: &[Value]) -> Option<&mut usize> {
        self.index_of_row(hash, row).map(|i| &mut self.counts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    #[test]
    fn grouping_equal_values_hash_equal() {
        assert_eq!(hash_value(&i(3)), hash_value(&Value::Double(3.0)));
        assert_ne!(hash_value(&i(3)), hash_value(&Value::Double(3.5)));
        assert_eq!(hash_value(&Value::Null), hash_value(&Value::Null));
        // Date and Integer never group-compare equal; keep them apart.
        assert_ne!(hash_value(&Value::Date(3)), hash_value(&i(3)));
    }

    #[test]
    fn batch_key_hashes_match_row_hashes() {
        let rows = vec![
            vec![i(1), Value::from("a")],
            vec![Value::Null, Value::from("b")],
            vec![i(3), Value::Null],
        ];
        let batch = RowBatch::from_rows(2, rows.clone());
        let by_batch = hash_batch_keys(&batch, &[0, 1]);
        let by_rows = hash_rows_keys(&rows, &[0, 1]);
        assert_eq!(by_batch.hashes, by_rows.hashes);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(by_batch.is_null(r), by_rows.is_null(r));
            assert_eq!(by_batch.hashes[r], hash_row(row));
        }
        assert!(by_batch.is_null(1) && by_batch.is_null(2) && !by_batch.is_null(0));
        // Whole-row hashing agrees with the key kernels on full keys.
        assert_eq!(hash_batch_rows(&batch), by_batch.hashes);
    }

    #[test]
    fn column_order_matters() {
        assert_ne!(
            hash_row(&[i(1), i(2)]),
            hash_row(&[i(2), i(1)]),
            "row hashes must be order-sensitive"
        );
    }

    #[test]
    fn flat_table_find_and_grow() {
        // Keys are the payloads themselves (arena = identity).
        let mut t = FlatTable::new();
        assert_eq!(t.find(42, |_| true), None);
        for k in 0u32..5000 {
            let h = hash_value(&i(i64::from(k)));
            assert_eq!(t.find(h, |p| p == k), None);
            t.insert(h, k);
        }
        assert_eq!(t.len(), 5000);
        for k in 0u32..5000 {
            let h = hash_value(&i(i64::from(k)));
            assert_eq!(t.find(h, |p| p == k), Some(k));
        }
        assert_eq!(t.find(hash_value(&i(999_999)), |_| true), None);
    }

    #[test]
    fn with_capacity_never_rehashes() {
        for n in [0usize, 1, 7, 8, 1023, 1024, 1025] {
            let mut t = FlatTable::with_capacity(n);
            let cap = t.capacity();
            for k in 0..n as u32 {
                t.insert(hash_value(&i(i64::from(k))), k);
            }
            if n > 0 {
                assert_eq!(
                    t.capacity(),
                    cap,
                    "with_capacity({n}) rehashed during {n} inserts"
                );
            } else {
                assert_eq!(cap, 0, "with_capacity(0) must not allocate");
            }
        }
    }

    #[test]
    fn colliding_hashes_resolve_by_eq() {
        // Force every entry onto one hash: probing + eq must disambiguate.
        let mut t = FlatTable::new();
        for k in 0u32..100 {
            t.insert(0xDEAD_BEEF, k);
        }
        // find returns the entry whose payload the closure accepts.
        for k in 0u32..100 {
            assert_eq!(t.find(0xDEAD_BEEF, |p| p == k), Some(k));
        }
        assert_eq!(t.find(0xDEAD_BEEF, |p| p == 100), None);
        // A different hash that maps to the same slot region still misses.
        assert_eq!(t.find(!0xDEAD_BEEF, |_| true), None);
    }

    #[test]
    fn find_mut_updates_payload_in_place() {
        let mut t = FlatTable::new();
        t.insert(7, 1);
        *t.find_mut(7, |_| true).unwrap() = 9;
        assert_eq!(t.find(7, |_| true), Some(9));
        assert!(t.find_mut(8, |_| true).is_none());
    }

    #[test]
    fn row_set_and_counter() {
        let batch = RowBatch::from_rows(1, vec![vec![i(1)], vec![i(2)], vec![i(1)]]);
        let hashes = hash_batch_rows(&batch);
        let mut set = RowSet::new();
        assert!(set.insert_batch_row(hashes[0], &batch, 0));
        assert!(set.insert_batch_row(hashes[1], &batch, 1));
        assert!(!set.insert_batch_row(hashes[2], &batch, 2));

        let mut counts = RowCounter::new();
        for (r, &hash) in hashes.iter().enumerate() {
            counts.add_batch_row(hash, &batch, r);
        }
        assert_eq!(counts.count_mut(hashes[0], &batch, 0), Some(&mut 2));
        assert_eq!(counts.count_mut(hashes[1], &batch, 1), Some(&mut 1));
        assert!(counts.contains_batch_row(hashes[0], &batch, 2));
    }
}
