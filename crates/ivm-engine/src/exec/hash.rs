//! Vectorized hash kernels and the flat open-addressing hash table
//! shared by every hash operator (join build/probe, aggregation group
//! tables, DISTINCT, set operations, the parallel radix partitioner, and
//! the delta-ingest victim map in `ivm-core`).
//!
//! The old hot paths keyed heap-allocated `Vec<Value>` rows into
//! `std::collections::HashMap` — SipHash, one streaming `Hash` call per
//! row, and a `Vec` allocation per key. Here the work is split the way
//! DuckDB/HyPer split it:
//!
//! 1. **Hash kernels** ([`hash_batch_keys`], [`hash_batch_rows`],
//!    [`hash_key_columns`], [`hash_rows_keys`]) hash a whole key-column
//!    set chunk-at-a-time into a `Vec<u64>`: a typed loop per column
//!    (i64/f64/bool/date take one multiply-mix on the scalar bits, text
//!    hashes its bytes, NULL takes a sentinel), combined across columns
//!    with a mixer. A key is hashed exactly once per operator.
//! 2. **[`FlatTable`]**: a `RawTable`-style flat open-addressing table —
//!    power-of-two capacity, an 8-bit tag array for early rejection, and
//!    `u32` payloads indexing arena-stored keys/rows. Probing is
//!    **group-wise**, hashbrown-style: 16 tag bytes are scanned per step —
//!    via SSE2 compare+movemask on x86_64, via SWAR on two `u64` words
//!    everywhere else, or byte-at-a-time when `OPENIVM_NO_SIMD=1` forces
//!    the scalar path (see [`ProbeMode`]). All three scans visit identical
//!    slot sequences, so parity tests can compare them on one table. The
//!    table never stores keys; callers compare candidates through a
//!    closure over their own arena (typed column compares, no per-key
//!    allocation). Stored hashes make growth a pure reinsertion pass.
//! 3. **Typed key arenas** ([`crate::exec::typed`]): the arenas behind
//!    those closures pack keys into fixed-width `(tag, word)` columns, so
//!    the compare itself is branch-free — [`RowSet`] and [`RowCounter`]
//!    below store their rows that way, as do the join and group tables.
//!
//! Hashes are consistent with the *grouping* equality of
//! [`Value`](crate::value::Value): `NULL` hashes to a constant (groups
//! with `NULL`), and numerically-equal `INTEGER`/`DOUBLE` values hash the
//! same (both hash their `f64` bits), mirroring `Value::hash`. The bit
//! layout is partitioned so the parallel radix partitioner can reuse one
//! hash column: **partition bits are the high bits** (`hash >>
//! part_shift`), the **table index is the low bits** (`hash & mask`), and
//! the tag byte comes from the middle bits — no second hash anywhere.

use crate::exec::batch::RowBatch;
use crate::exec::typed::{note_fallback_rows, note_typed_rows, EncodedChunk, TupleStore};
use crate::exec::Row;
use crate::value::Value;

/// Seed every row hash starts from (also the hash of a zero-column row).
/// `pub(crate)` so the fused typed kernels ([`crate::exec::typed`]) start
/// their combine chains from the same state.
pub(crate) const HASH_SEED: u64 = 0x243F_6A88_85A3_08D3;

/// Sentinel mixed in for SQL NULL (NULL groups with NULL).
pub(crate) const NULL_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-type salts keeping differently-typed values apart (numerics share
/// one salt so `INTEGER 3` and `DOUBLE 3.0` hash identically, matching
/// grouping equality). The numeric/bool/date salts are `pub(crate)`: the
/// typed encoder's packed word *is* the hashed scalar for those types, so
/// the fused kernels derive `hash_value`-identical hashes from it.
pub(crate) const BOOL_SALT: u64 = 0xBF58_476D_1CE4_E5B9;
pub(crate) const NUM_SALT: u64 = 0x94D0_49BB_1331_11EB;
const TEXT_SALT: u64 = 0xD6E8_FEB8_6659_FD93;
pub(crate) const DATE_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Finalizer (Murmur3/SplitMix-style): full-avalanche so the low bits
/// (table index), middle bits (tag), and high bits (radix partition) are
/// all usable independently.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Combine a per-column value hash into a row hash (order-sensitive).
#[inline]
pub(crate) fn combine(acc: u64, h: u64) -> u64 {
    mix(acc.rotate_left(23) ^ h)
}

/// FNV-1a over bytes, mixed — the text path of the hash kernels.
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    mix(h ^ TEXT_SALT)
}

/// Hash a string key — the text kernel on its own, used by the string
/// interner behind the typed key arenas.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Hash one value, consistent with grouping equality: equal values (under
/// `Value::total_cmp`) always hash equal.
#[inline]
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => NULL_SALT,
        Value::Boolean(b) => mix(BOOL_SALT ^ u64::from(*b)),
        // Numerics hash their f64 bits so INTEGER 3 == DOUBLE 3.0 holds.
        Value::Integer(i) => mix(NUM_SALT ^ (*i as f64).to_bits()),
        Value::Double(d) => mix(NUM_SALT ^ d.to_bits()),
        Value::Varchar(s) => hash_bytes(s.as_bytes()),
        Value::Date(d) => mix(DATE_SALT ^ (*d as u32 as u64)),
    }
}

/// Hash a materialized row (all columns, NULLs as values).
pub fn hash_row(row: &[Value]) -> u64 {
    hash_value_iter(row.iter())
}

/// Hash an iterator of values as one row key (all values, NULLs as
/// values).
pub fn hash_value_iter<'v>(values: impl Iterator<Item = &'v Value>) -> u64 {
    let mut h = HASH_SEED;
    for v in values {
        h = combine(h, hash_value(v));
    }
    h
}

/// Key hashes for one batch or row set, with NULL-key tracking for join
/// semantics (SQL: a NULL in any key column means the row never matches).
/// The null mask is only allocated when a NULL key actually occurs.
#[derive(Debug)]
pub struct KeyHashes {
    /// One combined hash per row.
    pub hashes: Vec<u64>,
    nulls: Option<Vec<bool>>,
}

impl KeyHashes {
    /// Whether row `r` had a NULL in any key column.
    #[inline]
    pub fn is_null(&self, r: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[r])
    }

    pub(crate) fn mark_null(&mut self, r: usize) {
        self.nulls
            .get_or_insert_with(|| vec![false; self.hashes.len()])[r] = true;
    }

    /// Hashes pre-seeded with [`HASH_SEED`] for `n` rows — the start of
    /// every per-row combine chain, filled by the fused typed kernels.
    pub(crate) fn seeded(n: usize) -> KeyHashes {
        KeyHashes {
            hashes: vec![HASH_SEED; n],
            nulls: None,
        }
    }

    /// A zeroed hash set for `n` rows, to be filled by
    /// [`splice_from`](KeyHashes::splice_from) (parallel chunked
    /// hashing).
    pub fn with_len(n: usize) -> KeyHashes {
        KeyHashes {
            hashes: vec![0; n],
            nulls: None,
        }
    }

    /// Copy a chunk's hashes (and null marks) in at row `offset`.
    pub fn splice_from(&mut self, offset: usize, chunk: KeyHashes) {
        let len = chunk.hashes.len();
        self.hashes[offset..offset + len].copy_from_slice(&chunk.hashes);
        if let Some(chunk_nulls) = chunk.nulls {
            let total = self.hashes.len();
            let nulls = self.nulls.get_or_insert_with(|| vec![false; total]);
            nulls[offset..offset + len].copy_from_slice(&chunk_nulls);
        }
    }
}

/// Hash the key columns `cols` of a batch chunk-at-a-time: one typed
/// column loop per key column, combined into a single `Vec<u64>`, with
/// NULL keys marked for join semantics.
pub fn hash_batch_keys(batch: &RowBatch<'_>, cols: &[usize]) -> KeyHashes {
    let rows = batch.num_rows();
    let mut out = KeyHashes {
        hashes: vec![HASH_SEED; rows],
        nulls: None,
    };
    for &c in cols {
        let col = batch.column(c);
        let hashes = &mut out.hashes;
        let mut nulls: Vec<usize> = Vec::new();
        col.for_each_value(rows, |r, v| {
            if v.is_null() {
                nulls.push(r);
            }
            hashes[r] = combine(hashes[r], hash_value(v));
        });
        for r in nulls {
            out.mark_null(r);
        }
    }
    out
}

/// Hash every column of a batch into whole-row hashes (NULLs as values) —
/// the DISTINCT/set-operation kernel.
pub fn hash_batch_rows(batch: &RowBatch<'_>) -> Vec<u64> {
    let rows = batch.num_rows();
    let mut hashes = vec![HASH_SEED; rows];
    for c in 0..batch.width() {
        let col = batch.column(c);
        let out = &mut hashes;
        col.for_each_value(rows, |r, v| {
            out[r] = combine(out[r], hash_value(v));
        });
    }
    hashes
}

/// Hash pre-evaluated key columns (e.g. group-key kernels' output) into
/// per-row hashes. NULL group keys are values here (they group together).
pub fn hash_key_columns(cols: &[Vec<Value>], rows: usize) -> Vec<u64> {
    let mut hashes = vec![HASH_SEED; rows];
    for col in cols {
        debug_assert_eq!(col.len(), rows);
        for (h, v) in hashes.iter_mut().zip(col) {
            *h = combine(*h, hash_value(v));
        }
    }
    hashes
}

/// Hash the key columns of materialized rows (join build sides), marking
/// NULL keys.
pub fn hash_rows_keys(rows: &[Row], keys: &[usize]) -> KeyHashes {
    let mut out = KeyHashes {
        hashes: vec![HASH_SEED; rows.len()],
        nulls: None,
    };
    for (r, row) in rows.iter().enumerate() {
        let mut h = HASH_SEED;
        let mut null = false;
        for &k in keys {
            let v = &row[k];
            null |= v.is_null();
            h = combine(h, hash_value(v));
        }
        out.hashes[r] = h;
        if null {
            out.mark_null(r);
        }
    }
    out
}

/// Tag byte for a hash: middle bits (32..39), so it stays discriminating
/// inside a radix partition (whose rows share the *high* bits) and across
/// a probe run (which walks the *low* bits). `0x80` marks occupancy —
/// zero always means empty, and the occupancy bit is what lets the SWAR
/// empty scan reduce to "high bit clear".
#[inline]
fn tag_of(hash: u64) -> u8 {
    0x80 | ((hash >> 32) as u8 & 0x7F)
}

const EMPTY_TAG: u8 = 0;

/// Tag bytes scanned per probe step. Constant across all probe modes so
/// scalar, SWAR, and SSE2 probes visit identical slot sequences (the
/// parity guarantee `OPENIVM_NO_SIMD=1` tests rely on).
const GROUP: usize = 16;

/// Smallest table capacity: one full probe group.
const MIN_CAP: usize = GROUP;

/// How a [`FlatTable`] scans its 16-byte tag groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// Byte-at-a-time (forced by `OPENIVM_NO_SIMD=1`; the parity oracle).
    Scalar,
    /// Two `u64` SWAR words per group — stable Rust, every target.
    Swar,
    /// One `_mm_cmpeq_epi8`/`_mm_movemask_epi8` per group (x86_64 only;
    /// selecting it elsewhere silently runs the SWAR scan).
    Sse2,
}

/// Environment variable forcing the scalar probe path (`1` = scalar;
/// unset/empty/`0` = pick the fastest for the target).
pub const NO_SIMD_ENV: &str = "OPENIVM_NO_SIMD";

fn default_probe_mode() -> ProbeMode {
    if cfg!(target_arch = "x86_64") {
        ProbeMode::Sse2
    } else {
        ProbeMode::Swar
    }
}

/// The process-wide probe mode: SSE2 on x86_64, SWAR elsewhere, scalar
/// when `OPENIVM_NO_SIMD=1`. Read once; invalid settings abort loudly
/// rather than silently probing a different way than the user asked.
pub fn probe_mode() -> ProbeMode {
    use std::sync::OnceLock;
    static MODE: OnceLock<ProbeMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var(NO_SIMD_ENV) {
        Err(_) => default_probe_mode(),
        Ok(raw) => match raw.trim() {
            "" | "0" => default_probe_mode(),
            "1" => ProbeMode::Scalar,
            other => panic!(
                "invalid {NO_SIMD_ENV}={other:?}: expected \"1\" (force scalar tag \
                 probing) or \"0\"/unset (use SSE2/SWAR)"
            ),
        },
    })
}

const SWAR_ONES: u64 = 0x0101_0101_0101_0101;
const SWAR_HIGHS: u64 = 0x8080_8080_8080_8080;

/// High bit set in each byte of `w` that equals `b` — the exact zero-byte
/// detector `(m - ONES) & !m & HIGHS` applied to `m = w ^ splat(b)` (the
/// three-term form has no false positives).
#[inline]
fn swar_eq(w: u64, b: u8) -> u64 {
    let m = w ^ SWAR_ONES.wrapping_mul(u64::from(b));
    m.wrapping_sub(SWAR_ONES) & !m & SWAR_HIGHS
}

/// Collapse per-byte high bits into an 8-bit mask (movemask emulation):
/// bit `8i+7` of `x` lands on bit `56+i` of the product, and no two
/// contributions collide, so the multiply is carry-free and exact.
#[inline]
fn pack_high_bits(x: u64) -> u32 {
    (x.wrapping_mul(0x0002_0408_1020_4081) >> 56) as u32
}

#[inline]
fn swar_load(tags: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(tags[at..at + 8].try_into().unwrap())
}

#[inline]
fn swar_masks(tags: &[u8], start: usize, tag: u8) -> (u32, u32) {
    let lo = swar_load(tags, start);
    let hi = swar_load(tags, start + 8);
    let eq = pack_high_bits(swar_eq(lo, tag)) | (pack_high_bits(swar_eq(hi, tag)) << 8);
    // Occupied tags always carry the 0x80 bit, so "high bit clear" is an
    // exact empty test.
    let empty = pack_high_bits(!lo & SWAR_HIGHS) | (pack_high_bits(!hi & SWAR_HIGHS) << 8);
    (eq, empty)
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn sse2_masks(tags: &[u8], start: usize, tag: u8) -> (u32, u32) {
    use std::arch::x86_64::{
        _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8, _mm_setzero_si128,
    };
    debug_assert!(start + GROUP <= tags.len());
    // SAFETY: the mirrored tag tail guarantees `start + 16 <= tags.len()`
    // for every probe start, and SSE2 is part of the x86_64 baseline, so
    // the unaligned load and compare are always available.
    unsafe {
        let g = _mm_loadu_si128(tags.as_ptr().add(start).cast());
        let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(g, _mm_set1_epi8(tag as i8))) as u32;
        let empty = _mm_movemask_epi8(_mm_cmpeq_epi8(g, _mm_setzero_si128())) as u32;
        (eq, empty)
    }
}

/// `(match_mask, empty_mask)` over the 16 tag bytes at `start`: bit `k`
/// of the match mask marks `tags[start+k] == tag`, bit `k` of the empty
/// mask marks an empty slot. All modes return identical masks.
#[inline]
fn group_masks(tags: &[u8], start: usize, tag: u8, mode: ProbeMode) -> (u32, u32) {
    match mode {
        ProbeMode::Scalar => {
            let mut eq = 0u32;
            let mut empty = 0u32;
            for k in 0..GROUP {
                let t = tags[start + k];
                eq |= u32::from(t == tag) << k;
                empty |= u32::from(t == EMPTY_TAG) << k;
            }
            (eq, empty)
        }
        ProbeMode::Swar => swar_masks(tags, start, tag),
        ProbeMode::Sse2 => {
            #[cfg(target_arch = "x86_64")]
            {
                sse2_masks(tags, start, tag)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                swar_masks(tags, start, tag)
            }
        }
    }
}

/// A flat open-addressing hash table: power-of-two capacity, group-wise
/// probing over an 8-bit tag array, and `u32` payloads pointing into
/// caller-owned arenas.
///
/// Probing scans 16 tag bytes per step starting at the hash's home slot
/// (unaligned; the tag array keeps a 15-byte mirror of its head past the
/// end so group loads never wrap). Within a group, tag matches are
/// verified against the stored hash and then the caller's equality
/// closure; a group containing an empty slot ends the probe. Inserts take
/// the first empty slot in the same group sequence, which together with
/// "no deletion" (none of the engine's hash operators delete) makes the
/// early exit sound: an entry is never stored past the first empty slot
/// of its own probe sequence.
///
/// The table stores `(tag, hash, payload)` per slot and never the keys
/// themselves: lookups pass an equality closure over the payload, so key
/// storage, comparison, and chaining stay in the operator's arena (typed
/// key arenas, build rows, …) with no per-key allocation.
#[derive(Debug, Default, Clone)]
pub struct FlatTable {
    /// `capacity + GROUP - 1` bytes: the first `GROUP - 1` bytes are
    /// mirrored past the end so a 16-byte group load at any slot index
    /// stays in bounds.
    tags: Vec<u8>,
    hashes: Vec<u64>,
    payloads: Vec<u32>,
    /// capacity - 1; capacity is a power of two (0 before first insert).
    mask: usize,
    len: usize,
    /// Inserts left before the next doubling (7/8 load factor).
    growth_left: usize,
}

impl FlatTable {
    /// An empty table; allocates on first insert.
    pub fn new() -> FlatTable {
        FlatTable::default()
    }

    /// A table pre-sized so `n` inserts never rehash — size from exact
    /// input counts wherever they are known.
    pub fn with_capacity(n: usize) -> FlatTable {
        let mut t = FlatTable::default();
        if n > 0 {
            t.resize_to(capacity_for(n));
        }
        t
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity (0 before the first insert).
    pub fn capacity(&self) -> usize {
        if self.tags.is_empty() {
            0
        } else {
            self.mask + 1
        }
    }

    /// Slot index of the entry with this hash whose arena key satisfies
    /// `eq`, probing group-wise in `mode`.
    #[inline]
    fn find_slot(
        &self,
        hash: u64,
        mut eq: impl FnMut(u32) -> bool,
        mode: ProbeMode,
    ) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let tag = tag_of(hash);
        let mut i = (hash as usize) & self.mask;
        // Home-slot fast path: most probes resolve at the hash's own slot
        // (hit there, or empty there on a miss), so test it before firing
        // up a group scan. Entries are never stored past the first empty
        // slot of their probe sequence (no deletion + first-empty
        // placement), so "home slot empty" is a definitive miss — the
        // group loop below would conclude the same from its empty mask.
        let t = self.tags[i];
        if t == tag && self.hashes[i] == hash && eq(self.payloads[i]) {
            return Some(i);
        }
        if t == EMPTY_TAG {
            return None;
        }
        loop {
            let (mut matches, empties) = group_masks(&self.tags, i, tag, mode);
            while matches != 0 {
                // Group loads may run into the mirrored tail; `& mask`
                // folds those candidates back onto their real slots.
                let j = (i + matches.trailing_zeros() as usize) & self.mask;
                if self.hashes[j] == hash && eq(self.payloads[j]) {
                    return Some(j);
                }
                matches &= matches - 1;
            }
            if empties != 0 {
                return None;
            }
            i = (i + GROUP) & self.mask;
        }
    }

    /// Find the payload of the entry with this hash whose arena key
    /// satisfies `eq`. The tag group rejects most non-matching slots
    /// 16 at a time before the full hash (let alone the key) is compared.
    #[inline]
    pub fn find(&self, hash: u64, eq: impl FnMut(u32) -> bool) -> Option<u32> {
        self.find_in_mode(hash, eq, probe_mode())
    }

    /// [`find`](FlatTable::find) with an explicit probe mode — parity
    /// tests run the SWAR and SSE2 scans against the scalar one on the
    /// same table.
    #[doc(hidden)]
    #[inline]
    pub fn find_in_mode(
        &self,
        hash: u64,
        eq: impl FnMut(u32) -> bool,
        mode: ProbeMode,
    ) -> Option<u32> {
        self.find_slot(hash, eq, mode).map(|j| self.payloads[j])
    }

    /// Like [`find`](FlatTable::find), but yields a mutable payload slot —
    /// join builds use this to prepend chain heads in place.
    #[inline]
    pub fn find_mut(&mut self, hash: u64, eq: impl FnMut(u32) -> bool) -> Option<&mut u32> {
        let j = self.find_slot(hash, eq, probe_mode())?;
        Some(&mut self.payloads[j])
    }

    /// Insert an entry known to be absent (callers always
    /// [`find`](FlatTable::find) first). Grows by doubling when the 7/8
    /// load factor is hit; growth reinserts stored hashes — keys are
    /// never re-hashed or touched.
    pub fn insert(&mut self, hash: u64, payload: u32) {
        if self.growth_left == 0 {
            let cap = if self.capacity() == 0 {
                MIN_CAP
            } else {
                self.capacity() * 2
            };
            self.resize_to(cap);
        }
        self.insert_slot(hash, payload);
        self.len += 1;
        self.growth_left -= 1;
    }

    /// Place an entry into the first empty slot of its group sequence.
    #[inline]
    fn insert_slot(&mut self, hash: u64, payload: u32) {
        let mode = probe_mode();
        let tag = tag_of(hash);
        let mut i = (hash as usize) & self.mask;
        loop {
            let (_, empties) = group_masks(&self.tags, i, tag, mode);
            if empties != 0 {
                let j = (i + empties.trailing_zeros() as usize) & self.mask;
                self.set_tag(j, tag);
                self.hashes[j] = hash;
                self.payloads[j] = payload;
                return;
            }
            i = (i + GROUP) & self.mask;
        }
    }

    /// Write a tag byte, keeping the mirrored tail in sync so unaligned
    /// group loads near the end of the table see current bytes.
    #[inline]
    fn set_tag(&mut self, j: usize, tag: u8) {
        self.tags[j] = tag;
        if j < GROUP - 1 {
            let cap = self.mask + 1;
            self.tags[cap + j] = tag;
        }
    }

    fn resize_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_CAP);
        let old_cap = self.capacity();
        let old_tags = std::mem::replace(&mut self.tags, vec![EMPTY_TAG; cap + GROUP - 1]);
        let old_hashes = std::mem::replace(&mut self.hashes, vec![0; cap]);
        let old_payloads = std::mem::replace(&mut self.payloads, vec![0; cap]);
        self.mask = cap - 1;
        self.growth_left = cap - cap / 8 - self.len;
        // Skip the mirror bytes of the old tag array; slots only.
        for ((t, h), p) in old_tags
            .iter()
            .take(old_cap)
            .zip(old_hashes)
            .zip(old_payloads)
        {
            if *t != EMPTY_TAG {
                self.insert_slot(h, p);
            }
        }
    }
}

/// Capacity (power of two) at which `n` entries stay under the 7/8 load
/// factor — at least one full probe group.
fn capacity_for(n: usize) -> usize {
    let needed = n + n.div_ceil(7); // ceil(n * 8/7)
    needed.next_power_of_two().max(MIN_CAP)
}

/// Prepend entry `i` onto its equal-key chain in `table`: the chain head
/// is found by `hash` + `eq`; when one exists, `set_next(old_head)` links
/// `i` in front of it (the caller owns the chain array), otherwise `i`
/// starts a new chain. This is the one chain-building step shared by the
/// serial join build, the partitioned parallel build, and the
/// delta-ingest victim index — prepending over a reverse scan yields
/// chains that iterate in ascending entry order.
pub fn chain_prepend(
    table: &mut FlatTable,
    hash: u64,
    i: u32,
    eq: impl FnMut(u32) -> bool,
    set_next: impl FnOnce(u32),
) {
    match table.find_mut(hash, eq) {
        Some(head) => {
            set_next(*head);
            *head = i;
        }
        None => table.insert(hash, i),
    }
}

/// A set of rows over a [`FlatTable`] — the DISTINCT / set-operation
/// "seen" structure. Rows live in a typed key arena (packed `(tag, word)`
/// columns, string heap) while representable, so membership compares are
/// word compares; an unrepresentable key (integer beyond ±2^53) demotes
/// the set losslessly to materialized rows.
#[derive(Debug, Default)]
pub struct RowSet {
    table: FlatTable,
    store: TupleStore,
    scratch: EncodedChunk,
    hint: usize,
}

impl RowSet {
    /// An empty set.
    pub fn new() -> RowSet {
        RowSet::default()
    }

    /// An empty set pre-sized for `n` rows (planner cardinality hint):
    /// the flat index never rehashes below `n` inserts and the arena
    /// reserves ahead.
    pub fn with_capacity(n: usize) -> RowSet {
        RowSet {
            table: FlatTable::with_capacity(n),
            hint: n,
            ..RowSet::default()
        }
    }

    /// Encode a batch's rows into the typed scratch chunk, once, before
    /// the per-row [`insert_batch_row`](RowSet::insert_batch_row) loop.
    /// Interning is idempotent, so pre-encoding rows that turn out to be
    /// duplicates costs nothing extra.
    pub fn begin_batch(&mut self, batch: &RowBatch<'_>) {
        self.store.ensure_width(batch.width());
        let n = batch.num_rows();
        if let TupleStore::Typed(arena) = &mut self.store {
            if arena.is_empty() && self.hint > 0 {
                arena.reserve(self.hint);
                self.hint = 0;
            }
            arena.encode_chunk(&mut self.scratch, n, |r, c| batch.value(c, r));
            note_typed_rows((n - self.scratch.bad_rows()) as u64);
            note_fallback_rows(self.scratch.bad_rows() as u64);
        } else {
            note_fallback_rows(n as u64);
        }
    }

    /// Insert batch row `r` (pre-hashed as `hash`); `true` when it was
    /// not yet present. Requires a [`begin_batch`](RowSet::begin_batch)
    /// call for this batch. The row is only materialized on first sight —
    /// and on the typed path not even then (it lives packed in the
    /// arena).
    pub fn insert_batch_row(&mut self, hash: u64, batch: &RowBatch<'_>, r: usize) -> bool {
        if matches!(self.store, TupleStore::Typed(_)) && !self.scratch.ok(r) {
            self.store.demote();
        }
        match &mut self.store {
            TupleStore::Typed(arena) => {
                let (table, scratch) = (&self.table, &self.scratch);
                if table
                    .find(hash, |p| arena.eq_chunk(p as usize, scratch, r))
                    .is_some()
                {
                    return false;
                }
                let idx = arena.push_from_chunk(scratch, r);
                self.table.insert(hash, idx);
                true
            }
            TupleStore::Rows(rows) => {
                let width = batch.width();
                let present = self
                    .table
                    .find(hash, |p| {
                        let seen = &rows[p as usize];
                        (0..width).all(|c| batch.value(c, r) == &seen[c])
                    })
                    .is_some();
                if present {
                    return false;
                }
                let idx = rows.len() as u32;
                rows.push(batch.materialize_row(r));
                self.table.insert(hash, idx);
                true
            }
            TupleStore::Empty => unreachable!("begin_batch resolves the store"),
        }
    }

    /// Insert a materialized row (spill-path counterpart); `true` when it
    /// was not yet present.
    pub fn insert_row(&mut self, hash: u64, row: Row) -> bool {
        self.store.ensure_width(row.len());
        let mut demote = false;
        if let TupleStore::Typed(arena) = &mut self.store {
            arena.encode_chunk(&mut self.scratch, 1, |_, c| &row[c]);
            if self.scratch.ok(0) {
                note_typed_rows(1);
                let (table, scratch) = (&self.table, &self.scratch);
                if table
                    .find(hash, |p| arena.eq_chunk(p as usize, scratch, 0))
                    .is_some()
                {
                    return false;
                }
                let idx = arena.push_from_chunk(scratch, 0);
                self.table.insert(hash, idx);
                return true;
            }
            demote = true;
        }
        if demote {
            self.store.demote();
        }
        note_fallback_rows(1);
        let rows = match &mut self.store {
            TupleStore::Rows(rows) => rows,
            _ => unreachable!(),
        };
        if self.table.find(hash, |p| rows[p as usize] == row).is_some() {
            return false;
        }
        let idx = rows.len() as u32;
        rows.push(row);
        self.table.insert(hash, idx);
        true
    }
}

/// A multiplicity map over whole rows — the EXCEPT/INTERSECT right-side
/// counter. Storage follows the same typed-arena-with-fallback scheme as
/// [`RowSet`]; the probe-only lookups (`contains*`/`count_mut*`) compare
/// probe values directly against the packed arena (exact for every value,
/// including unrepresentable integers) so they never intern or demote.
#[derive(Debug, Default)]
pub struct RowCounter {
    table: FlatTable,
    store: TupleStore,
    counts: Vec<usize>,
    scratch: EncodedChunk,
    hint: usize,
}

impl RowCounter {
    /// An empty counter.
    pub fn new() -> RowCounter {
        RowCounter::default()
    }

    /// An empty counter pre-sized for `n` rows (planner cardinality
    /// hint).
    pub fn with_capacity(n: usize) -> RowCounter {
        RowCounter {
            table: FlatTable::with_capacity(n),
            hint: n,
            ..RowCounter::default()
        }
    }

    /// Encode a batch's rows into the typed scratch chunk before an
    /// [`add_batch_row`](RowCounter::add_batch_row) loop.
    pub fn begin_batch(&mut self, batch: &RowBatch<'_>) {
        self.store.ensure_width(batch.width());
        let n = batch.num_rows();
        if let TupleStore::Typed(arena) = &mut self.store {
            if arena.is_empty() && self.hint > 0 {
                arena.reserve(self.hint);
                self.hint = 0;
            }
            arena.encode_chunk(&mut self.scratch, n, |r, c| batch.value(c, r));
            note_typed_rows((n - self.scratch.bad_rows()) as u64);
            note_fallback_rows(self.scratch.bad_rows() as u64);
        } else {
            note_fallback_rows(n as u64);
        }
    }

    /// Index of the stored row equal to batch row `r`, via direct
    /// probe-vs-arena compare (no scratch needed).
    fn index_of(&self, hash: u64, batch: &RowBatch<'_>, r: usize) -> Option<usize> {
        let width = batch.width();
        match &self.store {
            TupleStore::Empty => None,
            TupleStore::Typed(arena) => self
                .table
                .find(hash, |p| arena.eq_row_at(p as usize, |c| batch.value(c, r)))
                .map(|p| p as usize),
            TupleStore::Rows(rows) => self
                .table
                .find(hash, |p| {
                    let seen = &rows[p as usize];
                    (0..width).all(|c| batch.value(c, r) == &seen[c])
                })
                .map(|p| p as usize),
        }
    }

    /// Bump the multiplicity of batch row `r` (pre-hashed as `hash`).
    /// Requires a [`begin_batch`](RowCounter::begin_batch) call for this
    /// batch.
    pub fn add_batch_row(&mut self, hash: u64, batch: &RowBatch<'_>, r: usize) {
        if matches!(self.store, TupleStore::Typed(_)) && !self.scratch.ok(r) {
            self.store.demote();
        }
        match &mut self.store {
            TupleStore::Typed(arena) => {
                let (table, scratch) = (&self.table, &self.scratch);
                match table.find(hash, |p| arena.eq_chunk(p as usize, scratch, r)) {
                    Some(p) => self.counts[p as usize] += 1,
                    None => {
                        let idx = arena.push_from_chunk(scratch, r);
                        self.counts.push(1);
                        self.table.insert(hash, idx);
                    }
                }
            }
            TupleStore::Rows(rows) => {
                let width = batch.width();
                let found = self.table.find(hash, |p| {
                    let seen = &rows[p as usize];
                    (0..width).all(|c| batch.value(c, r) == &seen[c])
                });
                match found {
                    Some(p) => self.counts[p as usize] += 1,
                    None => {
                        let idx = rows.len() as u32;
                        rows.push(batch.materialize_row(r));
                        self.counts.push(1);
                        self.table.insert(hash, idx);
                    }
                }
            }
            TupleStore::Empty => unreachable!("begin_batch resolves the store"),
        }
    }

    /// Whether the row occurs at all (set semantics; multiplicities of 0
    /// still count as present, matching the consumed-map contract of
    /// EXCEPT ALL).
    pub fn contains_batch_row(&self, hash: u64, batch: &RowBatch<'_>, r: usize) -> bool {
        self.index_of(hash, batch, r).is_some()
    }

    /// Mutable multiplicity of the row, when present (bag semantics
    /// consume one per match).
    pub fn count_mut(&mut self, hash: u64, batch: &RowBatch<'_>, r: usize) -> Option<&mut usize> {
        self.index_of(hash, batch, r).map(|i| &mut self.counts[i])
    }

    fn index_of_row(&self, hash: u64, row: &[Value]) -> Option<usize> {
        match &self.store {
            TupleStore::Empty => None,
            TupleStore::Typed(arena) => self
                .table
                .find(hash, |p| arena.eq_row_at(p as usize, |c| &row[c]))
                .map(|p| p as usize),
            TupleStore::Rows(rows) => self
                .table
                .find(hash, |p| rows[p as usize] == row)
                .map(|p| p as usize),
        }
    }

    /// Bump the multiplicity of an already-materialized row (spill-path
    /// counterpart of [`add_batch_row`](RowCounter::add_batch_row)).
    pub fn add_row(&mut self, hash: u64, row: Row) {
        self.store.ensure_width(row.len());
        let mut demote = false;
        if let TupleStore::Typed(arena) = &mut self.store {
            arena.encode_chunk(&mut self.scratch, 1, |_, c| &row[c]);
            if self.scratch.ok(0) {
                note_typed_rows(1);
                let (table, scratch) = (&self.table, &self.scratch);
                match table.find(hash, |p| arena.eq_chunk(p as usize, scratch, 0)) {
                    Some(p) => self.counts[p as usize] += 1,
                    None => {
                        let idx = arena.push_from_chunk(scratch, 0);
                        self.counts.push(1);
                        self.table.insert(hash, idx);
                    }
                }
                return;
            }
            demote = true;
        }
        if demote {
            self.store.demote();
        }
        note_fallback_rows(1);
        let rows = match &mut self.store {
            TupleStore::Rows(rows) => rows,
            _ => unreachable!(),
        };
        let found = self.table.find(hash, |p| rows[p as usize] == row);
        match found {
            Some(p) => self.counts[p as usize] += 1,
            None => {
                let idx = rows.len() as u32;
                rows.push(row);
                self.counts.push(1);
                self.table.insert(hash, idx);
            }
        }
    }

    /// Whether the materialized row occurs at all (set semantics).
    pub fn contains_row(&self, hash: u64, row: &[Value]) -> bool {
        self.index_of_row(hash, row).is_some()
    }

    /// Mutable multiplicity of the materialized row, when present.
    pub fn count_mut_row(&mut self, hash: u64, row: &[Value]) -> Option<&mut usize> {
        self.index_of_row(hash, row).map(|i| &mut self.counts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    #[test]
    fn grouping_equal_values_hash_equal() {
        assert_eq!(hash_value(&i(3)), hash_value(&Value::Double(3.0)));
        assert_ne!(hash_value(&i(3)), hash_value(&Value::Double(3.5)));
        assert_eq!(hash_value(&Value::Null), hash_value(&Value::Null));
        // Date and Integer never group-compare equal; keep them apart.
        assert_ne!(hash_value(&Value::Date(3)), hash_value(&i(3)));
    }

    #[test]
    fn batch_key_hashes_match_row_hashes() {
        let rows = vec![
            vec![i(1), Value::from("a")],
            vec![Value::Null, Value::from("b")],
            vec![i(3), Value::Null],
        ];
        let batch = RowBatch::from_rows(2, rows.clone());
        let by_batch = hash_batch_keys(&batch, &[0, 1]);
        let by_rows = hash_rows_keys(&rows, &[0, 1]);
        assert_eq!(by_batch.hashes, by_rows.hashes);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(by_batch.is_null(r), by_rows.is_null(r));
            assert_eq!(by_batch.hashes[r], hash_row(row));
        }
        assert!(by_batch.is_null(1) && by_batch.is_null(2) && !by_batch.is_null(0));
        // Whole-row hashing agrees with the key kernels on full keys.
        assert_eq!(hash_batch_rows(&batch), by_batch.hashes);
    }

    #[test]
    fn column_order_matters() {
        assert_ne!(
            hash_row(&[i(1), i(2)]),
            hash_row(&[i(2), i(1)]),
            "row hashes must be order-sensitive"
        );
    }

    #[test]
    fn flat_table_find_and_grow() {
        // Keys are the payloads themselves (arena = identity).
        let mut t = FlatTable::new();
        assert_eq!(t.find(42, |_| true), None);
        for k in 0u32..5000 {
            let h = hash_value(&i(i64::from(k)));
            assert_eq!(t.find(h, |p| p == k), None);
            t.insert(h, k);
        }
        assert_eq!(t.len(), 5000);
        for k in 0u32..5000 {
            let h = hash_value(&i(i64::from(k)));
            assert_eq!(t.find(h, |p| p == k), Some(k));
        }
        assert_eq!(t.find(hash_value(&i(999_999)), |_| true), None);
    }

    #[test]
    fn probe_modes_agree() {
        // The scalar scan is the oracle: SWAR and SSE2 group masks must
        // produce identical find results on a table spanning growth
        // boundaries, with and without heavy tag collisions.
        let mut t = FlatTable::new();
        for k in 0u32..3000 {
            t.insert(hash_value(&i(i64::from(k))), k);
        }
        // Colliding entries: same hash (hence same tag and home slot).
        for k in 3000u32..3100 {
            t.insert(0xABCD_EF01_2345_6789, k);
        }
        for k in 0u32..3100 {
            let h = if k < 3000 {
                hash_value(&i(i64::from(k)))
            } else {
                0xABCD_EF01_2345_6789
            };
            let scalar = t.find_in_mode(h, |p| p == k, ProbeMode::Scalar);
            assert_eq!(scalar, Some(k));
            assert_eq!(t.find_in_mode(h, |p| p == k, ProbeMode::Swar), scalar);
            assert_eq!(t.find_in_mode(h, |p| p == k, ProbeMode::Sse2), scalar);
        }
        for miss in [hash_value(&i(777_777)), 0x1234, !0u64] {
            assert_eq!(t.find_in_mode(miss, |_| true, ProbeMode::Scalar), None);
            assert_eq!(t.find_in_mode(miss, |_| true, ProbeMode::Swar), None);
            assert_eq!(t.find_in_mode(miss, |_| true, ProbeMode::Sse2), None);
        }
    }

    #[test]
    fn with_capacity_never_rehashes() {
        for n in [0usize, 1, 7, 8, 1023, 1024, 1025] {
            let mut t = FlatTable::with_capacity(n);
            let cap = t.capacity();
            for k in 0..n as u32 {
                t.insert(hash_value(&i(i64::from(k))), k);
            }
            if n > 0 {
                assert_eq!(
                    t.capacity(),
                    cap,
                    "with_capacity({n}) rehashed during {n} inserts"
                );
            } else {
                assert_eq!(cap, 0, "with_capacity(0) must not allocate");
            }
        }
    }

    #[test]
    fn colliding_hashes_resolve_by_eq() {
        // Force every entry onto one hash: probing + eq must disambiguate.
        let mut t = FlatTable::new();
        for k in 0u32..100 {
            t.insert(0xDEAD_BEEF, k);
        }
        // find returns the entry whose payload the closure accepts.
        for k in 0u32..100 {
            assert_eq!(t.find(0xDEAD_BEEF, |p| p == k), Some(k));
        }
        assert_eq!(t.find(0xDEAD_BEEF, |p| p == 100), None);
        // A different hash that maps to the same slot region still misses.
        assert_eq!(t.find(!0xDEAD_BEEF, |_| true), None);
    }

    #[test]
    fn find_mut_updates_payload_in_place() {
        let mut t = FlatTable::new();
        t.insert(7, 1);
        *t.find_mut(7, |_| true).unwrap() = 9;
        assert_eq!(t.find(7, |_| true), Some(9));
        assert!(t.find_mut(8, |_| true).is_none());
    }

    #[test]
    fn row_set_and_counter() {
        let batch = RowBatch::from_rows(1, vec![vec![i(1)], vec![i(2)], vec![i(1)]]);
        let hashes = hash_batch_rows(&batch);
        let mut set = RowSet::new();
        set.begin_batch(&batch);
        assert!(set.insert_batch_row(hashes[0], &batch, 0));
        assert!(set.insert_batch_row(hashes[1], &batch, 1));
        assert!(!set.insert_batch_row(hashes[2], &batch, 2));

        let mut counts = RowCounter::new();
        counts.begin_batch(&batch);
        for (r, &hash) in hashes.iter().enumerate() {
            counts.add_batch_row(hash, &batch, r);
        }
        assert_eq!(counts.count_mut(hashes[0], &batch, 0), Some(&mut 2));
        assert_eq!(counts.count_mut(hashes[1], &batch, 1), Some(&mut 1));
        assert!(counts.contains_batch_row(hashes[0], &batch, 2));
    }

    #[test]
    fn row_set_demotes_on_unrepresentable_keys_without_losing_rows() {
        let big = (1i64 << 53) + 1; // no exact f64 widening → fallback
        let rows = vec![
            vec![i(1), Value::from("x")],
            vec![i(big), Value::from("y")],
            vec![i(1), Value::from("x")],   // dup of row 0 (typed era)
            vec![i(big), Value::from("y")], // dup of row 1 (row era)
        ];
        let batch = RowBatch::from_rows(2, rows);
        let hashes = hash_batch_rows(&batch);
        let mut set = RowSet::new();
        set.begin_batch(&batch);
        assert!(set.insert_batch_row(hashes[0], &batch, 0));
        assert!(set.insert_batch_row(hashes[1], &batch, 1)); // triggers demotion
        assert!(!set.insert_batch_row(hashes[2], &batch, 2));
        assert!(!set.insert_batch_row(hashes[3], &batch, 3));
    }

    #[test]
    fn row_counter_mixed_typed_and_row_probes() {
        let batch = RowBatch::from_rows(1, vec![vec![i(5)], vec![Value::Double(5.0)]]);
        let hashes = hash_batch_rows(&batch);
        let mut counts = RowCounter::new();
        counts.begin_batch(&batch);
        counts.add_batch_row(hashes[0], &batch, 0);
        counts.add_batch_row(hashes[1], &batch, 1);
        // INTEGER 5 and DOUBLE 5.0 are one group under grouping equality.
        assert_eq!(
            counts.count_mut_row(hash_row(&[i(5)]), &[i(5)]),
            Some(&mut 2)
        );
        // Probe with an unrepresentable integer: exact miss, no demotion.
        let big = (1i64 << 53) + 1;
        assert!(!counts.contains_row(hash_row(&[i(big)]), &[i(big)]));
    }
}
