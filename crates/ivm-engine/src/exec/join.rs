//! Join operators: build-probe hash join for equi-joins, nested loops
//! otherwise.
//!
//! Both operators materialize the build side once, then stream probe
//! batches. Output batches reuse the probe batch's columns through a
//! selection vector (zero-copy, possibly with repeats for multi-matches)
//! and gather only the build side. The probe side is the preserved side:
//! `LeftOuter` pads unmatched probe rows, `FullOuter` additionally emits
//! unmatched build rows after the probe is exhausted. SQL semantics: NULL
//! keys never match.

use std::collections::HashMap;

use crate::error::EngineError;
use crate::exec::batch::{ColumnData, JoinedRow, RowBatch};
use crate::exec::{BoxedOperator, Operator, Row};
use crate::expr::BoundExpr;
use crate::planner::physical::PhysJoinKind;
use crate::value::Value;

/// The materialized build side shared by both join flavors.
struct BuildSide {
    rows: Vec<Row>,
    matched: Vec<bool>,
}

impl BuildSide {
    fn consume<'a>(op: &mut BoxedOperator<'a>) -> Result<BuildSide, EngineError> {
        let mut rows = Vec::new();
        while let Some(batch) = op.next_batch()? {
            rows.extend(batch.to_rows());
        }
        let matched = vec![false; rows.len()];
        Ok(BuildSide { rows, matched })
    }
}

/// Gather `indices` out of the build rows into owned columns;
/// `u32::MAX` marks a NULL-padded (unmatched probe) slot.
fn gather_build_columns<'a>(
    build: &[Row],
    build_width: usize,
    indices: &[u32],
) -> Vec<ColumnData<'a>> {
    let mut columns: Vec<Vec<Value>> = (0..build_width)
        .map(|_| Vec::with_capacity(indices.len()))
        .collect();
    for &i in indices {
        if i == u32::MAX {
            for col in &mut columns {
                col.push(Value::Null);
            }
        } else {
            for (col, v) in columns.iter_mut().zip(&build[i as usize]) {
                col.push(v.clone());
            }
        }
    }
    columns.into_iter().map(ColumnData::owned).collect()
}

/// Splice a probe-side selection with gathered build columns into one
/// output batch of `probe ++ build` layout.
fn splice_output<'a>(
    probe_batch: &RowBatch<'a>,
    probe_sel: Vec<u32>,
    build: &[Row],
    build_width: usize,
    build_idx: &[u32],
) -> RowBatch<'a> {
    let rows = probe_sel.len();
    let mut columns = probe_batch.select(probe_sel).into_columns();
    columns.extend(gather_build_columns(build, build_width, build_idx));
    RowBatch::new(columns, rows)
}

/// Emit build rows never matched during probing, padded with NULLs on the
/// probe side (the FULL OUTER tail).
fn unmatched_build_batch<'a>(
    state: &BuildSide,
    probe_width: usize,
    build_width: usize,
) -> Option<RowBatch<'a>> {
    let unmatched: Vec<u32> = state
        .matched
        .iter()
        .enumerate()
        .filter(|(_, m)| !**m)
        .map(|(i, _)| i as u32)
        .collect();
    if unmatched.is_empty() {
        return None;
    }
    let mut columns: Vec<ColumnData<'a>> = (0..probe_width)
        .map(|_| ColumnData::owned(vec![Value::Null; unmatched.len()]))
        .collect();
    columns.extend(gather_build_columns(&state.rows, build_width, &unmatched));
    Some(RowBatch::new(columns, unmatched.len()))
}

/// Hash table over the build side: key values → build row indices.
type JoinTable = HashMap<Vec<Value>, Vec<u32>>;

/// Build-probe hash join on plan-time-extracted equi-keys.
pub struct HashJoinOp<'a> {
    probe: BoxedOperator<'a>,
    build: BoxedOperator<'a>,
    probe_width: usize,
    build_width: usize,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    residual: Option<BoundExpr>,
    join: PhysJoinKind,
    state: Option<(BuildSide, JoinTable)>,
    probe_done: bool,
    tail_emitted: bool,
}

impl<'a> HashJoinOp<'a> {
    /// Create the operator; the hash table is built on first pull.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        probe: BoxedOperator<'a>,
        build: BoxedOperator<'a>,
        probe_width: usize,
        build_width: usize,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        residual: Option<BoundExpr>,
        join: PhysJoinKind,
    ) -> HashJoinOp<'a> {
        debug_assert_eq!(probe_keys.len(), build_keys.len());
        HashJoinOp {
            probe,
            build,
            probe_width,
            build_width,
            probe_keys,
            build_keys,
            residual,
            join,
            state: None,
            probe_done: false,
            tail_emitted: false,
        }
    }

    fn ensure_built(&mut self) -> Result<(), EngineError> {
        if self.state.is_some() {
            return Ok(());
        }
        let side = BuildSide::consume(&mut self.build)?;
        let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        'rows: for (i, row) in side.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(self.build_keys.len());
            for &k in &self.build_keys {
                let v = &row[k];
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v.clone());
            }
            table.entry(key).or_default().push(i as u32);
        }
        self.state = Some((side, table));
        Ok(())
    }
}

impl<'a> Operator<'a> for HashJoinOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        self.ensure_built()?;
        let preserve_probe = matches!(self.join, PhysJoinKind::LeftOuter | PhysJoinKind::FullOuter);
        while !self.probe_done {
            let Some(batch) = self.probe.next_batch()? else {
                self.probe_done = true;
                break;
            };
            let (side, table) = self.state.as_mut().expect("built above");
            let mut probe_sel: Vec<u32> = Vec::new();
            let mut build_idx: Vec<u32> = Vec::new();
            let mut key = Vec::with_capacity(self.probe_keys.len());
            'rows: for row in 0..batch.num_rows() {
                key.clear();
                for &k in &self.probe_keys {
                    let v = batch.value(k, row);
                    if v.is_null() {
                        if preserve_probe {
                            probe_sel.push(row as u32);
                            build_idx.push(u32::MAX);
                        }
                        continue 'rows;
                    }
                    key.push(v.clone());
                }
                let mut matched = false;
                if let Some(candidates) = table.get(key.as_slice()) {
                    for &bi in candidates {
                        if let Some(resid) = &self.residual {
                            let joined = JoinedRow::new(
                                batch.row_view(row),
                                self.probe_width,
                                &side.rows[bi as usize],
                            );
                            if resid.eval(&joined)?.as_bool() != Some(true) {
                                continue;
                            }
                        }
                        matched = true;
                        side.matched[bi as usize] = true;
                        probe_sel.push(row as u32);
                        build_idx.push(bi);
                    }
                }
                if !matched && preserve_probe {
                    probe_sel.push(row as u32);
                    build_idx.push(u32::MAX);
                }
            }
            if !probe_sel.is_empty() {
                return Ok(Some(splice_output(
                    &batch,
                    probe_sel,
                    &self.state.as_ref().expect("built").0.rows,
                    self.build_width,
                    &build_idx,
                )));
            }
        }
        if self.join == PhysJoinKind::FullOuter && !self.tail_emitted {
            self.tail_emitted = true;
            let (side, _) = self.state.as_ref().expect("built above");
            return Ok(unmatched_build_batch(
                side,
                self.probe_width,
                self.build_width,
            ));
        }
        Ok(None)
    }
}

/// Nested-loop join for CROSS joins and non-equi ON conditions.
pub struct NestedLoopJoinOp<'a> {
    probe: BoxedOperator<'a>,
    build: BoxedOperator<'a>,
    probe_width: usize,
    build_width: usize,
    on: Option<BoundExpr>,
    join: PhysJoinKind,
    state: Option<BuildSide>,
    probe_done: bool,
    tail_emitted: bool,
}

impl<'a> NestedLoopJoinOp<'a> {
    /// Create the operator; the build side materializes on first pull.
    pub fn new(
        probe: BoxedOperator<'a>,
        build: BoxedOperator<'a>,
        probe_width: usize,
        build_width: usize,
        on: Option<BoundExpr>,
        join: PhysJoinKind,
    ) -> NestedLoopJoinOp<'a> {
        NestedLoopJoinOp {
            probe,
            build,
            probe_width,
            build_width,
            on,
            join,
            state: None,
            probe_done: false,
            tail_emitted: false,
        }
    }
}

impl<'a> Operator<'a> for NestedLoopJoinOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.state.is_none() {
            self.state = Some(BuildSide::consume(&mut self.build)?);
        }
        let preserve_probe = matches!(self.join, PhysJoinKind::LeftOuter | PhysJoinKind::FullOuter);
        while !self.probe_done {
            let Some(batch) = self.probe.next_batch()? else {
                self.probe_done = true;
                break;
            };
            let side = self.state.as_mut().expect("built above");
            let mut probe_sel: Vec<u32> = Vec::new();
            let mut build_idx: Vec<u32> = Vec::new();
            for row in 0..batch.num_rows() {
                let mut matched = false;
                for (bi, build_row) in side.rows.iter().enumerate() {
                    let ok = match &self.on {
                        None => true,
                        Some(pred) => {
                            let joined =
                                JoinedRow::new(batch.row_view(row), self.probe_width, build_row);
                            pred.eval(&joined)?.as_bool() == Some(true)
                        }
                    };
                    if ok {
                        matched = true;
                        side.matched[bi] = true;
                        probe_sel.push(row as u32);
                        build_idx.push(bi as u32);
                    }
                }
                if !matched && preserve_probe {
                    probe_sel.push(row as u32);
                    build_idx.push(u32::MAX);
                }
            }
            if !probe_sel.is_empty() {
                return Ok(Some(splice_output(
                    &batch,
                    probe_sel,
                    &self.state.as_ref().expect("built").rows,
                    self.build_width,
                    &build_idx,
                )));
            }
        }
        if self.join == PhysJoinKind::FullOuter && !self.tail_emitted {
            self.tail_emitted = true;
            let side = self.state.as_ref().expect("built above");
            return Ok(unmatched_build_batch(
                side,
                self.probe_width,
                self.build_width,
            ));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{drain, StaticOp};
    use crate::types::DataType;
    use ivm_sql::ast::BinaryOp;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    fn col(idx: usize) -> BoundExpr {
        BoundExpr::Column {
            index: idx,
            ty: Some(DataType::Integer),
            name: format!("c{idx}"),
        }
    }

    fn gt(l: BoundExpr, r: i64) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(l),
            right: Box::new(BoundExpr::Literal(i(r))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_hash(
        probe: Vec<Row>,
        build: Vec<Row>,
        pw: usize,
        bw: usize,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        residual: Option<BoundExpr>,
        join: PhysJoinKind,
        batch_size: usize,
    ) -> Vec<Row> {
        let op = HashJoinOp::new(
            Box::new(StaticOp::from_rows(pw, probe, batch_size)),
            Box::new(StaticOp::from_rows(bw, build, batch_size)),
            pw,
            bw,
            probe_keys,
            build_keys,
            residual,
            join,
        );
        drain(Box::new(op)).unwrap()
    }

    fn run_nl(
        probe: Vec<Row>,
        build: Vec<Row>,
        pw: usize,
        bw: usize,
        on: Option<BoundExpr>,
        join: PhysJoinKind,
    ) -> Vec<Row> {
        let op = NestedLoopJoinOp::new(
            Box::new(StaticOp::from_rows(pw, probe, 2)),
            Box::new(StaticOp::from_rows(bw, build, 2)),
            pw,
            bw,
            on,
            join,
        );
        drain(Box::new(op)).unwrap()
    }

    #[test]
    fn inner_hash_join_matches_pairs() {
        let probe = vec![vec![i(1), i(10)], vec![i(2), i(20)], vec![i(3), i(30)]];
        let build = vec![vec![i(2), i(200)], vec![i(3), i(300)], vec![i(3), i(301)]];
        let mut out = run_hash(
            probe,
            build,
            2,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            2,
        );
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![i(2), i(20), i(2), i(200)],
                vec![i(3), i(30), i(3), i(300)],
                vec![i(3), i(30), i(3), i(301)],
            ]
        );
    }

    #[test]
    fn left_outer_pads_unmatched_probe_rows() {
        let probe = vec![vec![i(1)], vec![i(2)]];
        let build = vec![vec![i(2), i(200)]];
        let mut out = run_hash(
            probe,
            build,
            1,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::LeftOuter,
            8,
        );
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![i(1), Value::Null, Value::Null],
                vec![i(2), i(2), i(200)],
            ]
        );
    }

    #[test]
    fn full_outer_emits_both_unmatched_sides() {
        let probe = vec![vec![i(1)], vec![i(2)]];
        let build = vec![vec![i(2)], vec![i(3)]];
        let mut out = run_hash(
            probe,
            build,
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            1,
        );
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![Value::Null, i(3)],
                vec![i(1), Value::Null],
                vec![i(2), i(2)],
            ]
        );
    }

    #[test]
    fn null_keys_never_match_but_outer_rows_survive() {
        let probe = vec![vec![Value::Null], vec![i(1)]];
        let build = vec![vec![Value::Null], vec![i(1)]];
        let inner = run_hash(
            probe.clone(),
            build.clone(),
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            4,
        );
        assert_eq!(inner, vec![vec![i(1), i(1)]]);
        let mut full = run_hash(
            probe,
            build,
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            4,
        );
        full.sort();
        assert_eq!(
            full,
            vec![
                vec![Value::Null, Value::Null], // unmatched NULL-key build row
                vec![Value::Null, Value::Null], // unmatched NULL-key probe row
                vec![i(1), i(1)],
            ]
        );
    }

    #[test]
    fn residual_filters_candidate_pairs() {
        // probe(k, v) ⋈ build(k) ON k = k AND v > 15
        let probe = vec![vec![i(1), i(10)], vec![i(1), i(20)]];
        let build = vec![vec![i(1)]];
        let out = run_hash(
            probe,
            build,
            2,
            1,
            vec![0],
            vec![0],
            Some(gt(col(1), 15)),
            PhysJoinKind::Inner,
            4,
        );
        assert_eq!(out, vec![vec![i(1), i(20), i(1)]]);
    }

    #[test]
    fn empty_sides_behave() {
        let rows = vec![vec![i(1)], vec![i(2)]];
        // Empty build: inner yields nothing, left outer pads everything.
        assert!(run_hash(
            rows.clone(),
            vec![],
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            4,
        )
        .is_empty());
        let padded = run_hash(
            rows.clone(),
            vec![],
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::LeftOuter,
            4,
        );
        assert_eq!(
            padded,
            vec![vec![i(1), Value::Null], vec![i(2), Value::Null]]
        );
        // Empty probe: full outer still surfaces the build side.
        let mut tail = run_hash(
            vec![],
            rows,
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            4,
        );
        tail.sort();
        assert_eq!(tail, vec![vec![Value::Null, i(1)], vec![Value::Null, i(2)]]);
    }

    #[test]
    fn multi_batch_probe_streams() {
        // 10 probe rows in batches of 2 against a 3-row build side.
        let probe: Vec<Row> = (0..10).map(|v| vec![i(v % 3)]).collect();
        let build: Vec<Row> = (0..3).map(|v| vec![i(v), i(v * 100)]).collect();
        let out = run_hash(
            probe,
            build,
            1,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            2,
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| r[0] == r[1]));
    }

    #[test]
    fn cross_join_via_nested_loop() {
        let probe = vec![vec![i(1)], vec![i(2)]];
        let build = vec![vec![i(10)], vec![i(20)]];
        let out = run_nl(probe, build, 1, 1, None, PhysJoinKind::Inner);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn non_equi_nested_loop_with_outer_padding() {
        // probe.v < build.v
        let lt = BoundExpr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(col(1)),
        };
        let probe = vec![vec![i(1)], vec![i(5)]];
        let build = vec![vec![i(3)]];
        let inner = run_nl(
            probe.clone(),
            build.clone(),
            1,
            1,
            Some(lt.clone()),
            PhysJoinKind::Inner,
        );
        assert_eq!(inner, vec![vec![i(1), i(3)]]);
        let mut left = run_nl(probe, build, 1, 1, Some(lt), PhysJoinKind::LeftOuter);
        left.sort();
        assert_eq!(left, vec![vec![i(1), i(3)], vec![i(5), Value::Null]]);
    }
}
