//! Join operators: build-probe hash join for equi-joins, nested loops
//! otherwise.
//!
//! Both operators materialize the build side once, then stream probe
//! batches. Output batches reuse the probe batch's columns through a
//! selection vector (zero-copy, possibly with repeats for multi-matches)
//! and gather only the build side. The hash join's residual predicate is
//! evaluated *vectorized*: candidate pairs are collected per probe batch,
//! spliced into one `probe ++ build` frame, and filtered by a compiled
//! kernel in a single pass. Output is chunked at the executor batch size
//! with carry-over state, so high-fan-out probes (skew, CROSS joins, the
//! FULL OUTER tail) can no longer emit oversized batches. The probe side
//! is the preserved side: `LeftOuter` pads unmatched probe rows,
//! `FullOuter` additionally emits unmatched build rows after the probe is
//! exhausted. SQL semantics: NULL keys never match.

use std::sync::Arc;

use crate::error::EngineError;
use crate::exec::batch::{ColumnData, JoinedRow, RowBatch};
use crate::exec::hash::{chain_prepend, hash_batch_keys, hash_rows_keys, FlatTable};
use crate::exec::spill::{
    for_each_fitting_group_pair, MemoryBudget, MergeEmit, OutputRuns, PartitionedSpiller,
    SpillPartition,
};
use crate::exec::typed::{note_fallback_rows, note_typed_rows, EncodedChunk, KeyArena};
use crate::exec::{BoxedOperator, Operator, Row};
use crate::expr::{BoundExpr, VectorKernel};
use crate::planner::physical::PhysJoinKind;
use crate::value::Value;

/// The materialized build side shared by both join flavors. Besides the
/// rows themselves it keeps a columnar copy behind `Arc`s: output batches
/// gather the build side by *selection* against those shared buffers
/// (one `Value` clone per build row at construction, zero per output
/// row), instead of cloning values once per emitted pair.
struct BuildSide {
    rows: Vec<Row>,
    cols: Vec<Arc<Vec<Value>>>,
    matched: Vec<bool>,
}

impl BuildSide {
    fn new(rows: Vec<Row>, width: usize) -> BuildSide {
        let mut cols: Vec<Vec<Value>> =
            (0..width).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in &rows {
            for (col, v) in cols.iter_mut().zip(row) {
                col.push(v.clone());
            }
        }
        let matched = vec![false; rows.len()];
        BuildSide {
            rows,
            cols: cols.into_iter().map(Arc::new).collect(),
            matched,
        }
    }

    fn consume<'a>(op: &mut BoxedOperator<'a>, width: usize) -> Result<BuildSide, EngineError> {
        let mut rows = Vec::new();
        while let Some(batch) = op.next_batch()? {
            rows.extend(batch.to_rows());
        }
        Ok(BuildSide::new(rows, width))
    }
}

/// Join output for one probe batch, emitted in `batch_size` chunks.
struct PendingOutput<'a> {
    batch: RowBatch<'a>,
    probe_sel: Vec<u32>,
    build_idx: Vec<u32>,
    /// Whether `build_idx` contains any `u32::MAX` NULL-pad slot (outer
    /// joins only): padded chunks gather the build side row-wise, while
    /// unpadded ones share the columnar build buffers zero-copy.
    padded: bool,
    offset: usize,
}

impl<'a> PendingOutput<'a> {
    fn new(batch: RowBatch<'a>, probe_sel: Vec<u32>, build_idx: Vec<u32>) -> PendingOutput<'a> {
        let padded = build_idx.contains(&u32::MAX);
        PendingOutput {
            batch,
            probe_sel,
            build_idx,
            padded,
            offset: 0,
        }
    }

    /// Emit the next chunk of at most `batch_size` output rows, or `None`
    /// when exhausted.
    fn next_chunk(
        &mut self,
        side: &BuildSide,
        build_width: usize,
        batch_size: usize,
    ) -> Option<RowBatch<'a>> {
        if self.offset >= self.probe_sel.len() {
            return None;
        }
        let end = (self.offset + batch_size.max(1)).min(self.probe_sel.len());
        let probe_sel = self.probe_sel[self.offset..end].to_vec();
        let build_idx = &self.build_idx[self.offset..end];
        self.offset = end;
        let rows = probe_sel.len();
        let mut columns = self.batch.select(probe_sel).into_columns();
        if self.padded {
            columns.extend(gather_build_columns(&side.rows, build_width, build_idx));
        } else {
            let sel = Arc::new(build_idx.to_vec());
            columns.extend(
                side.cols
                    .iter()
                    .map(|c| ColumnData::shared_with_sel(Arc::clone(c), Arc::clone(&sel))),
            );
        }
        Some(RowBatch::new(columns, rows))
    }
}

/// Gather `indices` out of the build rows into owned columns;
/// `u32::MAX` marks a NULL-padded (unmatched probe) slot.
pub(crate) fn gather_build_columns<'a>(
    build: &[Row],
    build_width: usize,
    indices: &[u32],
) -> Vec<ColumnData<'a>> {
    let mut columns: Vec<Vec<Value>> = (0..build_width)
        .map(|_| Vec::with_capacity(indices.len()))
        .collect();
    for &i in indices {
        if i == u32::MAX {
            for col in &mut columns {
                col.push(Value::Null);
            }
        } else {
            for (col, v) in columns.iter_mut().zip(&build[i as usize]) {
                col.push(v.clone());
            }
        }
    }
    columns.into_iter().map(ColumnData::owned).collect()
}

/// Splice a probe-side selection with gathered build columns into one
/// output batch of `probe ++ build` layout.
pub(crate) fn splice_output<'a>(
    probe_batch: &RowBatch<'a>,
    probe_sel: Vec<u32>,
    build: &[Row],
    build_width: usize,
    build_idx: &[u32],
) -> RowBatch<'a> {
    let rows = probe_sel.len();
    let mut columns = probe_batch.select(probe_sel).into_columns();
    columns.extend(gather_build_columns(build, build_width, build_idx));
    RowBatch::new(columns, rows)
}

/// Build rows never matched during probing (the FULL OUTER tail).
fn unmatched_build_ids(state: &BuildSide) -> Vec<u32> {
    state
        .matched
        .iter()
        .enumerate()
        .filter(|(_, m)| !**m)
        .map(|(i, _)| i as u32)
        .collect()
}

/// One chunk of the FULL OUTER tail: the given unmatched build rows,
/// padded with NULLs on the probe side.
pub(crate) fn unmatched_build_batch<'a>(
    build_rows: &[Row],
    ids: &[u32],
    probe_width: usize,
    build_width: usize,
) -> RowBatch<'a> {
    let mut columns: Vec<ColumnData<'a>> = (0..probe_width)
        .map(|_| ColumnData::owned(vec![Value::Null; ids.len()]))
        .collect();
    columns.extend(gather_build_columns(build_rows, build_width, ids));
    RowBatch::new(columns, ids.len())
}

/// Build-side key encode chunk size: bounds the scratch [`EncodedChunk`]
/// while the whole build side streams through the typed encoder.
const BUILD_ENCODE_CHUNK: usize = 4096;

/// Hash index over the build side: a [`FlatTable`] keyed by precomputed
/// key hashes whose payload is the *head* build-row index of a chain
/// threaded through `next` (rows with equal keys, in build-row order).
/// When every build key is representable in the typed layout, keys are
/// packed into a [`KeyArena`] (arena row `i` == build row `i`, null-key
/// rows included) so chain and probe compares are branch-free word
/// compares; otherwise compares fall back to the build rows themselves.
/// Every build row is hashed exactly once, by the vectorized key kernel.
pub(crate) struct JoinTable {
    table: FlatTable,
    /// Per build row: the next row with an equal key, `u32::MAX` at the
    /// chain end.
    next: Vec<u32>,
    /// Typed columnar copy of the build keys; `None` when some build key
    /// is unrepresentable (or the key set is empty).
    keys: Option<KeyArena>,
}

impl JoinTable {
    /// Index `rows` on `keys`. Rows with a NULL key never enter the table
    /// (SQL: NULL keys never match). Chains are built by *prepending*
    /// over a reverse scan, so candidate iteration yields build rows in
    /// increasing order — the serial output order contract.
    pub(crate) fn build(rows: &[Row], keys: &[usize]) -> JoinTable {
        let hashes = hash_rows_keys(rows, keys);
        let mut table = FlatTable::with_capacity(rows.len());
        let mut next = vec![u32::MAX; rows.len()];
        let arena = encode_build_keys(rows, keys);
        match &arena {
            Some(_) => note_typed_rows(rows.len() as u64),
            None => note_fallback_rows(rows.len() as u64),
        }
        for i in (0..rows.len()).rev() {
            if hashes.is_null(i) {
                continue;
            }
            match &arena {
                Some(a) => chain_prepend(
                    &mut table,
                    hashes.hashes[i],
                    i as u32,
                    |p| a.eq_rows(p as usize, i),
                    |head| next[i] = head,
                ),
                None => {
                    let row = &rows[i];
                    chain_prepend(
                        &mut table,
                        hashes.hashes[i],
                        i as u32,
                        |p| {
                            let head = &rows[p as usize];
                            keys.iter().all(|&k| head[k] == row[k])
                        },
                        |head| next[i] = head,
                    )
                }
            }
        }
        JoinTable {
            table,
            next,
            keys: arena,
        }
    }

    /// Push every build row matching the probe key onto `out`, in
    /// build-row order. The probe key is taken from `batch` columns
    /// `probe_keys` at row `r`, pre-hashed as `hash`. `chunk` is the
    /// batch's probe-side typed encoding when the build keys are typed
    /// (rows the typed layout can't represent compare exactly via
    /// [`KeyArena::eq_row_at`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_into(
        &self,
        hash: u64,
        batch: &RowBatch<'_>,
        r: usize,
        probe_keys: &[usize],
        build_rows: &[Row],
        build_keys: &[usize],
        chunk: Option<&EncodedChunk>,
        out: &mut Vec<u32>,
    ) {
        let head = match (&self.keys, chunk) {
            (Some(arena), Some(chunk)) if chunk.ok(r) => self
                .table
                .find(hash, |p| arena.eq_chunk(p as usize, chunk, r)),
            (Some(arena), _) => self.table.find(hash, |p| {
                arena.eq_row_at(p as usize, |c| batch.value(probe_keys[c], r))
            }),
            (None, _) => self.table.find(hash, |p| {
                let build = &build_rows[p as usize];
                probe_keys
                    .iter()
                    .zip(build_keys)
                    .all(|(&pk, &bk)| batch.value(pk, r) == &build[bk])
            }),
        };
        let mut cur = match head {
            Some(h) => h,
            None => return,
        };
        while cur != u32::MAX {
            out.push(cur);
            cur = self.next[cur as usize];
        }
    }

    /// The typed build-key arena, when the build side is representable.
    fn arena(&self) -> Option<&KeyArena> {
        self.keys.as_ref()
    }
}

/// Pack every build key into a fresh [`KeyArena`] (arena row == build
/// row), or `None` if any key value is unrepresentable. NULL-key rows
/// are encoded too — they never enter the hash table, but keeping the
/// arena index aligned with the row index keeps chain compares O(1).
pub(crate) fn encode_build_keys(rows: &[Row], keys: &[usize]) -> Option<KeyArena> {
    if keys.is_empty() {
        return None;
    }
    let mut arena = KeyArena::new(keys.len());
    arena.reserve(rows.len());
    let mut chunk = EncodedChunk::new();
    let mut base = 0;
    while base < rows.len() {
        let n = BUILD_ENCODE_CHUNK.min(rows.len() - base);
        arena.encode_chunk(&mut chunk, n, |r, c| &rows[base + r][keys[c]]);
        if !chunk.all_ok() {
            return None;
        }
        for r in 0..n {
            arena.push_from_chunk(&chunk, r);
        }
        base += n;
    }
    Some(arena)
}

/// One probe batch joined against a [`JoinTable`]: candidate pairs via
/// the flat table (chains in build-row order), residual kernel over one
/// spliced frame, output pairs in probe-row order with outer padding.
/// Shared by the streaming in-memory path and the per-partition spill
/// path — both produce identical pair sequences for identical inputs.
#[allow(clippy::too_many_arguments)]
fn join_probe_batch(
    table: &JoinTable,
    build_rows: &[Row],
    matched: &mut [bool],
    batch: &RowBatch<'_>,
    probe_keys: &[usize],
    build_keys: &[usize],
    residual: Option<&VectorKernel>,
    join: PhysJoinKind,
    build_width: usize,
) -> Result<(Vec<u32>, Vec<u32>), EngineError> {
    let preserve_probe = matches!(join, PhysJoinKind::LeftOuter | PhysJoinKind::FullOuter);
    let rows = batch.num_rows();
    let mut cand_rows: Vec<u32> = Vec::new();
    let mut cand_bis: Vec<u32> = Vec::new();
    // Typed probe: one fused column-at-a-time pass both hashes the
    // batch's probe keys and encodes them against the build arena
    // (lookup-only — a probe string absent from the build heap can match
    // nothing, so it is never interned), so each key value is
    // enum-dispatched exactly once and each candidate compare is a word
    // compare. Row-based build sides take the plain hash kernel.
    let (hashes, probe_chunk) = match table.arena() {
        Some(arena) => {
            let mut chunk = EncodedChunk::new();
            let hashes = arena.encode_probe_batch(&mut chunk, batch, probe_keys);
            note_typed_rows((rows - chunk.bad_rows()) as u64);
            note_fallback_rows(chunk.bad_rows() as u64);
            (hashes, Some(chunk))
        }
        None => {
            note_fallback_rows(rows as u64);
            (hash_batch_keys(batch, probe_keys), None)
        }
    };
    for row in 0..rows {
        if hashes.is_null(row) {
            continue;
        }
        table.probe_into(
            hashes.hashes[row],
            batch,
            row,
            probe_keys,
            build_rows,
            build_keys,
            probe_chunk.as_ref(),
            &mut cand_bis,
        );
        cand_rows.resize(cand_bis.len(), row as u32);
    }
    // Inner join without a residual: the candidate arrays already ARE
    // the output pairs — probe-row order with chains in build-row order
    // — and `matched` is only observed by the FULL OUTER tail. Skip the
    // pair-rebuild pass entirely.
    if join == PhysJoinKind::Inner && residual.is_none() {
        return Ok((cand_rows, cand_bis));
    }
    // Vectorized residual: one `probe ++ build` frame over every
    // candidate pair, filtered in a single kernel pass.
    let pass: Option<Vec<bool>> = match residual {
        Some(kernel) if !cand_rows.is_empty() => {
            let frame = splice_output(batch, cand_rows.clone(), build_rows, build_width, &cand_bis);
            let sel = kernel.select(&frame)?;
            let mut mask = vec![false; cand_rows.len()];
            for i in sel {
                mask[i as usize] = true;
            }
            Some(mask)
        }
        _ => None,
    };
    let mut probe_sel: Vec<u32> = Vec::new();
    let mut build_idx: Vec<u32> = Vec::new();
    let mut cur = 0usize;
    for row in 0..rows as u32 {
        let mut any = false;
        while cur < cand_rows.len() && cand_rows[cur] == row {
            if pass.as_ref().is_none_or(|m| m[cur]) {
                any = true;
                matched[cand_bis[cur] as usize] = true;
                probe_sel.push(row);
                build_idx.push(cand_bis[cur]);
            }
            cur += 1;
        }
        if !any && preserve_probe {
            probe_sel.push(row);
            build_idx.push(u32::MAX);
        }
    }
    Ok((probe_sel, build_idx))
}

/// Build-probe hash join on plan-time-extracted equi-keys.
///
/// With a bounded [`MemoryBudget`] the build side accumulates through a
/// [`PartitionedSpiller`]; if it overflows, the join switches to a
/// Grace-style plan: the probe side is partitioned on the same hash
/// bits, resident partitions join first-class while spilled build
/// partitions rehydrate one at a time against their probe runs
/// (recursively re-partitioned on a rotated bit range when a partition
/// still does not fit). Every output row carries its serial emission
/// coordinates `(probe row, match ordinal)` — the FULL OUTER tail sorts
/// after all probe output by build order — so the merged result is
/// row-identical, order included, to the in-memory join.
pub struct HashJoinOp<'a> {
    probe: BoxedOperator<'a>,
    build: BoxedOperator<'a>,
    probe_width: usize,
    build_width: usize,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    residual: Option<VectorKernel>,
    join: PhysJoinKind,
    batch_size: usize,
    budget: MemoryBudget,
    state: Option<(BuildSide, JoinTable)>,
    /// Build partition groups (one per producer) awaiting the Grace
    /// probe phase.
    grace_build: Option<Vec<Vec<SpillPartition>>>,
    /// Pre-partitioned probe groups from a parallel scan; when absent
    /// the Grace phase partitions `probe` itself.
    grace_probe: Option<Vec<Vec<SpillPartition>>>,
    /// Streaming Grace output merge, emitted in serial order.
    grace_output: Option<MergeEmit>,
    pending: Option<PendingOutput<'a>>,
    probe_done: bool,
    tail: Option<(Vec<u32>, usize)>,
}

impl<'a> HashJoinOp<'a> {
    /// Create the operator; the hash table is built on first pull.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        probe: BoxedOperator<'a>,
        build: BoxedOperator<'a>,
        probe_width: usize,
        build_width: usize,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        residual: Option<BoundExpr>,
        join: PhysJoinKind,
        batch_size: usize,
    ) -> HashJoinOp<'a> {
        debug_assert_eq!(probe_keys.len(), build_keys.len());
        HashJoinOp {
            probe,
            build,
            probe_width,
            build_width,
            probe_keys,
            build_keys,
            residual: residual.as_ref().map(VectorKernel::compile),
            join,
            batch_size: batch_size.max(1),
            budget: MemoryBudget::unbounded(),
            state: None,
            grace_build: None,
            grace_probe: None,
            grace_output: None,
            pending: None,
            probe_done: false,
            tail: None,
        }
    }

    /// Attach a memory budget: a build side that overflows it spills to
    /// disk and the join runs Grace-style, partition at a time.
    pub fn with_budget(mut self, budget: MemoryBudget) -> HashJoinOp<'a> {
        self.budget = budget;
        self
    }

    /// Feed the join from pre-partitioned build/probe groups (one spiller
    /// result per parallel worker) instead of the input operators. The
    /// join goes straight to the Grace phase; the sequence tags must be
    /// globally unique and per-group ascending.
    pub(crate) fn with_prepartitioned(
        mut self,
        build_groups: Vec<Vec<SpillPartition>>,
        probe_groups: Vec<Vec<SpillPartition>>,
    ) -> HashJoinOp<'a> {
        self.grace_build = Some(build_groups);
        self.grace_probe = Some(probe_groups);
        self
    }

    fn ensure_built(&mut self) -> Result<(), EngineError> {
        if self.state.is_some() || self.grace_build.is_some() || self.grace_output.is_some() {
            return Ok(());
        }
        if !self.budget.is_bounded() {
            let side = BuildSide::consume(&mut self.build, self.build_width)?;
            // Sized from the exact build-row count: no rehash during build.
            let table = JoinTable::build(&side.rows, &self.build_keys);
            self.state = Some((side, table));
            return Ok(());
        }
        // Bounded budget: accumulate the build side through the radix
        // spiller. Each build row is tagged with its build sequence so
        // partition chains (and the FULL OUTER tail) keep build order.
        let mut spiller = PartitionedSpiller::new(self.budget.clone(), 0);
        let mut seq = 0u64;
        while let Some(batch) = self.build.next_batch()? {
            let hashes = hash_batch_keys(&batch, &self.build_keys);
            for r in 0..batch.num_rows() {
                spiller.push(hashes.hashes[r], seq, batch.materialize_row(r))?;
                seq += 1;
            }
        }
        if !spiller.spilled_any() {
            // Everything fit: reassemble build order and run the normal
            // streaming join — bounded-budget queries that fit behave
            // exactly like unbounded ones.
            let mut tuples: Vec<(u64, u64, Row)> = Vec::with_capacity(seq as usize);
            for part in spiller.finish()? {
                tuples.extend(part.load(&self.budget)?);
            }
            tuples.sort_by_key(|(_, s, _)| *s);
            let rows: Vec<Row> = tuples.into_iter().map(|(_, _, r)| r).collect();
            let table = JoinTable::build(&rows, &self.build_keys);
            self.state = Some((BuildSide::new(rows, self.build_width), table));
        } else {
            self.grace_build = Some(vec![spiller.finish()?]);
        }
        Ok(())
    }

    /// Join one probe batch against the in-memory build side.
    fn join_batch(&mut self, batch: &RowBatch<'a>) -> Result<(Vec<u32>, Vec<u32>), EngineError> {
        let (side, table) = self.state.as_mut().expect("built before probing");
        join_probe_batch(
            table,
            &side.rows,
            &mut side.matched,
            batch,
            &self.probe_keys,
            &self.build_keys,
            self.residual.as_ref(),
            self.join,
            self.build_width,
        )
    }

    /// The Grace phase: partition the probe side on the build's bit
    /// range (unless it arrived pre-partitioned), join partition pairs
    /// (recursing when a build partition still does not fit), and emit
    /// through a k-way merge over per-partition output runs — the serial
    /// emission order is restored without materializing the result.
    fn run_grace(&mut self) -> Result<MergeEmit, EngineError> {
        let build_groups = self.grace_build.take().expect("grace build partitions");
        let probe_groups = match self.grace_probe.take() {
            Some(groups) => groups,
            None => {
                let mut probe_spiller = PartitionedSpiller::new(self.budget.clone(), 0);
                let mut pseq = 0u64;
                while let Some(batch) = self.probe.next_batch()? {
                    let hashes = hash_batch_keys(&batch, &self.probe_keys);
                    for r in 0..batch.num_rows() {
                        probe_spiller.push(hashes.hashes[r], pseq, batch.materialize_row(r))?;
                        pseq += 1;
                    }
                }
                vec![probe_spiller.finish()?]
            }
        };

        // (probe seq, match ordinal) emission keys; the FULL OUTER tail
        // uses probe seq u64::MAX so it merges after every probe row,
        // ordered by global build sequence — exactly the serial tail
        // position. Each partition pair appends one key-ascending run.
        let mut runs = OutputRuns::new(self.budget.clone());
        let budget = self.budget.clone();
        let (probe_keys, build_keys) = (self.probe_keys.clone(), self.build_keys.clone());
        let (probe_width, build_width) = (self.probe_width, self.build_width);
        let (join, residual) = (self.join, self.residual.as_ref());
        let chunk_rows = self.batch_size;
        for_each_fitting_group_pair(
            build_groups,
            probe_groups,
            &budget,
            0,
            &mut |build_tuples, probe_merge| {
                // Build tuples arrive sequence-ascending, so chains built
                // by `JoinTable::build` iterate in global build order.
                let build_seqs: Vec<u64> = build_tuples.iter().map(|(_, s, _)| *s).collect();
                let build_rows: Vec<Row> = build_tuples.into_iter().map(|(_, _, r)| r).collect();
                let table = JoinTable::build(&build_rows, &build_keys);
                let mut matched = vec![false; build_rows.len()];
                runs.begin_run();
                probe_merge.for_each_chunk(chunk_rows, |chunk| {
                    let seqs: Vec<u64> = chunk.iter().map(|(_, s, _)| *s).collect();
                    let rows: Vec<Row> = chunk.into_iter().map(|(_, _, r)| r).collect();
                    let batch = RowBatch::from_rows(probe_width, rows);
                    let (probe_sel, build_idx) = join_probe_batch(
                        &table,
                        &build_rows,
                        &mut matched,
                        &batch,
                        &probe_keys,
                        &build_keys,
                        residual,
                        join,
                        build_width,
                    )?;
                    let mut ordinal = 0u64;
                    let mut prev_row = u32::MAX;
                    for (&row, &bi) in probe_sel.iter().zip(&build_idx) {
                        if row != prev_row {
                            ordinal = 0;
                            prev_row = row;
                        }
                        let mut out = batch.materialize_row(row as usize);
                        if bi == u32::MAX {
                            out.extend(std::iter::repeat_n(Value::Null, build_width));
                        } else {
                            out.extend(build_rows[bi as usize].iter().cloned());
                        }
                        runs.push(seqs[row as usize], ordinal, out)?;
                        ordinal += 1;
                    }
                    Ok(())
                })?;
                if join == PhysJoinKind::FullOuter {
                    for (bi, m) in matched.iter().enumerate() {
                        if !*m {
                            let mut out: Row = vec![Value::Null; probe_width];
                            out.extend(build_rows[bi].iter().cloned());
                            runs.push(u64::MAX, build_seqs[bi], out)?;
                        }
                    }
                }
                Ok(())
            },
        )?;
        runs.finish(probe_width + build_width, self.batch_size)
    }

    fn emit_pending(&mut self) -> Option<RowBatch<'a>> {
        let pending = self.pending.as_mut()?;
        let (side, _) = self.state.as_ref().expect("built before emitting");
        let out = pending.next_chunk(side, self.build_width, self.batch_size);
        if out.is_none() {
            self.pending = None;
        }
        out
    }
}

impl<'a> Operator<'a> for HashJoinOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        self.ensure_built()?;
        if self.grace_build.is_some() || self.grace_output.is_some() {
            if self.grace_output.is_none() {
                let merged = self.run_grace()?;
                self.grace_output = Some(merged);
            }
            return self.grace_output.as_mut().expect("just set").next_batch();
        }
        loop {
            if let Some(out) = self.emit_pending() {
                return Ok(Some(out));
            }
            if self.probe_done {
                break;
            }
            let Some(batch) = self.probe.next_batch()? else {
                self.probe_done = true;
                break;
            };
            let (probe_sel, build_idx) = self.join_batch(&batch)?;
            if !probe_sel.is_empty() {
                self.pending = Some(PendingOutput::new(batch, probe_sel, build_idx));
            }
        }
        if self.join == PhysJoinKind::FullOuter {
            let (side, _) = self.state.as_ref().expect("built above");
            let (ids, offset) = self
                .tail
                .get_or_insert_with(|| (unmatched_build_ids(side), 0));
            if *offset < ids.len() {
                let end = (*offset + self.batch_size).min(ids.len());
                let chunk = &ids[*offset..end];
                *offset = end;
                return Ok(Some(unmatched_build_batch(
                    &side.rows,
                    chunk,
                    self.probe_width,
                    self.build_width,
                )));
            }
        }
        Ok(None)
    }
}

/// Nested-loop join for CROSS joins and non-equi ON conditions. Output is
/// chunked at the executor batch size: a CROSS join of two 1k-row inputs
/// streams out in bounded batches instead of one million-row batch.
pub struct NestedLoopJoinOp<'a> {
    probe: BoxedOperator<'a>,
    build: BoxedOperator<'a>,
    probe_width: usize,
    build_width: usize,
    on: Option<BoundExpr>,
    join: PhysJoinKind,
    batch_size: usize,
    state: Option<BuildSide>,
    pending: Option<PendingOutput<'a>>,
    probe_done: bool,
    tail: Option<(Vec<u32>, usize)>,
}

impl<'a> NestedLoopJoinOp<'a> {
    /// Create the operator; the build side materializes on first pull.
    pub fn new(
        probe: BoxedOperator<'a>,
        build: BoxedOperator<'a>,
        probe_width: usize,
        build_width: usize,
        on: Option<BoundExpr>,
        join: PhysJoinKind,
        batch_size: usize,
    ) -> NestedLoopJoinOp<'a> {
        NestedLoopJoinOp {
            probe,
            build,
            probe_width,
            build_width,
            on,
            join,
            batch_size: batch_size.max(1),
            state: None,
            pending: None,
            probe_done: false,
            tail: None,
        }
    }

    fn emit_pending(&mut self) -> Option<RowBatch<'a>> {
        let pending = self.pending.as_mut()?;
        let side = self.state.as_ref().expect("built before emitting");
        let out = pending.next_chunk(side, self.build_width, self.batch_size);
        if out.is_none() {
            self.pending = None;
        }
        out
    }
}

impl<'a> Operator<'a> for NestedLoopJoinOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.state.is_none() {
            self.state = Some(BuildSide::consume(&mut self.build, self.build_width)?);
        }
        let preserve_probe = matches!(self.join, PhysJoinKind::LeftOuter | PhysJoinKind::FullOuter);
        loop {
            if let Some(out) = self.emit_pending() {
                return Ok(Some(out));
            }
            if self.probe_done {
                break;
            }
            let Some(batch) = self.probe.next_batch()? else {
                self.probe_done = true;
                break;
            };
            let side = self.state.as_mut().expect("built above");
            let mut probe_sel: Vec<u32> = Vec::new();
            let mut build_idx: Vec<u32> = Vec::new();
            for row in 0..batch.num_rows() {
                let mut matched = false;
                for (bi, build_row) in side.rows.iter().enumerate() {
                    let ok = match &self.on {
                        None => true,
                        Some(pred) => {
                            let joined =
                                JoinedRow::new(batch.row_view(row), self.probe_width, build_row);
                            pred.eval(&joined)?.as_bool() == Some(true)
                        }
                    };
                    if ok {
                        matched = true;
                        side.matched[bi] = true;
                        probe_sel.push(row as u32);
                        build_idx.push(bi as u32);
                    }
                }
                if !matched && preserve_probe {
                    probe_sel.push(row as u32);
                    build_idx.push(u32::MAX);
                }
            }
            if !probe_sel.is_empty() {
                self.pending = Some(PendingOutput::new(batch, probe_sel, build_idx));
            }
        }
        if self.join == PhysJoinKind::FullOuter {
            let side = self.state.as_ref().expect("built above");
            let (ids, offset) = self
                .tail
                .get_or_insert_with(|| (unmatched_build_ids(side), 0));
            if *offset < ids.len() {
                let end = (*offset + self.batch_size).min(ids.len());
                let chunk = &ids[*offset..end];
                *offset = end;
                return Ok(Some(unmatched_build_batch(
                    &side.rows,
                    chunk,
                    self.probe_width,
                    self.build_width,
                )));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{drain, StaticOp};
    use crate::types::DataType;
    use ivm_sql::ast::BinaryOp;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    fn col(idx: usize) -> BoundExpr {
        BoundExpr::Column {
            index: idx,
            ty: Some(DataType::Integer),
            name: format!("c{idx}"),
        }
    }

    fn gt(l: BoundExpr, r: i64) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(l),
            right: Box::new(BoundExpr::Literal(i(r))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_hash(
        probe: Vec<Row>,
        build: Vec<Row>,
        pw: usize,
        bw: usize,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        residual: Option<BoundExpr>,
        join: PhysJoinKind,
        batch_size: usize,
    ) -> Vec<Row> {
        let op = HashJoinOp::new(
            Box::new(StaticOp::from_rows(pw, probe, batch_size)),
            Box::new(StaticOp::from_rows(bw, build, batch_size)),
            pw,
            bw,
            probe_keys,
            build_keys,
            residual,
            join,
            batch_size,
        );
        drain(Box::new(op)).unwrap()
    }

    fn run_nl(
        probe: Vec<Row>,
        build: Vec<Row>,
        pw: usize,
        bw: usize,
        on: Option<BoundExpr>,
        join: PhysJoinKind,
    ) -> Vec<Row> {
        let op = NestedLoopJoinOp::new(
            Box::new(StaticOp::from_rows(pw, probe, 2)),
            Box::new(StaticOp::from_rows(bw, build, 2)),
            pw,
            bw,
            on,
            join,
            2,
        );
        drain(Box::new(op)).unwrap()
    }

    #[test]
    fn join_output_batches_are_bounded() {
        // CROSS 10 × 10 at batch_size 4: 100 output rows, every batch ≤ 4.
        let probe: Vec<Row> = (0..10).map(|v| vec![i(v)]).collect();
        let build: Vec<Row> = (0..10).map(|v| vec![i(v * 100)]).collect();
        let mut op = NestedLoopJoinOp::new(
            Box::new(StaticOp::from_rows(1, probe, 4)),
            Box::new(StaticOp::from_rows(1, build, 4)),
            1,
            1,
            None,
            PhysJoinKind::Inner,
            4,
        );
        let mut total = 0;
        while let Some(b) = op.next_batch().unwrap() {
            assert!(b.num_rows() <= 4, "oversized batch: {}", b.num_rows());
            total += b.num_rows();
        }
        assert_eq!(total, 100);

        // Skewed hash join: one probe row matches 50 build rows.
        let probe: Vec<Row> = vec![vec![i(7)]];
        let build: Vec<Row> = (0..50).map(|v| vec![i(7), i(v)]).collect();
        let mut op = HashJoinOp::new(
            Box::new(StaticOp::from_rows(1, probe, 8)),
            Box::new(StaticOp::from_rows(2, build, 8)),
            1,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            8,
        );
        let mut total = 0;
        while let Some(b) = op.next_batch().unwrap() {
            assert!(b.num_rows() <= 8, "oversized batch: {}", b.num_rows());
            total += b.num_rows();
        }
        assert_eq!(total, 50);
    }

    #[test]
    fn full_outer_tail_is_chunked() {
        // Empty probe, 10 unmatched build rows, batch_size 3 → tail chunks.
        let build: Vec<Row> = (0..10).map(|v| vec![i(v)]).collect();
        let mut op = HashJoinOp::new(
            Box::new(StaticOp::from_rows(1, vec![], 3)),
            Box::new(StaticOp::from_rows(1, build, 3)),
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            3,
        );
        let mut sizes = Vec::new();
        let mut total = 0;
        while let Some(b) = op.next_batch().unwrap() {
            sizes.push(b.num_rows());
            total += b.num_rows();
        }
        assert_eq!(total, 10);
        assert!(sizes.iter().all(|&s| s <= 3), "{sizes:?}");
    }

    #[test]
    fn inner_hash_join_matches_pairs() {
        let probe = vec![vec![i(1), i(10)], vec![i(2), i(20)], vec![i(3), i(30)]];
        let build = vec![vec![i(2), i(200)], vec![i(3), i(300)], vec![i(3), i(301)]];
        let mut out = run_hash(
            probe,
            build,
            2,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            2,
        );
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![i(2), i(20), i(2), i(200)],
                vec![i(3), i(30), i(3), i(300)],
                vec![i(3), i(30), i(3), i(301)],
            ]
        );
    }

    #[test]
    fn left_outer_pads_unmatched_probe_rows() {
        let probe = vec![vec![i(1)], vec![i(2)]];
        let build = vec![vec![i(2), i(200)]];
        let mut out = run_hash(
            probe,
            build,
            1,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::LeftOuter,
            8,
        );
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![i(1), Value::Null, Value::Null],
                vec![i(2), i(2), i(200)],
            ]
        );
    }

    #[test]
    fn full_outer_emits_both_unmatched_sides() {
        let probe = vec![vec![i(1)], vec![i(2)]];
        let build = vec![vec![i(2)], vec![i(3)]];
        let mut out = run_hash(
            probe,
            build,
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            1,
        );
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![Value::Null, i(3)],
                vec![i(1), Value::Null],
                vec![i(2), i(2)],
            ]
        );
    }

    #[test]
    fn null_keys_never_match_but_outer_rows_survive() {
        let probe = vec![vec![Value::Null], vec![i(1)]];
        let build = vec![vec![Value::Null], vec![i(1)]];
        let inner = run_hash(
            probe.clone(),
            build.clone(),
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            4,
        );
        assert_eq!(inner, vec![vec![i(1), i(1)]]);
        let mut full = run_hash(
            probe,
            build,
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            4,
        );
        full.sort();
        assert_eq!(
            full,
            vec![
                vec![Value::Null, Value::Null], // unmatched NULL-key build row
                vec![Value::Null, Value::Null], // unmatched NULL-key probe row
                vec![i(1), i(1)],
            ]
        );
    }

    #[test]
    fn residual_filters_candidate_pairs() {
        // probe(k, v) ⋈ build(k) ON k = k AND v > 15
        let probe = vec![vec![i(1), i(10)], vec![i(1), i(20)]];
        let build = vec![vec![i(1)]];
        let out = run_hash(
            probe,
            build,
            2,
            1,
            vec![0],
            vec![0],
            Some(gt(col(1), 15)),
            PhysJoinKind::Inner,
            4,
        );
        assert_eq!(out, vec![vec![i(1), i(20), i(1)]]);
    }

    #[test]
    fn empty_sides_behave() {
        let rows = vec![vec![i(1)], vec![i(2)]];
        // Empty build: inner yields nothing, left outer pads everything.
        assert!(run_hash(
            rows.clone(),
            vec![],
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            4,
        )
        .is_empty());
        let padded = run_hash(
            rows.clone(),
            vec![],
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::LeftOuter,
            4,
        );
        assert_eq!(
            padded,
            vec![vec![i(1), Value::Null], vec![i(2), Value::Null]]
        );
        // Empty probe: full outer still surfaces the build side.
        let mut tail = run_hash(
            vec![],
            rows,
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            4,
        );
        tail.sort();
        assert_eq!(tail, vec![vec![Value::Null, i(1)], vec![Value::Null, i(2)]]);
    }

    #[test]
    fn multi_batch_probe_streams() {
        // 10 probe rows in batches of 2 against a 3-row build side.
        let probe: Vec<Row> = (0..10).map(|v| vec![i(v % 3)]).collect();
        let build: Vec<Row> = (0..3).map(|v| vec![i(v), i(v * 100)]).collect();
        let out = run_hash(
            probe,
            build,
            1,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            2,
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| r[0] == r[1]));
    }

    /// Run the same join with an unbounded budget and a tiny one; the
    /// spilled result must be identical, rows AND order.
    #[allow(clippy::too_many_arguments)]
    fn assert_spill_identical(
        probe: Vec<Row>,
        build: Vec<Row>,
        pw: usize,
        bw: usize,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        residual: Option<BoundExpr>,
        join: PhysJoinKind,
        batch_size: usize,
    ) {
        let mk = |budget: MemoryBudget| {
            let op = HashJoinOp::new(
                Box::new(StaticOp::from_rows(pw, probe.clone(), batch_size)),
                Box::new(StaticOp::from_rows(bw, build.clone(), batch_size)),
                pw,
                bw,
                probe_keys.clone(),
                build_keys.clone(),
                residual.clone(),
                join,
                batch_size,
            )
            .with_budget(budget);
            drain(Box::new(op)).unwrap()
        };
        let unbounded = mk(MemoryBudget::unbounded());
        for limit in [1usize, 512, 16 * 1024] {
            let budget = MemoryBudget::with_limit(limit);
            let spilled = mk(budget.clone());
            assert_eq!(
                unbounded, spilled,
                "budget {limit} changed join output ({join:?})"
            );
            if limit == 1 && !build.is_empty() {
                assert!(budget.stats().spilled(), "1-byte budget must spill");
            }
        }
    }

    #[test]
    fn spilled_join_is_row_identical_to_in_memory() {
        // Skewed keys + NULLs + residual across every join kind.
        let probe: Vec<Row> = (0..300)
            .map(|i| {
                let k = if i % 11 == 0 {
                    Value::Null
                } else {
                    self::i(i % 17)
                };
                vec![k, self::i(i)]
            })
            .collect();
        let build: Vec<Row> = (0..200)
            .map(|i| {
                let k = if i % 13 == 0 {
                    Value::Null
                } else {
                    self::i(i % 23)
                };
                vec![k, self::i(i * 10)]
            })
            .collect();
        for join in [
            PhysJoinKind::Inner,
            PhysJoinKind::LeftOuter,
            PhysJoinKind::FullOuter,
        ] {
            assert_spill_identical(
                probe.clone(),
                build.clone(),
                2,
                2,
                vec![0],
                vec![0],
                None,
                join,
                7,
            );
            assert_spill_identical(
                probe.clone(),
                build.clone(),
                2,
                2,
                vec![0],
                vec![0],
                Some(gt(col(1), 40)),
                join,
                32,
            );
        }
        // Empty sides under a bounded budget.
        assert_spill_identical(
            probe.clone(),
            vec![],
            2,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::LeftOuter,
            4,
        );
        assert_spill_identical(
            vec![],
            build,
            2,
            2,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::FullOuter,
            4,
        );
    }

    #[test]
    fn bounded_budget_that_fits_uses_streaming_path() {
        // A build side far under the budget must not spill at all.
        let budget = MemoryBudget::with_limit(1 << 20);
        let op = HashJoinOp::new(
            Box::new(StaticOp::from_rows(
                1,
                (0..10).map(|v| vec![i(v)]).collect(),
                4,
            )),
            Box::new(StaticOp::from_rows(
                1,
                (0..10).map(|v| vec![i(v)]).collect(),
                4,
            )),
            1,
            1,
            vec![0],
            vec![0],
            None,
            PhysJoinKind::Inner,
            4,
        )
        .with_budget(budget.clone());
        assert_eq!(drain(Box::new(op)).unwrap().len(), 10);
        assert!(!budget.stats().spilled());
    }

    #[test]
    fn cross_join_via_nested_loop() {
        let probe = vec![vec![i(1)], vec![i(2)]];
        let build = vec![vec![i(10)], vec![i(20)]];
        let out = run_nl(probe, build, 1, 1, None, PhysJoinKind::Inner);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn non_equi_nested_loop_with_outer_padding() {
        // probe.v < build.v
        let lt = BoundExpr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(col(1)),
        };
        let probe = vec![vec![i(1)], vec![i(5)]];
        let build = vec![vec![i(3)]];
        let inner = run_nl(
            probe.clone(),
            build.clone(),
            1,
            1,
            Some(lt.clone()),
            PhysJoinKind::Inner,
        );
        assert_eq!(inner, vec![vec![i(1), i(3)]]);
        let mut left = run_nl(probe, build, 1, 1, Some(lt), PhysJoinKind::LeftOuter);
        left.sort();
        assert_eq!(left, vec![vec![i(1), i(3)], vec![i(5), Value::Null]]);
    }
}
