//! Join execution: hash join for equi-joins, nested loops otherwise.

use std::collections::HashMap;

use ivm_sql::ast::{BinaryOp, JoinKind};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{prepare_expr, Row};
use crate::expr::BoundExpr;
use crate::value::Value;

/// Execute a join between two materialized inputs.
///
/// Equality conjuncts of the form `left_col = right_col` are extracted and
/// drive a hash join; any residual predicate is applied to candidate pairs.
/// Joins with no equi-conjunct fall back to a nested loop.
pub(crate) fn execute_join(
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    lwidth: usize,
    rwidth: usize,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    catalog: &Catalog,
) -> Result<Vec<Row>, EngineError> {
    // RIGHT JOIN = mirrored LEFT JOIN with columns swapped back.
    if kind == JoinKind::Right {
        let on_swapped = on.map(|e| {
            let mut e = e.clone();
            // Columns [0..l) ↔ [l..l+r): right side becomes the build side.
            e.remap_columns(&|i| if i < lwidth { i + rwidth } else { i - lwidth });
            e
        });
        let mirrored = execute_join(
            rrows,
            lrows,
            rwidth,
            lwidth,
            JoinKind::Left,
            on_swapped.as_ref(),
            catalog,
        )?;
        return Ok(mirrored
            .into_iter()
            .map(|mut row| {
                let tail = row.split_off(rwidth);
                let mut out = tail;
                out.extend(row);
                out
            })
            .collect());
    }

    let on = match on {
        Some(e) => Some(prepare_expr(e, catalog)?),
        None => None,
    };
    let (equi, residual) = match &on {
        Some(pred) => split_equi_conjuncts(pred, lwidth),
        None => (Vec::new(), None),
    };

    let pairs: Vec<(usize, usize)> = if equi.is_empty() {
        nested_loop_pairs(&lrows, &rrows, lwidth, on.as_ref())?
    } else {
        hash_join_pairs(&lrows, &rrows, lwidth, &equi, residual.as_ref())?
    };

    let mut matched_left = vec![false; lrows.len()];
    let mut matched_right = vec![false; rrows.len()];
    let mut out = Vec::with_capacity(pairs.len());
    for (li, ri) in pairs {
        matched_left[li] = true;
        matched_right[ri] = true;
        let mut row = lrows[li].clone();
        row.extend(rrows[ri].iter().cloned());
        out.push(row);
    }

    // Outer padding.
    if matches!(kind, JoinKind::Left | JoinKind::Full) {
        for (li, l) in lrows.iter().enumerate() {
            if !matched_left[li] {
                let mut row = l.clone();
                row.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(row);
            }
        }
    }
    if kind == JoinKind::Full {
        for (ri, r) in rrows.iter().enumerate() {
            if !matched_right[ri] {
                let mut row: Row = std::iter::repeat_n(Value::Null, lwidth).collect();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Split a predicate into `(left_col, right_col)` equality pairs plus a
/// residual predicate (None when fully consumed). Only top-level AND
/// conjuncts are considered.
fn split_equi_conjuncts(
    pred: &BoundExpr,
    lwidth: usize,
) -> (Vec<(usize, usize)>, Option<BoundExpr>) {
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Vec<BoundExpr> = Vec::new();
    for c in conjuncts {
        if let BoundExpr::Binary { op: BinaryOp::Eq, left, right } = &c {
            if let (BoundExpr::Column { index: a, .. }, BoundExpr::Column { index: b, .. }) =
                (left.as_ref(), right.as_ref())
            {
                if *a < lwidth && *b >= lwidth {
                    equi.push((*a, *b - lwidth));
                    continue;
                }
                if *b < lwidth && *a >= lwidth {
                    equi.push((*b, *a - lwidth));
                    continue;
                }
            }
        }
        residual.push(c);
    }
    let residual = residual.into_iter().reduce(|l, r| BoundExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(l),
        right: Box::new(r),
    });
    (equi, residual)
}

fn flatten_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    if let BoundExpr::Binary { op: BinaryOp::And, left, right } = e {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

fn hash_join_pairs(
    lrows: &[Row],
    rrows: &[Row],
    lwidth: usize,
    equi: &[(usize, usize)],
    residual: Option<&BoundExpr>,
) -> Result<Vec<(usize, usize)>, EngineError> {
    // Build on the right side.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    'right: for (ri, r) in rrows.iter().enumerate() {
        let mut key = Vec::with_capacity(equi.len());
        for (_, rc) in equi {
            let v = r[*rc].clone();
            if v.is_null() {
                // SQL equality never matches NULL keys.
                continue 'right;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(ri);
    }
    let mut pairs = Vec::new();
    'left: for (li, l) in lrows.iter().enumerate() {
        let mut key = Vec::with_capacity(equi.len());
        for (lc, _) in equi {
            let v = l[*lc].clone();
            if v.is_null() {
                continue 'left;
            }
            key.push(v);
        }
        if let Some(candidates) = table.get(&key) {
            for &ri in candidates {
                if let Some(resid) = residual {
                    let mut row = l.clone();
                    row.extend(rrows[ri].iter().cloned());
                    if resid.eval(&row)?.as_bool() != Some(true) {
                        continue;
                    }
                }
                pairs.push((li, ri));
            }
        }
    }
    let _ = lwidth;
    Ok(pairs)
}

fn nested_loop_pairs(
    lrows: &[Row],
    rrows: &[Row],
    _lwidth: usize,
    on: Option<&BoundExpr>,
) -> Result<Vec<(usize, usize)>, EngineError> {
    let mut pairs = Vec::new();
    for (li, l) in lrows.iter().enumerate() {
        for (ri, r) in rrows.iter().enumerate() {
            let ok = match on {
                None => true,
                Some(pred) => {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    pred.eval(&row)?.as_bool() == Some(true)
                }
            };
            if ok {
                pairs.push((li, ri));
            }
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column { index: i, ty: Some(DataType::Integer), name: format!("c{i}") }
    }

    fn eq(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { op: BinaryOp::Eq, left: Box::new(l), right: Box::new(r) }
    }

    fn run(
        l: Vec<Row>,
        r: Vec<Row>,
        lw: usize,
        rw: usize,
        kind: JoinKind,
        on: Option<BoundExpr>,
    ) -> Vec<Row> {
        execute_join(l, r, lw, rw, kind, on.as_ref(), &Catalog::new()).unwrap()
    }

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    #[test]
    fn inner_hash_join() {
        let l = vec![vec![i(1), i(10)], vec![i(2), i(20)], vec![i(3), i(30)]];
        let r = vec![vec![i(2), i(200)], vec![i(3), i(300)], vec![i(3), i(301)]];
        let on = eq(col(0), col(2));
        let mut out = run(l, r, 2, 2, JoinKind::Inner, Some(on));
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![i(2), i(20), i(2), i(200)],
                vec![i(3), i(30), i(3), i(300)],
                vec![i(3), i(30), i(3), i(301)],
            ]
        );
    }

    #[test]
    fn left_join_pads_nulls() {
        let l = vec![vec![i(1)], vec![i(2)]];
        let r = vec![vec![i(2), i(200)]];
        let on = eq(col(0), col(1));
        let mut out = run(l, r, 1, 2, JoinKind::Left, Some(on));
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![i(1), Value::Null, Value::Null],
                vec![i(2), i(2), i(200)],
            ]
        );
    }

    #[test]
    fn right_join_mirrors() {
        let l = vec![vec![i(2), i(20)]];
        let r = vec![vec![i(1)], vec![i(2)]];
        let on = eq(col(0), col(2));
        let mut out = run(l, r, 2, 1, JoinKind::Right, Some(on));
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![Value::Null, Value::Null, i(1)],
                vec![i(2), i(20), i(2)],
            ]
        );
    }

    #[test]
    fn full_join() {
        let l = vec![vec![i(1)], vec![i(2)]];
        let r = vec![vec![i(2)], vec![i(3)]];
        let on = eq(col(0), col(1));
        let mut out = run(l, r, 1, 1, JoinKind::Full, Some(on));
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![Value::Null, i(3)],
                vec![i(1), Value::Null],
                vec![i(2), i(2)],
            ]
        );
    }

    #[test]
    fn null_keys_never_match() {
        let l = vec![vec![Value::Null]];
        let r = vec![vec![Value::Null]];
        let on = eq(col(0), col(1));
        let out = run(l, r, 1, 1, JoinKind::Inner, Some(on));
        assert!(out.is_empty());
    }

    #[test]
    fn cross_join() {
        let l = vec![vec![i(1)], vec![i(2)]];
        let r = vec![vec![i(10)], vec![i(20)]];
        let out = run(l, r, 1, 1, JoinKind::Cross, None);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn residual_predicate_applies() {
        // ON a = b AND c > 15
        let l = vec![vec![i(1), i(10)], vec![i(1), i(20)]];
        let r = vec![vec![i(1)]];
        let on = BoundExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(eq(col(0), col(2))),
            right: Box::new(BoundExpr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(col(1)),
                right: Box::new(BoundExpr::Literal(i(15))),
            }),
        };
        let out = run(l, r, 2, 1, JoinKind::Inner, Some(on));
        assert_eq!(out, vec![vec![i(1), i(20), i(1)]]);
    }

    #[test]
    fn non_equi_falls_back_to_nested_loop() {
        let l = vec![vec![i(1)], vec![i(5)]];
        let r = vec![vec![i(3)]];
        let on = BoundExpr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(col(1)),
        };
        let out = run(l, r, 1, 1, JoinKind::Inner, Some(on));
        assert_eq!(out, vec![vec![i(1), i(3)]]);
    }
}
