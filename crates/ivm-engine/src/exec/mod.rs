//! Plan interpreter: executes a [`LogicalPlan`] against the catalog.

mod aggregate;
mod join;

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::BoundExpr;
use crate::planner::{LogicalPlan, SetOpKind, SortKey};
use crate::value::Value;

/// A materialized result row.
pub type Row = Vec<Value>;

/// Execute a plan, materializing all rows.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Row>, EngineError> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let t = catalog.table(table)?;
            Ok(t.scan().map(|(_, row)| row).collect())
        }
        LogicalPlan::Dual { .. } => Ok(vec![vec![]]),
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute(input, catalog)?;
            let predicate = prepare_expr(predicate, catalog)?;
            let mut out = Vec::new();
            for row in rows {
                if predicate.eval(&row)?.as_bool() == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = execute(input, catalog)?;
            let exprs: Vec<BoundExpr> = exprs
                .iter()
                .map(|e| prepare_expr(e, catalog))
                .collect::<Result<_, _>>()?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in &exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        LogicalPlan::Aggregate { input, group, aggs, .. } => {
            let rows = execute(input, catalog)?;
            aggregate::execute_aggregate(rows, group, aggs, catalog)
        }
        LogicalPlan::Join { left, right, kind, on, .. } => {
            let lrows = execute(left, catalog)?;
            let rrows = execute(right, catalog)?;
            join::execute_join(
                lrows,
                rrows,
                left.schema().len(),
                right.schema().len(),
                *kind,
                on.as_ref(),
                catalog,
            )
        }
        LogicalPlan::SetOp { op, all, left, right, .. } => {
            let lrows = execute(left, catalog)?;
            let rrows = execute(right, catalog)?;
            Ok(execute_set_op(*op, *all, lrows, rrows))
        }
        LogicalPlan::Distinct { input } => {
            let rows = execute(input, catalog)?;
            let mut seen = HashSet::new();
            Ok(rows.into_iter().filter(|r| seen.insert(r.clone())).collect())
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = execute(input, catalog)?;
            sort_rows(rows, keys, catalog)
        }
        LogicalPlan::Limit { input, limit, offset } => {
            let rows = execute(input, catalog)?;
            let end = match limit {
                Some(l) => (*offset + *l).min(rows.len()),
                None => rows.len(),
            };
            let start = (*offset).min(rows.len());
            Ok(rows[start..end.max(start)].to_vec())
        }
    }
}

/// Replace [`BoundExpr::InSubquery`] with materialized [`BoundExpr::InSet`]
/// by executing the subquery once. Uncorrelated by construction.
pub fn prepare_expr(expr: &BoundExpr, catalog: &Catalog) -> Result<BoundExpr, EngineError> {
    Ok(match expr {
        BoundExpr::InSubquery { expr: probe, plan, negated } => {
            let rows = execute(plan, catalog)?;
            let mut set = HashSet::with_capacity(rows.len());
            let mut has_null = false;
            for row in rows {
                let v = row.into_iter().next().ok_or_else(|| {
                    EngineError::execution("IN subquery produced zero columns")
                })?;
                if v.is_null() {
                    has_null = true;
                } else {
                    set.insert(v);
                }
            }
            BoundExpr::InSet {
                expr: Box::new(prepare_expr(probe, catalog)?),
                set: Arc::new(set),
                has_null,
                negated: *negated,
            }
        }
        BoundExpr::Literal(_) | BoundExpr::Column { .. } | BoundExpr::InSet { .. } => {
            expr.clone()
        }
        BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(prepare_expr(left, catalog)?),
            right: Box::new(prepare_expr(right, catalog)?),
        },
        BoundExpr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(prepare_expr(expr, catalog)?),
        },
        BoundExpr::Case { branches, else_result } => BoundExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| Ok((prepare_expr(w, catalog)?, prepare_expr(t, catalog)?)))
                .collect::<Result<_, EngineError>>()?,
            else_result: match else_result {
                Some(e) => Some(Box::new(prepare_expr(e, catalog)?)),
                None => None,
            },
        },
        BoundExpr::Cast { expr, ty } => BoundExpr::Cast {
            expr: Box::new(prepare_expr(expr, catalog)?),
            ty: *ty,
        },
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(prepare_expr(expr, catalog)?),
            negated: *negated,
        },
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(prepare_expr(expr, catalog)?),
            list: list.iter().map(|e| prepare_expr(e, catalog)).collect::<Result<_, _>>()?,
            negated: *negated,
        },
        BoundExpr::Like { expr, pattern, negated } => BoundExpr::Like {
            expr: Box::new(prepare_expr(expr, catalog)?),
            pattern: Box::new(prepare_expr(pattern, catalog)?),
            negated: *negated,
        },
        BoundExpr::ScalarFn { func, args } => BoundExpr::ScalarFn {
            func: *func,
            args: args.iter().map(|e| prepare_expr(e, catalog)).collect::<Result<_, _>>()?,
        },
    })
}

fn execute_set_op(op: SetOpKind, all: bool, lrows: Vec<Row>, rrows: Vec<Row>) -> Vec<Row> {
    match (op, all) {
        (SetOpKind::Union, true) => {
            let mut out = lrows;
            out.extend(rrows);
            out
        }
        (SetOpKind::Union, false) => {
            let mut seen = HashSet::new();
            lrows
                .into_iter()
                .chain(rrows)
                .filter(|r| seen.insert(r.clone()))
                .collect()
        }
        (SetOpKind::Except, all) => {
            // Bag difference for ALL; set difference otherwise.
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for r in rrows {
                *counts.entry(r).or_insert(0) += 1;
            }
            if all {
                let mut out = Vec::new();
                for r in lrows {
                    match counts.get_mut(&r) {
                        Some(c) if *c > 0 => *c -= 1,
                        _ => out.push(r),
                    }
                }
                out
            } else {
                let mut seen = HashSet::new();
                lrows
                    .into_iter()
                    .filter(|r| !counts.contains_key(r) && seen.insert(r.clone()))
                    .collect()
            }
        }
        (SetOpKind::Intersect, all) => {
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for r in rrows {
                *counts.entry(r).or_insert(0) += 1;
            }
            if all {
                let mut out = Vec::new();
                for r in lrows {
                    if let Some(c) = counts.get_mut(&r) {
                        if *c > 0 {
                            *c -= 1;
                            out.push(r);
                        }
                    }
                }
                out
            } else {
                let mut seen = HashSet::new();
                lrows
                    .into_iter()
                    .filter(|r| counts.contains_key(r) && seen.insert(r.clone()))
                    .collect()
            }
        }
    }
}

fn sort_rows(
    mut rows: Vec<Row>,
    keys: &[SortKey],
    catalog: &Catalog,
) -> Result<Vec<Row>, EngineError> {
    let prepared: Vec<(BoundExpr, bool)> = keys
        .iter()
        .map(|k| Ok((prepare_expr(&k.expr, catalog)?, k.desc)))
        .collect::<Result<_, EngineError>>()?;
    // Pre-compute sort keys to keep evaluation errors out of the comparator.
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut kv = Vec::with_capacity(prepared.len());
        for (e, _) in &prepared {
            kv.push(e.eval(&row)?);
        }
        decorated.push((kv, row));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in prepared.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(decorated.into_iter().map(|(_, row)| row).collect())
}
