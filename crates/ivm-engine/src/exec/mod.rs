//! Batched, pull-based physical-operator executor.
//!
//! A [`crate::planner::LogicalPlan`] is lowered to a
//! [`PhysicalPlan`](crate::planner::physical::PhysicalPlan) (join sides,
//! equi-keys, and aggregate mode decided at plan time), then compiled into
//! a tree of [`Operator`]s. Each operator yields columnar [`RowBatch`]es on
//! demand: scans borrow storage columns zero-copy, filters and projections
//! push selection vectors instead of cloning rows, and only pipeline
//! breakers (hash tables, sorts) materialize values. `LIMIT` stops pulling
//! as soon as it is satisfied.
//!
//! At session parallelism above 1, plans instead run through the
//! morsel-driven parallel executor ([`parallel`]), which reuses these
//! operators and kernels inside each worker.

pub mod batch;
pub mod hash;
pub mod parallel;
pub mod spill;
pub mod typed;

mod aggregate;
mod join;
mod operators;

use std::collections::HashSet;
use std::sync::Arc;

pub use batch::{BatchBuilder, BatchRow, ColumnData, JoinedRow, RowBatch, DEFAULT_BATCH_SIZE};
pub use parallel::{
    execute_parallel, parallel_filter_row_ids, ParallelOptions, DEFAULT_MORSEL_SIZE,
};
pub use spill::{clean_orphan_spill_files, MemoryBudget, SpillStats};
pub use typed::{reset_typed_path_stats, typed_path_stats};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::BoundExpr;
use crate::planner::physical::{lower, PhysicalPlan};
use crate::planner::LogicalPlan;
use crate::value::Value;

/// A materialized result row.
pub type Row = Vec<Value>;

/// One node of a running pipeline: a pull-based source of row batches.
///
/// `next_batch` returns `Ok(None)` when exhausted; batches borrow storage
/// columns for the catalog lifetime `'a`.
pub trait Operator<'a> {
    /// Pull the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError>;
}

/// A boxed operator tied to the catalog borrow.
pub type BoxedOperator<'a> = Box<dyn Operator<'a> + 'a>;

/// Execute a logical plan with the default batch size, materializing all
/// result rows at the pipeline boundary.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Row>, EngineError> {
    execute_with_batch_size(plan, catalog, DEFAULT_BATCH_SIZE)
}

/// Execute a logical plan with an explicit batch size (clamped to ≥ 1).
pub fn execute_with_batch_size(
    plan: &LogicalPlan,
    catalog: &Catalog,
    batch_size: usize,
) -> Result<Vec<Row>, EngineError> {
    let physical = lower(plan, catalog)?;
    execute_physical(&physical, catalog, batch_size)
}

/// Run an already-lowered physical plan to completion (unbounded memory
/// budget: pipeline breakers never spill).
pub fn execute_physical(
    physical: &PhysicalPlan,
    catalog: &Catalog,
    batch_size: usize,
) -> Result<Vec<Row>, EngineError> {
    execute_physical_budgeted(physical, catalog, batch_size, &MemoryBudget::unbounded())
}

/// Run an already-lowered physical plan to completion under a memory
/// budget: hash joins, group tables, DISTINCT, and set operations spill
/// radix partitions to disk when the tracked state exceeds the budget
/// (see [`spill`]).
pub fn execute_physical_budgeted(
    physical: &PhysicalPlan,
    catalog: &Catalog,
    batch_size: usize,
    budget: &MemoryBudget,
) -> Result<Vec<Row>, EngineError> {
    let mut root = build_operator_budgeted(physical, catalog, batch_size.max(1), budget)?;
    let mut rows = Vec::new();
    while let Some(batch) = root.next_batch()? {
        rows.extend(batch.to_rows());
    }
    Ok(rows)
}

/// Compile a physical plan into a runnable operator tree with an
/// unbounded memory budget. See [`build_operator_budgeted`].
pub fn build_operator<'a>(
    plan: &PhysicalPlan,
    catalog: &'a Catalog,
    batch_size: usize,
) -> Result<BoxedOperator<'a>, EngineError> {
    build_operator_budgeted(plan, catalog, batch_size, &MemoryBudget::unbounded())
}

/// Compile a physical plan into a runnable operator tree. Expressions are
/// prepared here (`IN (subquery)` materialization), once per operator.
/// The memory budget threads into every spill-capable operator (hash
/// join, hash aggregate, DISTINCT, set operations).
pub fn build_operator_budgeted<'a>(
    plan: &PhysicalPlan,
    catalog: &'a Catalog,
    batch_size: usize,
    budget: &MemoryBudget,
) -> Result<BoxedOperator<'a>, EngineError> {
    Ok(match plan {
        PhysicalPlan::TableScan {
            table,
            predicate,
            index_eq,
            ..
        } => {
            let t = catalog.table(table)?;
            match predicate {
                None => Box::new(operators::ScanOp::new(t, batch_size)),
                Some(p) => {
                    let prepared = prepare_expr_with_batch_size(p, catalog, batch_size)?;
                    let kernel = Arc::new(crate::expr::VectorKernel::compile(&prepared));
                    // Equality conjuncts covered by an ART index answer the
                    // scan with a point read; the full predicate is still
                    // re-checked on the looked-up rows.
                    match (!index_eq.is_empty())
                        .then(|| t.equality_lookup(index_eq))
                        .flatten()
                    {
                        Some(ids) => Box::new(operators::ScanOp::index_point(t, ids, kernel)),
                        None => Box::new(operators::ScanOp::filtered(t, batch_size, kernel)),
                    }
                }
            }
        }
        PhysicalPlan::Dual => Box::new(operators::DualOp::new()),
        PhysicalPlan::Filter { input, predicate } => {
            let input = build_operator_budgeted(input, catalog, batch_size, budget)?;
            let predicate = prepare_expr_with_batch_size(predicate, catalog, batch_size)?;
            Box::new(operators::FilterOp::new(input, predicate))
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let input = build_operator_budgeted(input, catalog, batch_size, budget)?;
            let exprs: Vec<BoundExpr> = exprs
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, catalog, batch_size))
                .collect::<Result<_, _>>()?;
            Box::new(operators::ProjectOp::new(input, exprs))
        }
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            mode,
            ..
        } => {
            let child = build_operator_budgeted(input, catalog, batch_size, budget)?;
            let group: Vec<BoundExpr> = group
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, catalog, batch_size))
                .collect::<Result<_, _>>()?;
            let mut prepared_aggs = aggs.clone();
            for a in &mut prepared_aggs {
                if let Some(arg) = &a.arg {
                    a.arg = Some(prepare_expr_with_batch_size(arg, catalog, batch_size)?);
                }
            }
            // Planner sizing hint: pre-size the flat group table so
            // typical aggregations never rehash mid-fold.
            let hint = crate::planner::physical::table_size_hint(
                crate::planner::physical::estimate_physical_rows(plan, catalog),
            );
            Box::new(
                aggregate::HashAggregateOp::new(
                    child,
                    group,
                    prepared_aggs,
                    *mode,
                    batch_size,
                    hint,
                )
                .with_budget(budget.clone()),
            )
        }
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            join,
            ..
        } => {
            let probe_width = probe.schema().len();
            let build_width = build.schema().len();
            let probe = build_operator_budgeted(probe, catalog, batch_size, budget)?;
            let build = build_operator_budgeted(build, catalog, batch_size, budget)?;
            let residual = residual
                .as_ref()
                .map(|e| prepare_expr_with_batch_size(e, catalog, batch_size))
                .transpose()?;
            Box::new(
                join::HashJoinOp::new(
                    probe,
                    build,
                    probe_width,
                    build_width,
                    probe_keys.clone(),
                    build_keys.clone(),
                    residual,
                    *join,
                    batch_size,
                )
                .with_budget(budget.clone()),
            )
        }
        PhysicalPlan::NestedLoopJoin {
            probe,
            build,
            on,
            join,
            ..
        } => {
            let probe_width = probe.schema().len();
            let build_width = build.schema().len();
            let probe = build_operator_budgeted(probe, catalog, batch_size, budget)?;
            let build = build_operator_budgeted(build, catalog, batch_size, budget)?;
            let on = on
                .as_ref()
                .map(|e| prepare_expr_with_batch_size(e, catalog, batch_size))
                .transpose()?;
            Box::new(join::NestedLoopJoinOp::new(
                probe,
                build,
                probe_width,
                build_width,
                on,
                *join,
                batch_size,
            ))
        }
        PhysicalPlan::SetOp {
            op,
            all,
            left,
            right,
            ..
        } => {
            // Planner sizing hints: the seen-set holds at most the output
            // estimate, the right-side multiplicity map the right input.
            let seen_hint = crate::planner::physical::table_size_hint(
                crate::planner::physical::estimate_physical_rows(plan, catalog),
            );
            let right_hint = crate::planner::physical::table_size_hint(
                crate::planner::physical::estimate_physical_rows(right, catalog),
            );
            let left = build_operator_budgeted(left, catalog, batch_size, budget)?;
            let right = build_operator_budgeted(right, catalog, batch_size, budget)?;
            Box::new(
                operators::SetOpOp::new(*op, *all, left, right)
                    .with_size_hints(seen_hint, right_hint)
                    .with_budget(budget.clone(), batch_size),
            )
        }
        PhysicalPlan::Distinct { input } => {
            // Planner sizing hint: pre-size the seen-set so large
            // DISTINCTs never rehash mid-stream.
            let hint = crate::planner::physical::table_size_hint(
                crate::planner::physical::estimate_physical_rows(plan, catalog),
            );
            let input = build_operator_budgeted(input, catalog, batch_size, budget)?;
            Box::new(
                operators::DistinctOp::new(input)
                    .with_size_hint(hint)
                    .with_budget(budget.clone(), batch_size),
            )
        }
        PhysicalPlan::Sort { input, keys } => {
            let child = build_operator_budgeted(input, catalog, batch_size, budget)?;
            let prepared: Vec<(BoundExpr, bool)> = keys
                .iter()
                .map(|k| {
                    Ok((
                        prepare_expr_with_batch_size(&k.expr, catalog, batch_size)?,
                        k.desc,
                    ))
                })
                .collect::<Result<_, EngineError>>()?;
            Box::new(operators::SortOp::new(child, prepared, batch_size))
        }
        PhysicalPlan::TopK {
            input,
            keys,
            limit,
            offset,
        } => {
            let child = build_operator_budgeted(input, catalog, batch_size, budget)?;
            let prepared: Vec<(BoundExpr, bool)> = keys
                .iter()
                .map(|k| {
                    Ok((
                        prepare_expr_with_batch_size(&k.expr, catalog, batch_size)?,
                        k.desc,
                    ))
                })
                .collect::<Result<_, EngineError>>()?;
            Box::new(operators::TopKOp::new(
                child, prepared, *limit, *offset, batch_size,
            ))
        }
        PhysicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let input = build_operator_budgeted(input, catalog, batch_size, budget)?;
            Box::new(operators::LimitOp::new(input, *limit, *offset))
        }
    })
}

/// Replace [`BoundExpr::InSubquery`] with materialized [`BoundExpr::InSet`]
/// by executing the subquery once (through the batched pipeline, at the
/// default batch size). Uncorrelated by construction.
pub fn prepare_expr(expr: &BoundExpr, catalog: &Catalog) -> Result<BoundExpr, EngineError> {
    prepare_expr_with_batch_size(expr, catalog, DEFAULT_BATCH_SIZE)
}

/// [`prepare_expr`] with an explicit batch size for the subquery
/// pipeline.
pub fn prepare_expr_with_batch_size(
    expr: &BoundExpr,
    catalog: &Catalog,
    batch_size: usize,
) -> Result<BoundExpr, EngineError> {
    Ok(match expr {
        BoundExpr::InSubquery {
            expr: probe,
            plan,
            negated,
        } => {
            let rows = execute_with_batch_size(plan, catalog, batch_size)?;
            let mut set = HashSet::with_capacity(rows.len());
            let mut has_null = false;
            for row in rows {
                let v = row
                    .into_iter()
                    .next()
                    .ok_or_else(|| EngineError::execution("IN subquery produced zero columns"))?;
                if v.is_null() {
                    has_null = true;
                } else {
                    set.insert(v);
                }
            }
            BoundExpr::InSet {
                expr: Box::new(prepare_expr_with_batch_size(probe, catalog, batch_size)?),
                set: Arc::new(set),
                has_null,
                negated: *negated,
            }
        }
        BoundExpr::Literal(_) | BoundExpr::Column { .. } | BoundExpr::InSet { .. } => expr.clone(),
        BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(prepare_expr_with_batch_size(left, catalog, batch_size)?),
            right: Box::new(prepare_expr_with_batch_size(right, catalog, batch_size)?),
        },
        BoundExpr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(prepare_expr_with_batch_size(expr, catalog, batch_size)?),
        },
        BoundExpr::Case {
            branches,
            else_result,
        } => BoundExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        prepare_expr_with_batch_size(w, catalog, batch_size)?,
                        prepare_expr_with_batch_size(t, catalog, batch_size)?,
                    ))
                })
                .collect::<Result<_, EngineError>>()?,
            else_result: match else_result {
                Some(e) => Some(Box::new(prepare_expr_with_batch_size(
                    e, catalog, batch_size,
                )?)),
                None => None,
            },
        },
        BoundExpr::Cast { expr, ty } => BoundExpr::Cast {
            expr: Box::new(prepare_expr_with_batch_size(expr, catalog, batch_size)?),
            ty: *ty,
        },
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(prepare_expr_with_batch_size(expr, catalog, batch_size)?),
            negated: *negated,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(prepare_expr_with_batch_size(expr, catalog, batch_size)?),
            list: list
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, catalog, batch_size))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(prepare_expr_with_batch_size(expr, catalog, batch_size)?),
            pattern: Box::new(prepare_expr_with_batch_size(pattern, catalog, batch_size)?),
            negated: *negated,
        },
        BoundExpr::ScalarFn { func, args } => BoundExpr::ScalarFn {
            func: *func,
            args: args
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, catalog, batch_size))
                .collect::<Result<_, _>>()?,
        },
    })
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Helpers for operator-level unit tests.

    use super::*;
    use std::collections::VecDeque;

    /// An operator replaying prefabricated batches.
    pub(crate) struct StaticOp<'a> {
        batches: VecDeque<RowBatch<'a>>,
    }

    impl<'a> StaticOp<'a> {
        /// Chop `rows` into batches of `batch_size`.
        pub(crate) fn from_rows(width: usize, rows: Vec<Row>, batch_size: usize) -> StaticOp<'a> {
            let mut batches = VecDeque::new();
            let mut it = rows.into_iter().peekable();
            while it.peek().is_some() {
                let chunk: Vec<Row> = it.by_ref().take(batch_size.max(1)).collect();
                batches.push_back(RowBatch::from_rows(width, chunk));
            }
            StaticOp { batches }
        }
    }

    impl<'a> Operator<'a> for StaticOp<'a> {
        fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
            Ok(self.batches.pop_front())
        }
    }

    /// Drain an operator into materialized rows.
    pub(crate) fn drain<'a>(mut op: BoxedOperator<'a>) -> Result<Vec<Row>, EngineError> {
        let mut rows = Vec::new();
        while let Some(batch) = op.next_batch()? {
            rows.extend(batch.to_rows());
        }
        Ok(rows)
    }
}
