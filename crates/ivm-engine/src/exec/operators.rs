//! Streaming operators: scan, filter, project, limit, sort, top-k,
//! distinct, and set operations.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::error::EngineError;
use crate::exec::batch::{ColumnData, RowBatch, DEFAULT_BATCH_SIZE};
use crate::exec::hash::{hash_batch_rows, RowCounter, RowSet};
use crate::exec::spill::{
    for_each_fitting_group, for_each_fitting_group_pair, MemoryBudget, MergeEmit, OutputRuns,
    PartitionGroups, PartitionedSpiller,
};
use crate::exec::{BoxedOperator, Operator, Row};
use crate::expr::{BoundExpr, VectorKernel};
use crate::planner::SetOpKind;
use crate::storage::Table;
use crate::value::Value;

/// Zero-copy batched scan over a base table, optionally with a pushed-down
/// predicate evaluated per storage chunk (and answered through an ART
/// index for covered equality keys).
pub struct ScanOp<'a> {
    batches: Box<dyn Iterator<Item = Result<RowBatch<'a>, EngineError>> + 'a>,
}

impl<'a> ScanOp<'a> {
    /// Scan `table` in batches of `batch_size` live rows.
    pub fn new(table: &'a Table, batch_size: usize) -> ScanOp<'a> {
        ScanOp {
            batches: Box::new(table.scan_batches(batch_size).map(Ok)),
        }
    }

    /// Scan with a pushed-down predicate: the kernel runs once per storage
    /// chunk and only selected rows flow downstream.
    pub fn filtered(table: &'a Table, batch_size: usize, kernel: Arc<VectorKernel>) -> ScanOp<'a> {
        ScanOp {
            batches: Box::new(table.scan_batches_filtered(batch_size, kernel)),
        }
    }

    /// Index point read: emit the rows with the given ids (already proven
    /// live by the index), re-checked against the full pushed predicate.
    pub fn index_point(
        table: &'a Table,
        row_ids: Vec<u64>,
        kernel: Arc<VectorKernel>,
    ) -> ScanOp<'a> {
        let batches = std::iter::once_with(move || {
            if row_ids.is_empty() {
                return Ok(None);
            }
            let batch = table.batch_from_row_ids(&row_ids);
            let keep = kernel.select(&batch)?;
            Ok(batch.retain(keep))
        })
        .filter_map(|r: Result<Option<RowBatch<'a>>, EngineError>| r.transpose());
        ScanOp {
            batches: Box::new(batches),
        }
    }
}

impl<'a> Operator<'a> for ScanOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        self.batches.next().transpose()
    }
}

/// The one-row, zero-column relation (`SELECT 1` with no FROM).
pub struct DualOp {
    emitted: bool,
}

impl DualOp {
    /// A fresh dual source.
    pub fn new() -> DualOp {
        DualOp { emitted: false }
    }
}

impl<'a> Operator<'a> for DualOp {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.emitted {
            return Ok(None);
        }
        self.emitted = true;
        Ok(Some(RowBatch::new(vec![], 1)))
    }
}

/// Streaming filter: runs the compiled predicate kernel once per batch and
/// forwards a selection vector; values are never copied.
pub struct FilterOp<'a> {
    input: BoxedOperator<'a>,
    kernel: VectorKernel,
}

impl<'a> FilterOp<'a> {
    /// Filter `input` by a prepared predicate (compiled to a kernel here).
    pub fn new(input: BoxedOperator<'a>, predicate: BoundExpr) -> FilterOp<'a> {
        FilterOp {
            input,
            kernel: VectorKernel::compile(&predicate),
        }
    }
}

impl<'a> Operator<'a> for FilterOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        while let Some(batch) = self.input.next_batch()? {
            let keep = self.kernel.select(&batch)?;
            if let Some(out) = batch.retain(keep) {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// One projection output column: either a zero-copy column passthrough or
/// a compiled expression kernel.
enum ProjColumn {
    Passthrough(usize),
    Computed(VectorKernel),
}

/// Streaming projection. Plain column references pass their chunk through
/// (zero-copy); computed expressions run as vectorized kernels into owned
/// columns.
pub struct ProjectOp<'a> {
    input: BoxedOperator<'a>,
    columns: Vec<ProjColumn>,
}

impl<'a> ProjectOp<'a> {
    /// Project `input` through prepared expressions.
    pub fn new(input: BoxedOperator<'a>, exprs: Vec<BoundExpr>) -> ProjectOp<'a> {
        let columns = exprs
            .iter()
            .map(|expr| match expr {
                BoundExpr::Column { index, .. } => ProjColumn::Passthrough(*index),
                _ => ProjColumn::Computed(VectorKernel::compile(expr)),
            })
            .collect();
        ProjectOp { input, columns }
    }
}

impl<'a> Operator<'a> for ProjectOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let rows = batch.num_rows();
        let mut columns = Vec::with_capacity(self.columns.len());
        for proj in &self.columns {
            match proj {
                ProjColumn::Passthrough(index) if *index < batch.width() => {
                    columns.push(batch.column(*index).clone());
                }
                ProjColumn::Passthrough(index) => {
                    return Err(EngineError::execution(format!(
                        "column index {index} out of range"
                    )));
                }
                ProjColumn::Computed(kernel) => {
                    columns.push(ColumnData::owned(kernel.eval_column(&batch)?));
                }
            }
        }
        Ok(Some(RowBatch::new(columns, rows)))
    }
}

/// Streaming LIMIT/OFFSET with early termination: once the limit is
/// reached the child is never pulled again.
pub struct LimitOp<'a> {
    input: BoxedOperator<'a>,
    to_skip: usize,
    remaining: Option<usize>,
}

impl<'a> LimitOp<'a> {
    /// Skip `offset` rows, then emit up to `limit` rows.
    pub fn new(input: BoxedOperator<'a>, limit: Option<usize>, offset: usize) -> LimitOp<'a> {
        LimitOp {
            input,
            to_skip: offset,
            remaining: limit,
        }
    }
}

impl<'a> Operator<'a> for LimitOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        loop {
            if self.remaining == Some(0) {
                return Ok(None);
            }
            let Some(batch) = self.input.next_batch()? else {
                return Ok(None);
            };
            let n = batch.num_rows();
            if self.to_skip >= n {
                self.to_skip -= n;
                continue;
            }
            let start = self.to_skip;
            self.to_skip = 0;
            let available = n - start;
            let take = match self.remaining {
                Some(r) => available.min(r),
                None => available,
            };
            if let Some(r) = &mut self.remaining {
                *r -= take;
            }
            let out = if start == 0 && take == n {
                batch
            } else {
                batch.slice(start, take)
            };
            return Ok(Some(out));
        }
    }
}

/// Full sort: a pipeline breaker that materializes its input, sorts by
/// pre-computed keys, and re-emits in batches.
pub struct SortOp<'a> {
    input: BoxedOperator<'a>,
    keys: Vec<(BoundExpr, bool)>,
    batch_size: usize,
    output: Option<VecDeque<RowBatch<'a>>>,
}

impl<'a> SortOp<'a> {
    /// Sort `input` by prepared `(expr, descending)` keys, major first.
    pub fn new(
        input: BoxedOperator<'a>,
        keys: Vec<(BoundExpr, bool)>,
        batch_size: usize,
    ) -> SortOp<'a> {
        SortOp {
            input,
            keys,
            batch_size,
            output: None,
        }
    }

    fn drain_and_sort(&mut self) -> Result<VecDeque<RowBatch<'a>>, EngineError> {
        // Decorate: evaluate the sort keys once per row, against the batch.
        let mut decorated: Vec<(Vec<Value>, Row)> = Vec::new();
        while let Some(batch) = self.input.next_batch()? {
            for row in 0..batch.num_rows() {
                let view = batch.row_view(row);
                let mut kv = Vec::with_capacity(self.keys.len());
                for (expr, _) in &self.keys {
                    kv.push(expr.eval(&view)?);
                }
                decorated.push((kv, batch.materialize_row(row)));
            }
        }
        let keys = &self.keys;
        decorated.sort_by(|(ka, _), (kb, _)| {
            for (i, (_, desc)) in keys.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let width = decorated.first().map_or(0, |(_, r)| r.len());
        let mut out = VecDeque::new();
        let mut chunk: Vec<Row> = Vec::with_capacity(self.batch_size.min(decorated.len()));
        for (_, row) in decorated {
            chunk.push(row);
            if chunk.len() == self.batch_size {
                out.push_back(RowBatch::from_rows(width, std::mem::take(&mut chunk)));
            }
        }
        if !chunk.is_empty() {
            out.push_back(RowBatch::from_rows(width, chunk));
        }
        Ok(out)
    }
}

impl<'a> Operator<'a> for SortOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.output.is_none() {
            let sorted = self.drain_and_sort()?;
            self.output = Some(sorted);
        }
        Ok(self.output.as_mut().and_then(VecDeque::pop_front))
    }
}

/// Compare two decorated key vectors under `(expr, descending)` specs.
fn cmp_keys(a: &[Value], b: &[Value], keys: &[(BoundExpr, bool)]) -> std::cmp::Ordering {
    for (i, (_, desc)) in keys.iter().enumerate() {
        let ord = a[i].total_cmp(&b[i]);
        let ord = if *desc { ord.reverse() } else { ord };
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// `ORDER BY … LIMIT k [OFFSET o]` through a bounded binary max-heap of
/// `k + o` rows: O(n log k) instead of a full sort, and memory bounded by
/// `min(k + o, input rows)`. The *retained set* is tie-stable (on equal
/// keys the earlier input row survives eviction), but tied rows may be
/// emitted in a different relative order than the stable full sort — SQL
/// leaves tie order unspecified.
pub struct TopKOp<'a> {
    input: BoxedOperator<'a>,
    keys: Vec<(BoundExpr, bool)>,
    limit: usize,
    offset: usize,
    batch_size: usize,
    output: Option<VecDeque<RowBatch<'a>>>,
}

impl<'a> TopKOp<'a> {
    /// Keep the first `limit` rows after `offset` under the sort order.
    pub fn new(
        input: BoxedOperator<'a>,
        keys: Vec<(BoundExpr, bool)>,
        limit: usize,
        offset: usize,
        batch_size: usize,
    ) -> TopKOp<'a> {
        TopKOp {
            input,
            keys,
            limit,
            offset,
            batch_size,
            output: None,
        }
    }

    /// Sift the root down (`heap[0]` is the *worst* retained row).
    fn sift_down(heap: &mut [(Vec<Value>, Row)], keys: &[(BoundExpr, bool)]) {
        let len = heap.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < len && cmp_keys(&heap[l].0, &heap[largest].0, keys).is_gt() {
                largest = l;
            }
            if r < len && cmp_keys(&heap[r].0, &heap[largest].0, keys).is_gt() {
                largest = r;
            }
            if largest == i {
                return;
            }
            heap.swap(i, largest);
            i = largest;
        }
    }

    fn sift_up(heap: &mut [(Vec<Value>, Row)], keys: &[(BoundExpr, bool)]) {
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp_keys(&heap[i].0, &heap[parent].0, keys).is_gt() {
                heap.swap(i, parent);
                i = parent;
            } else {
                return;
            }
        }
    }

    fn drain_and_collect(&mut self) -> Result<VecDeque<RowBatch<'a>>, EngineError> {
        let k = self.limit.saturating_add(self.offset);
        if k == 0 {
            return Ok(VecDeque::new());
        }
        // Never preallocate from the user-supplied LIMIT (a huge k would
        // abort on allocation); the heap grows only with rows seen.
        let mut heap: Vec<(Vec<Value>, Row)> = Vec::with_capacity(k.min(DEFAULT_BATCH_SIZE));
        while let Some(batch) = self.input.next_batch()? {
            for row in 0..batch.num_rows() {
                let view = batch.row_view(row);
                let mut kv = Vec::with_capacity(self.keys.len());
                for (expr, _) in &self.keys {
                    kv.push(expr.eval(&view)?);
                }
                if heap.len() < k {
                    heap.push((kv, batch.materialize_row(row)));
                    Self::sift_up(&mut heap, &self.keys);
                } else if cmp_keys(&kv, &heap[0].0, &self.keys).is_lt() {
                    // Strictly better than the worst retained row; on ties
                    // the earlier row stays, matching the stable sort.
                    heap[0] = (kv, batch.materialize_row(row));
                    Self::sift_down(&mut heap, &self.keys);
                }
            }
        }
        let keys = &self.keys;
        heap.sort_by(|(ka, _), (kb, _)| cmp_keys(ka, kb, keys));
        let width = heap.first().map_or(0, |(_, r)| r.len());
        let mut out = VecDeque::new();
        let mut chunk: Vec<Row> = Vec::new();
        for (_, row) in heap.into_iter().skip(self.offset) {
            chunk.push(row);
            if chunk.len() == self.batch_size {
                out.push_back(RowBatch::from_rows(width, std::mem::take(&mut chunk)));
            }
        }
        if !chunk.is_empty() {
            out.push_back(RowBatch::from_rows(width, chunk));
        }
        Ok(out)
    }
}

impl<'a> Operator<'a> for TopKOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.output.is_none() {
            let collected = self.drain_and_collect()?;
            self.output = Some(collected);
        }
        Ok(self.output.as_mut().and_then(VecDeque::pop_front))
    }
}

/// Streaming duplicate elimination over whole rows: each batch is hashed
/// chunk-at-a-time and deduplicated against a flat row set (rows only
/// materialize on first sight).
///
/// With a bounded [`MemoryBudget`] the input instead routes through a
/// [`PartitionedSpiller`] on the whole-row hash and deduplicates one
/// radix partition at a time; first-seen rows carry their global
/// sequence number and merge back into the exact streaming output order.
pub struct DistinctOp<'a> {
    input: BoxedOperator<'a>,
    seen: RowSet,
    budget: MemoryBudget,
    batch_size: usize,
    /// Pre-partitioned input groups (one per parallel worker, hashed on
    /// the whole row) plus the row width.
    prepart: Option<(PartitionGroups, usize)>,
    spilled_output: Option<MergeEmit>,
}

impl<'a> DistinctOp<'a> {
    /// Deduplicate `input`.
    pub fn new(input: BoxedOperator<'a>) -> DistinctOp<'a> {
        DistinctOp {
            input,
            seen: RowSet::new(),
            budget: MemoryBudget::unbounded(),
            batch_size: DEFAULT_BATCH_SIZE,
            prepart: None,
            spilled_output: None,
        }
    }

    /// Deduplicate pre-partitioned input groups of `width`-column rows
    /// instead of draining `input`.
    pub(crate) fn with_prepartitioned(
        mut self,
        groups: PartitionGroups,
        width: usize,
    ) -> DistinctOp<'a> {
        self.prepart = Some((groups, width));
        self
    }

    /// Pre-size the seen-set from the planner's cardinality estimate so
    /// large DISTINCTs never rehash mid-stream (0 = no hint).
    pub fn with_size_hint(mut self, hint: usize) -> DistinctOp<'a> {
        if hint > 0 {
            self.seen = RowSet::with_capacity(hint);
        }
        self
    }

    /// Attach a memory budget (and the batch size spilled output is
    /// re-chunked at).
    pub fn with_budget(mut self, budget: MemoryBudget, batch_size: usize) -> DistinctOp<'a> {
        self.budget = budget;
        self.batch_size = batch_size.max(1);
        self
    }

    fn run_spilled(&mut self) -> Result<MergeEmit, EngineError> {
        let (groups, width) = match self.prepart.take() {
            Some((groups, width)) => (groups, width),
            None => {
                let mut spiller = PartitionedSpiller::new(self.budget.clone(), 0);
                let mut seq = 0u64;
                let mut width = 0usize;
                while let Some(batch) = self.input.next_batch()? {
                    width = batch.width();
                    let hashes = hash_batch_rows(&batch);
                    for (r, &hash) in hashes.iter().enumerate() {
                        spiller.push(hash, seq, batch.materialize_row(r))?;
                        seq += 1;
                    }
                }
                (vec![spiller.finish()?], width)
            }
        };
        let mut runs = OutputRuns::new(self.budget.clone());
        let budget = self.budget.clone();
        for_each_fitting_group(groups, &budget, 0, &mut |tuples| {
            let mut seen = RowSet::new();
            runs.begin_run();
            for (hash, seq, row) in tuples {
                if seen.insert_row(hash, row.clone()) {
                    runs.push(seq, 0, row)?;
                }
            }
            Ok(())
        })?;
        runs.finish(width, self.batch_size)
    }
}

impl<'a> Operator<'a> for DistinctOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.budget.is_bounded() || self.prepart.is_some() || self.spilled_output.is_some() {
            if self.spilled_output.is_none() {
                let merged = self.run_spilled()?;
                self.spilled_output = Some(merged);
            }
            return self.spilled_output.as_mut().expect("just set").next_batch();
        }
        while let Some(batch) = self.input.next_batch()? {
            let hashes = hash_batch_rows(&batch);
            self.seen.begin_batch(&batch);
            let mut keep: Vec<u32> = Vec::new();
            for (row, &hash) in hashes.iter().enumerate() {
                if self.seen.insert_batch_row(hash, &batch, row) {
                    keep.push(row as u32);
                }
            }
            if let Some(out) = batch.retain(keep) {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// UNION / EXCEPT / INTERSECT with bag (`ALL`) or set semantics.
///
/// UNION streams both inputs; EXCEPT/INTERSECT materialize the right side
/// into a flat multiplicity map, then stream the left side against it.
/// Rows hash once per batch through the chunk-at-a-time kernel.
///
/// With a bounded [`MemoryBudget`], the "seen" set (UNION) or the right
/// multiplicity map (EXCEPT/INTERSECT) can exceed memory, so both sides
/// route through [`PartitionedSpiller`]s on the whole-row hash and the
/// operation runs one radix partition pair at a time — equal rows always
/// share a partition, so per-partition multiplicity consumption matches
/// the streaming order exactly, and sequence tags restore the output
/// order. `UNION ALL` is a pure concatenation and never spills.
pub struct SetOpOp<'a> {
    op: SetOpKind,
    all: bool,
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    left_done: bool,
    right_counts: Option<RowCounter>,
    seen: RowSet,
    right_hint: usize,
    budget: MemoryBudget,
    batch_size: usize,
    /// Pre-partitioned combined left++right groups for UNION (left
    /// sequences sort before right sequences) plus the row width.
    prepart_union: Option<(PartitionGroups, usize)>,
    /// Pre-partitioned (right groups, left groups, width) for
    /// EXCEPT / INTERSECT.
    prepart_pair: Option<(PartitionGroups, PartitionGroups, usize)>,
    spilled_output: Option<MergeEmit>,
}

impl<'a> SetOpOp<'a> {
    /// Combine `left` and `right` under the given set operation.
    pub fn new(
        op: SetOpKind,
        all: bool,
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
    ) -> SetOpOp<'a> {
        SetOpOp {
            op,
            all,
            left,
            right,
            left_done: false,
            right_counts: None,
            seen: RowSet::new(),
            right_hint: 0,
            budget: MemoryBudget::unbounded(),
            batch_size: DEFAULT_BATCH_SIZE,
            prepart_union: None,
            prepart_pair: None,
            spilled_output: None,
        }
    }

    /// Attach a memory budget (and the batch size spilled output is
    /// re-chunked at).
    pub fn with_budget(mut self, budget: MemoryBudget, batch_size: usize) -> SetOpOp<'a> {
        self.budget = budget;
        self.batch_size = batch_size.max(1);
        self
    }

    /// UNION from pre-partitioned combined groups of `width`-column rows;
    /// left-input sequence tags must sort before right-input tags.
    pub(crate) fn with_prepartitioned_union(
        mut self,
        groups: PartitionGroups,
        width: usize,
    ) -> SetOpOp<'a> {
        self.prepart_union = Some((groups, width));
        self
    }

    /// EXCEPT / INTERSECT from pre-partitioned right and left groups of
    /// `width`-column rows.
    pub(crate) fn with_prepartitioned_pair(
        mut self,
        right_groups: PartitionGroups,
        left_groups: PartitionGroups,
        width: usize,
    ) -> SetOpOp<'a> {
        self.prepart_pair = Some((right_groups, left_groups, width));
        self
    }

    /// Pre-size the seen-set (output estimate) and the right-side
    /// multiplicity map (right-input estimate) from planner cardinality
    /// hints (0 = no hint).
    pub fn with_size_hints(mut self, seen_hint: usize, right_hint: usize) -> SetOpOp<'a> {
        if seen_hint > 0 {
            self.seen = RowSet::with_capacity(seen_hint);
        }
        if right_hint > 0 {
            self.right_hint = right_hint;
        }
        self
    }

    /// Drain one side into a spiller, tagging rows with sequence numbers
    /// starting at `seq`; returns the next free sequence number.
    fn drain_side(
        side: &mut BoxedOperator<'a>,
        spiller: &mut PartitionedSpiller,
        mut seq: u64,
        width: &mut usize,
    ) -> Result<u64, EngineError> {
        while let Some(batch) = side.next_batch()? {
            *width = batch.width();
            let hashes = hash_batch_rows(&batch);
            for (r, &hash) in hashes.iter().enumerate() {
                spiller.push(hash, seq, batch.materialize_row(r))?;
                seq += 1;
            }
        }
        Ok(seq)
    }

    /// Spill path for `UNION` (set semantics): a partitioned DISTINCT
    /// over left-then-right concatenation, merge-emitted in sequence
    /// order.
    fn run_spilled_union(&mut self) -> Result<MergeEmit, EngineError> {
        let (groups, width) = match self.prepart_union.take() {
            Some(pre) => pre,
            None => {
                let mut spiller = PartitionedSpiller::new(self.budget.clone(), 0);
                let mut width = 0usize;
                let seq = Self::drain_side(&mut self.left, &mut spiller, 0, &mut width)?;
                Self::drain_side(&mut self.right, &mut spiller, seq, &mut width)?;
                (vec![spiller.finish()?], width)
            }
        };
        let budget = self.budget.clone();
        let mut runs = OutputRuns::new(budget.clone());
        for_each_fitting_group(groups, &budget, 0, &mut |tuples| {
            let mut seen = RowSet::new();
            runs.begin_run();
            for (hash, seq, row) in tuples {
                if seen.insert_row(hash, row.clone()) {
                    runs.push(seq, 0, row)?;
                }
            }
            Ok(())
        })?;
        runs.finish(width, self.batch_size)
    }

    /// Spill path for EXCEPT / INTERSECT: right partitions build the
    /// multiplicity maps, left partitions stream against them pairwise,
    /// and kept rows merge-emit in left sequence order.
    fn run_spilled_against_counts(&mut self) -> Result<MergeEmit, EngineError> {
        let (right_groups, left_groups, width) = match self.prepart_pair.take() {
            Some(pre) => pre,
            None => {
                let mut right_spiller = PartitionedSpiller::new(self.budget.clone(), 0);
                let mut left_spiller = PartitionedSpiller::new(self.budget.clone(), 0);
                let mut rwidth = 0usize;
                let mut width = 0usize;
                Self::drain_side(&mut self.right, &mut right_spiller, 0, &mut rwidth)?;
                Self::drain_side(&mut self.left, &mut left_spiller, 0, &mut width)?;
                (
                    vec![right_spiller.finish()?],
                    vec![left_spiller.finish()?],
                    width,
                )
            }
        };
        let except = self.op == SetOpKind::Except;
        let all = self.all;
        let budget = self.budget.clone();
        let chunk_rows = self.batch_size;
        let mut runs = OutputRuns::new(budget.clone());
        for_each_fitting_group_pair(
            right_groups,
            left_groups,
            &budget,
            0,
            &mut |right_tuples, left_merge| {
                let mut counts = RowCounter::new();
                for (hash, _, row) in right_tuples {
                    counts.add_row(hash, row);
                }
                let mut seen = RowSet::new();
                runs.begin_run();
                left_merge.for_each_chunk(chunk_rows, |tuples: Vec<(u64, u64, Row)>| {
                    for (hash, seq, row) in tuples {
                        let kept = if all {
                            // Bag semantics: consume one multiplicity per
                            // match, in left sequence order.
                            match counts.count_mut_row(hash, &row) {
                                Some(c) if *c > 0 => {
                                    *c -= 1;
                                    !except
                                }
                                _ => except,
                            }
                        } else {
                            let in_right = counts.contains_row(hash, &row);
                            (in_right != except) && seen.insert_row(hash, row.clone())
                        };
                        if kept {
                            runs.push(seq, 0, row)?;
                        }
                    }
                    Ok(())
                })
            },
        )?;
        runs.finish(width, self.batch_size)
    }

    fn next_union(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        loop {
            let batch = if self.left_done {
                self.right.next_batch()?
            } else {
                match self.left.next_batch()? {
                    Some(b) => Some(b),
                    None => {
                        self.left_done = true;
                        continue;
                    }
                }
            };
            let Some(batch) = batch else {
                return Ok(None);
            };
            if self.all {
                return Ok(Some(batch));
            }
            let hashes = hash_batch_rows(&batch);
            self.seen.begin_batch(&batch);
            let mut keep: Vec<u32> = Vec::new();
            for (row, &hash) in hashes.iter().enumerate() {
                if self.seen.insert_batch_row(hash, &batch, row) {
                    keep.push(row as u32);
                }
            }
            if let Some(out) = batch.retain(keep) {
                return Ok(Some(out));
            }
        }
    }

    fn next_against_counts(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        if self.right_counts.is_none() {
            let mut counts = if self.right_hint > 0 {
                RowCounter::with_capacity(self.right_hint)
            } else {
                RowCounter::new()
            };
            while let Some(batch) = self.right.next_batch()? {
                let hashes = hash_batch_rows(&batch);
                counts.begin_batch(&batch);
                for (row, &hash) in hashes.iter().enumerate() {
                    counts.add_batch_row(hash, &batch, row);
                }
            }
            self.right_counts = Some(counts);
        }
        let except = self.op == SetOpKind::Except;
        while let Some(batch) = self.left.next_batch()? {
            let counts = self.right_counts.as_mut().expect("built above");
            let hashes = hash_batch_rows(&batch);
            if !self.all {
                // Set semantics track first-sight through the seen-set.
                self.seen.begin_batch(&batch);
            }
            let mut keep: Vec<u32> = Vec::new();
            for (row, &hash) in hashes.iter().enumerate() {
                let kept = if self.all {
                    // Bag semantics: consume one multiplicity per match.
                    match counts.count_mut(hash, &batch, row) {
                        Some(c) if *c > 0 => {
                            *c -= 1;
                            !except
                        }
                        _ => except,
                    }
                } else {
                    let in_right = counts.contains_batch_row(hash, &batch, row);
                    (in_right != except) && self.seen.insert_batch_row(hash, &batch, row)
                };
                if kept {
                    keep.push(row as u32);
                }
            }
            if let Some(out) = batch.retain(keep) {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

impl<'a> Operator<'a> for SetOpOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        // UNION ALL is pure concatenation — nothing accumulates, so it
        // streams regardless of the budget.
        if (self.budget.is_bounded() && !(self.op == SetOpKind::Union && self.all))
            || self.prepart_union.is_some()
            || self.prepart_pair.is_some()
            || self.spilled_output.is_some()
        {
            if self.spilled_output.is_none() {
                let merged = match self.op {
                    SetOpKind::Union => self.run_spilled_union()?,
                    SetOpKind::Except | SetOpKind::Intersect => {
                        self.run_spilled_against_counts()?
                    }
                };
                self.spilled_output = Some(merged);
            }
            return self.spilled_output.as_mut().expect("just set").next_batch();
        }
        match self.op {
            SetOpKind::Union => self.next_union(),
            SetOpKind::Except | SetOpKind::Intersect => self.next_against_counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{drain, StaticOp};
    use crate::types::DataType;
    use ivm_sql::ast::BinaryOp;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    fn rows(vals: impl IntoIterator<Item = i64>) -> Vec<Row> {
        vals.into_iter().map(|v| vec![i(v)]).collect()
    }

    fn static_op<'a>(vals: impl IntoIterator<Item = i64>, batch_size: usize) -> BoxedOperator<'a> {
        Box::new(StaticOp::from_rows(1, rows(vals), batch_size))
    }

    #[test]
    fn filter_composes_selections() {
        // v > 2, over batches of 3
        let pred = BoundExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(BoundExpr::Column {
                index: 0,
                ty: Some(DataType::Integer),
                name: "v".into(),
            }),
            right: Box::new(BoundExpr::Literal(i(2))),
        };
        let out = drain(Box::new(FilterOp::new(static_op(0..6, 3), pred))).unwrap();
        assert_eq!(out, rows(3..6));
    }

    #[test]
    fn limit_skips_and_stops_across_batch_boundaries() {
        // offset 3, limit 4 over batches of 2: spans three batches.
        let op = LimitOp::new(static_op(0..10, 2), Some(4), 3);
        let out = drain(Box::new(op)).unwrap();
        assert_eq!(out, rows(3..7));
        // offset beyond input
        let op = LimitOp::new(static_op(0..3, 2), Some(2), 5);
        assert!(drain(Box::new(op)).unwrap().is_empty());
        // limit zero never touches values
        let op = LimitOp::new(static_op(0..3, 2), Some(0), 0);
        assert!(drain(Box::new(op)).unwrap().is_empty());
    }

    #[test]
    fn sort_orders_and_rebatches() {
        let key = BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Integer),
            name: "v".into(),
        };
        let op = SortOp::new(
            Box::new(StaticOp::from_rows(1, rows([3, 1, 2, 5, 4]), 2)),
            vec![(key, true)],
            2,
        );
        let out = drain(Box::new(op)).unwrap();
        assert_eq!(out, rows([5, 4, 3, 2, 1]));
    }

    #[test]
    fn distinct_streams_across_batches() {
        let op = DistinctOp::new(static_op([1, 1, 2, 2, 3, 1], 2));
        let out = drain(Box::new(op)).unwrap();
        assert_eq!(out, rows([1, 2, 3]));
    }

    #[test]
    fn set_ops_match_bag_and_set_semantics() {
        let union_all = SetOpOp::new(
            SetOpKind::Union,
            true,
            static_op([1, 2], 2),
            static_op([2], 2),
        );
        assert_eq!(drain(Box::new(union_all)).unwrap(), rows([1, 2, 2]));

        let union = SetOpOp::new(
            SetOpKind::Union,
            false,
            static_op([1, 2], 2),
            static_op([2, 3], 2),
        );
        assert_eq!(drain(Box::new(union)).unwrap(), rows([1, 2, 3]));

        let except_all = SetOpOp::new(
            SetOpKind::Except,
            true,
            static_op([1, 1, 2], 2),
            static_op([1], 2),
        );
        assert_eq!(drain(Box::new(except_all)).unwrap(), rows([1, 2]));

        let except = SetOpOp::new(
            SetOpKind::Except,
            false,
            static_op([1, 1, 2], 2),
            static_op([2], 2),
        );
        assert_eq!(drain(Box::new(except)).unwrap(), rows([1]));

        let intersect_all = SetOpOp::new(
            SetOpKind::Intersect,
            true,
            static_op([1, 1, 2], 2),
            static_op([1, 1, 3], 2),
        );
        assert_eq!(drain(Box::new(intersect_all)).unwrap(), rows([1, 1]));

        let intersect = SetOpOp::new(
            SetOpKind::Intersect,
            false,
            static_op([1, 1, 2], 2),
            static_op([1, 2], 2),
        );
        assert_eq!(drain(Box::new(intersect)).unwrap(), rows([1, 2]));
    }

    #[test]
    fn spilled_distinct_and_set_ops_are_row_identical() {
        // Duplicate-heavy streams with NULLs crossing batch boundaries.
        let mk_rows = |n: i64, stride: i64| -> Vec<Row> {
            (0..n)
                .map(|v| {
                    let a = if v % 17 == 0 {
                        Value::Null
                    } else {
                        i(v % stride)
                    };
                    vec![a, i(v % 3)]
                })
                .collect()
        };
        let left = mk_rows(400, 13);
        let right = mk_rows(250, 9);
        let distinct_out = |budget: MemoryBudget| {
            let op = DistinctOp::new(Box::new(StaticOp::from_rows(2, left.clone(), 7)))
                .with_budget(budget, 7);
            drain(Box::new(op)).unwrap()
        };
        let unbounded = distinct_out(MemoryBudget::unbounded());
        for limit in [1usize, 2048] {
            let budget = MemoryBudget::with_limit(limit);
            assert_eq!(
                unbounded,
                distinct_out(budget.clone()),
                "distinct, {limit}B"
            );
            if limit == 1 {
                assert!(budget.stats().spilled());
            }
        }

        for op_kind in [SetOpKind::Union, SetOpKind::Except, SetOpKind::Intersect] {
            for all in [false, true] {
                let run = |budget: MemoryBudget| {
                    let op = SetOpOp::new(
                        op_kind,
                        all,
                        Box::new(StaticOp::from_rows(2, left.clone(), 7)),
                        Box::new(StaticOp::from_rows(2, right.clone(), 7)),
                    )
                    .with_budget(budget, 7);
                    drain(Box::new(op)).unwrap()
                };
                let unbounded = run(MemoryBudget::unbounded());
                for limit in [1usize, 2048] {
                    let budget = MemoryBudget::with_limit(limit);
                    assert_eq!(
                        unbounded,
                        run(budget.clone()),
                        "{op_kind:?} all={all} at {limit}B"
                    );
                    if limit == 1 && !(op_kind == SetOpKind::Union && all) {
                        assert!(budget.stats().spilled(), "{op_kind:?} all={all}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_inputs_everywhere() {
        let none: Vec<i64> = vec![];
        assert!(drain(Box::new(DistinctOp::new(static_op(none.clone(), 2))))
            .unwrap()
            .is_empty());
        let op = SetOpOp::new(
            SetOpKind::Except,
            false,
            static_op(none.clone(), 2),
            static_op([1], 2),
        );
        assert!(drain(Box::new(op)).unwrap().is_empty());
        let op = SetOpOp::new(
            SetOpKind::Union,
            false,
            static_op(none.clone(), 2),
            static_op(none, 2),
        );
        assert!(drain(Box::new(op)).unwrap().is_empty());
    }
}
