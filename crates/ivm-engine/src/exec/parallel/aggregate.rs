//! Parallel partitioned hash aggregation.
//!
//! Phase 1 is morsel-driven: each worker folds its morsels' batches into
//! per-morsel partial states ([`GroupState`] maps with first-seen order)
//! using the same vectorized [`AggSpec`] fold the serial operator runs.
//! Phase 2 merges the per-morsel summaries **in morsel order** — so
//! first-seen group order, MIN/MAX tie resolution, and SUM type
//! promotion all match the serial executor regardless of how morsels
//! were scheduled across workers. DISTINCT aggregates defer accumulator
//! updates to a post-merge fold over the unioned value sets (in value
//! order), which is likewise schedule-independent.
//!
//! Results are deterministic across parallelism levels for exact types;
//! floating-point SUM/AVG may differ from the serial fold by rounding,
//! and integer-SUM overflow detection applies to the re-associated
//! partial sums, since both folds associate at morsel boundaries.

use crate::error::EngineError;
use crate::exec::aggregate::{Acc, AggSpec, GroupTable};
use crate::exec::{prepare_expr_with_batch_size, Row};
use crate::expr::{AggExpr, BoundExpr};
use crate::planner::physical::AggMode;

use super::pipeline::{pipeline_tails, run_morsels, MorselOut, MorselWork, PipelineSpec};
use super::Ctx;

/// Aggregate a parallel pipeline: morsel-local fold, ordered merge,
/// deferred-DISTINCT finalization. Emits rows in the serial first-seen
/// group order (one row always, for ungrouped mode).
pub(super) fn parallel_aggregate(
    spec: &PipelineSpec<'_>,
    group: &[BoundExpr],
    aggs: &[AggExpr],
    mode: AggMode,
    ctx: &Ctx<'_>,
) -> Result<Vec<Row>, EngineError> {
    // Prepare expressions once (IN-subquery materialization), as the
    // serial operator build does.
    let group: Vec<BoundExpr> = group
        .iter()
        .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
        .collect::<Result<_, _>>()?;
    let mut aggs = aggs.to_vec();
    for a in &mut aggs {
        if let Some(arg) = &a.arg {
            a.arg = Some(prepare_expr_with_batch_size(
                arg,
                ctx.catalog,
                ctx.batch_size,
            )?);
        }
    }
    let agg = AggSpec::new(&group, aggs, true);

    match mode {
        AggMode::Ungrouped => {
            let partials = run_morsels(spec, ctx, MorselWork::AggGlobal(&agg))?;
            let mut state = agg.new_state();
            for (_, out) in partials {
                let MorselOut::Global(s) = out else {
                    unreachable!("global work yields global partials")
                };
                state.merge(s)?;
            }
            // FULL OUTER tails come after every probed morsel, as in the
            // serial operator; fold them last.
            for batch in pipeline_tails(spec, ctx)? {
                agg.fold_batch_global(&batch, &mut state)?;
            }
            agg.finalize_distinct(&mut state)?;
            // One output row even for empty input.
            Ok(vec![state.accs.into_iter().map(Acc::finish).collect()])
        }
        AggMode::HashGrouped => {
            let partials = run_morsels(spec, ctx, MorselWork::AggGrouped(&agg))?;
            let mut groups = GroupTable::new();
            // Partials arrive sorted by morsel sequence; merging each
            // morsel's flat table in its local first-seen order
            // reconstructs the global (serial) first-seen order. The
            // merge reuses each group's fold-time hash — keys are never
            // re-hashed here.
            for (_, out) in partials {
                let MorselOut::Grouped(partial) = out else {
                    unreachable!("grouped work yields grouped partials")
                };
                groups.merge_from(*partial, &agg)?;
            }
            for batch in pipeline_tails(spec, ctx)? {
                agg.fold_batch_grouped(&batch, &mut groups)?;
            }
            let mut rows = Vec::with_capacity(groups.len());
            for (key, mut state) in groups.into_ordered() {
                agg.finalize_distinct(&mut state)?;
                rows.push(
                    key.into_iter()
                        .chain(state.accs.into_iter().map(Acc::finish))
                        .collect(),
                );
            }
            Ok(rows)
        }
    }
}
