//! Morsel-driven parallel execution (HyPer-style).
//!
//! [`execute_parallel`] runs a [`PhysicalPlan`] on a pool of scoped
//! `std::thread` workers. The plan decomposes into *pipelines* at the
//! pipeline breakers (hash-join builds, aggregation, sort/top-k,
//! distinct, set operations): each pipeline is a table-scan leaf plus a
//! stack of morsel-local stages (filter, project, hash-join probe), and
//! its source table is cut into fixed-size **morsels** that workers claim
//! dynamically from a lock-free [`crate::storage::MorselCursor`] — fast
//! workers naturally take more morsels, so skewed filters and joins
//! balance without a scheduler thread.
//!
//! Breakers merge: hash-join build sides are materialized once and
//! radix-partitioned on the equi-key hash (parallel build, lock-free
//! probe); aggregation folds per-morsel partial states that merge in
//! morsel order; sort/top-k/distinct/set-ops collect their (parallel)
//! input and reuse the serial operators over a replay source. Everything
//! reuses the vectorized kernels of [`crate::expr::vector`] inside each
//! worker.
//!
//! **Determinism.** Per-morsel results carry the morsel sequence number
//! and are merged in that order, so for every supported shape the
//! parallel executor emits rows in the *same order* as the serial one —
//! group first-seen order included. The exceptions are inherently
//! order-sensitive folds: SUM/AVG over DOUBLE associate at morsel
//! boundaries (results can differ by rounding), integer SUM overflow is
//! detected on the re-associated partial sums (a sequence whose running
//! total stays in range can overflow a partial, and vice versa), and
//! MIN/MAX may retain a different one of several cross-type-equal
//! values. Runtime errors are
//! also deterministic: the error surfaced is the one from the earliest
//! morsel, which is the error the serial scan would reach first.
//!
//! `parallelism = 1` never enters this module: sessions route through the
//! unchanged serial operator tree, byte-identical to the pre-parallel
//! executor.

mod aggregate;
mod pipeline;

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::aggregate::AggSpec;
use crate::exec::batch::RowBatch;
use crate::exec::spill::{MemoryBudget, PartitionedSpiller, SpillPartition};
use crate::exec::{execute_physical, prepare_expr_with_batch_size, BoxedOperator, Operator, Row};
use crate::expr::{BoundExpr, VectorKernel};
use crate::planner::physical::{AggMode, PhysicalPlan};
use crate::planner::SetOpKind;
use crate::storage::{MorselCursor, Table};

/// Default morsel size in physical storage slots. Small enough that
/// mid-sized tables split across workers, large enough that the per-claim
/// atomic and per-morsel merge are noise.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Tuning knobs for one parallel execution.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Worker threads (1 = serial fast path through the operator tree).
    pub workers: usize,
    /// Morsel size in physical slots (tables spanning at most one morsel
    /// run serially).
    pub morsel_size: usize,
    /// Memory budget shared by every operator of the execution. Bounded
    /// budgets route breaker inputs through per-worker spill
    /// partitioners into the grace-capable operators (scans, filters,
    /// and projections below them stay morsel-parallel).
    pub budget: MemoryBudget,
    /// Scale morsel size up from `morsel_size` on large scans (targeting
    /// a few morsels per worker, capped at 64 Ki slots) so the claim
    /// loop isn't the bottleneck. Off when the morsel size was set
    /// explicitly.
    pub adaptive_morsels: bool,
}

impl ParallelOptions {
    /// Options with the default morsel size and an unbounded budget.
    pub fn new(workers: usize) -> ParallelOptions {
        ParallelOptions {
            workers,
            morsel_size: DEFAULT_MORSEL_SIZE,
            budget: MemoryBudget::unbounded(),
            adaptive_morsels: true,
        }
    }
}

/// Shared per-execution context.
pub(crate) struct Ctx<'a> {
    catalog: &'a Catalog,
    batch_size: usize,
    workers: usize,
    morsel_size: usize,
    adaptive_morsels: bool,
    pub(crate) budget: MemoryBudget,
}

impl Ctx<'_> {
    /// Morsel size for a scan of `total_slots`: the configured size, or —
    /// when adaptive — scaled up so each worker claims on the order of
    /// four morsels, bounded to 64 Ki slots. Parallel-worthiness gates
    /// (`total_slots > morsel_size`) always use the configured base size.
    fn effective_morsel_size(&self, total_slots: usize) -> usize {
        if !self.adaptive_morsels {
            return self.morsel_size;
        }
        (total_slots / (self.workers.max(1) * 4))
            .max(self.morsel_size)
            .min((1 << 16).max(self.morsel_size))
    }
}

/// Run a physical plan to completion with up to `opts.workers` threads,
/// materializing all result rows. With `workers <= 1` this is exactly
/// [`execute_physical`] — the serial operator tree, unchanged.
pub fn execute_parallel(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    batch_size: usize,
    opts: ParallelOptions,
) -> Result<Vec<Row>, EngineError> {
    let batch_size = batch_size.max(1);
    if opts.workers <= 1 {
        return crate::exec::execute_physical_budgeted(plan, catalog, batch_size, &opts.budget);
    }
    let ctx = Ctx {
        catalog,
        batch_size,
        workers: opts.workers,
        morsel_size: opts.morsel_size.max(1),
        adaptive_morsels: opts.adaptive_morsels,
        budget: opts.budget,
    };
    collect_rows(plan, &ctx)
}

/// Materialize the rows of `plan`, in serial output order, parallelizing
/// every pipeline and breaker the plan shape allows.
pub(crate) fn collect_rows(plan: &PhysicalPlan, ctx: &Ctx<'_>) -> Result<Vec<Row>, EngineError> {
    // A morsel-parallel pipeline handles the whole subtree in one pass.
    if pipeline::worth_parallel(plan, ctx) {
        if let Some(spec) = pipeline::build_pipeline(plan, ctx)? {
            let partials = pipeline::run_morsels(&spec, ctx, pipeline::MorselWork::Collect)?;
            let mut rows: Vec<Row> = Vec::new();
            for (_, out) in partials {
                let pipeline::MorselOut::Rows(r) = out else {
                    unreachable!("collect work yields rows")
                };
                rows.extend(r);
            }
            for batch in pipeline::pipeline_tails(&spec, ctx)? {
                rows.extend(batch.to_rows());
            }
            return Ok(rows);
        }
    }
    // Breakers: parallelize below, merge here (reusing the serial
    // operators over a replay of the collected input where the breaker
    // logic itself is cheap). NOTE: these arms mirror the per-node
    // expression preparation and operator construction of
    // `crate::exec::build_operator` with the child swapped for a replay
    // source — a new physical node or prep step added there needs a
    // matching arm here.
    match plan {
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            mode,
            ..
        } => {
            // Morsel-parallel partial aggregation: always for unbounded
            // budgets; under a bounded budget only the ungrouped mode
            // (whose accumulator state is O(1), so nothing can outgrow
            // the budget).
            if (!ctx.budget.is_bounded() || *mode == AggMode::Ungrouped)
                && pipeline::worth_parallel(input, ctx)
            {
                if let Some(spec) = pipeline::build_pipeline(input, ctx)? {
                    return aggregate::parallel_aggregate(&spec, group, aggs, *mode, ctx);
                }
            }
            let width = input.schema().len();
            let group: Vec<BoundExpr> = group
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .collect::<Result<_, _>>()?;
            let mut prepared_aggs = aggs.clone();
            for a in &mut prepared_aggs {
                if let Some(arg) = &a.arg {
                    a.arg = Some(prepare_expr_with_batch_size(
                        arg,
                        ctx.catalog,
                        ctx.batch_size,
                    )?);
                }
            }
            // Bounded grouped aggregation: the input streams through
            // per-worker spill partitioners on the group-key hash (never
            // staged as `Vec<Row>`) and the grace-capable operator folds
            // one fitting partition group at a time.
            if ctx.budget.is_bounded() && *mode == AggMode::HashGrouped {
                let spec = AggSpec::new(&group, prepared_aggs.clone(), false);
                let groups_in = collect_partitions(input, ctx, pipeline::SpillHash::Agg(&spec), 0)?;
                return drain_operator(Box::new(
                    crate::exec::aggregate::HashAggregateOp::new(
                        replay(width, Vec::new(), ctx.batch_size),
                        group,
                        prepared_aggs,
                        *mode,
                        ctx.batch_size,
                        0,
                    )
                    .with_budget(ctx.budget.clone())
                    .with_prepartitioned(groups_in, width),
                ));
            }
            let rows = collect_rows(input, ctx)?;
            // Exact input count as an upper-bound sizing hint, clamped so
            // a huge duplicate-heavy input doesn't pre-zero a giant table.
            let hint = rows.len().min(1 << 16);
            drain_operator(Box::new(
                crate::exec::aggregate::HashAggregateOp::new(
                    replay(width, rows, ctx.batch_size),
                    group,
                    prepared_aggs,
                    *mode,
                    ctx.batch_size,
                    hint,
                )
                .with_budget(ctx.budget.clone()),
            ))
        }
        PhysicalPlan::Filter { input, predicate } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let predicate = prepare_expr_with_batch_size(predicate, ctx.catalog, ctx.batch_size)?;
            drain_operator(Box::new(crate::exec::operators::FilterOp::new(
                replay(width, rows, ctx.batch_size),
                predicate,
            )))
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let exprs: Vec<BoundExpr> = exprs
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .collect::<Result<_, _>>()?;
            drain_operator(Box::new(crate::exec::operators::ProjectOp::new(
                replay(width, rows, ctx.batch_size),
                exprs,
            )))
        }
        PhysicalPlan::Sort { input, keys } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let keys = prepare_sort_keys(keys, ctx)?;
            drain_operator(Box::new(crate::exec::operators::SortOp::new(
                replay(width, rows, ctx.batch_size),
                keys,
                ctx.batch_size,
            )))
        }
        PhysicalPlan::TopK {
            input,
            keys,
            limit,
            offset,
        } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let keys = prepare_sort_keys(keys, ctx)?;
            drain_operator(Box::new(crate::exec::operators::TopKOp::new(
                replay(width, rows, ctx.batch_size),
                keys,
                *limit,
                *offset,
                ctx.batch_size,
            )))
        }
        PhysicalPlan::Distinct { input } => {
            let width = input.schema().len();
            if ctx.budget.is_bounded() {
                let groups = collect_partitions(input, ctx, pipeline::SpillHash::WholeRow, 0)?;
                return drain_operator(Box::new(
                    crate::exec::operators::DistinctOp::new(replay(
                        width,
                        Vec::new(),
                        ctx.batch_size,
                    ))
                    .with_budget(ctx.budget.clone(), ctx.batch_size)
                    .with_prepartitioned(groups, width),
                ));
            }
            let rows = collect_rows(input, ctx)?;
            drain_operator(Box::new(
                crate::exec::operators::DistinctOp::new(replay(width, rows, ctx.batch_size))
                    .with_budget(ctx.budget.clone(), ctx.batch_size),
            ))
        }
        PhysicalPlan::SetOp {
            op,
            all,
            left,
            right,
            ..
        } => {
            let lwidth = left.schema().len();
            let rwidth = right.schema().len();
            // UNION ALL is pure concatenation and never accumulates;
            // everything else under a bounded budget pre-partitions both
            // inputs on the whole-row hash, per-worker.
            if ctx.budget.is_bounded() && !(*op == SetOpKind::Union && *all) {
                let empty_op = crate::exec::operators::SetOpOp::new(
                    *op,
                    *all,
                    replay(lwidth, Vec::new(), ctx.batch_size),
                    replay(rwidth, Vec::new(), ctx.batch_size),
                )
                .with_budget(ctx.budget.clone(), ctx.batch_size);
                let op = if *op == SetOpKind::Union {
                    // One combined producer set; right-input sequence
                    // tags offset past every possible left tag.
                    let mut groups =
                        collect_partitions(left, ctx, pipeline::SpillHash::WholeRow, 0)?;
                    groups.extend(collect_partitions(
                        right,
                        ctx,
                        pipeline::SpillHash::WholeRow,
                        1 << 62,
                    )?);
                    empty_op.with_prepartitioned_union(groups, lwidth)
                } else {
                    let right_groups =
                        collect_partitions(right, ctx, pipeline::SpillHash::WholeRow, 0)?;
                    let left_groups =
                        collect_partitions(left, ctx, pipeline::SpillHash::WholeRow, 0)?;
                    empty_op.with_prepartitioned_pair(right_groups, left_groups, lwidth)
                };
                return drain_operator(Box::new(op));
            }
            let lrows = collect_rows(left, ctx)?;
            let rrows = collect_rows(right, ctx)?;
            drain_operator(Box::new(
                crate::exec::operators::SetOpOp::new(
                    *op,
                    *all,
                    replay(lwidth, lrows, ctx.batch_size),
                    replay(rwidth, rrows, ctx.batch_size),
                )
                .with_budget(ctx.budget.clone(), ctx.batch_size),
            ))
        }
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            join,
            ..
        } => {
            let pw = probe.schema().len();
            let bw = build.schema().len();
            let residual = residual
                .as_ref()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .transpose()?;
            // Bounded budget: both sides stream through per-worker spill
            // partitioners on their equi-key hashes — never staged as
            // `Vec<Row>` — and the grace join processes aligned partition
            // pairs, merge-emitting in probe order.
            if ctx.budget.is_bounded() {
                let build_groups =
                    collect_partitions(build, ctx, pipeline::SpillHash::Keys(build_keys), 0)?;
                let probe_groups =
                    collect_partitions(probe, ctx, pipeline::SpillHash::Keys(probe_keys), 0)?;
                return drain_operator(Box::new(
                    crate::exec::join::HashJoinOp::new(
                        replay(pw, Vec::new(), ctx.batch_size),
                        replay(bw, Vec::new(), ctx.batch_size),
                        pw,
                        bw,
                        probe_keys.clone(),
                        build_keys.clone(),
                        residual,
                        *join,
                        ctx.batch_size,
                    )
                    .with_budget(ctx.budget.clone())
                    .with_prepartitioned(build_groups, probe_groups),
                ));
            }
            // The probe side was not pipeline-able (e.g. it is itself a
            // breaker); parallelize both children, join serially.
            let probe_rows = collect_rows(probe, ctx)?;
            let build_rows = collect_rows(build, ctx)?;
            drain_operator(Box::new(
                crate::exec::join::HashJoinOp::new(
                    replay(pw, probe_rows, ctx.batch_size),
                    replay(bw, build_rows, ctx.batch_size),
                    pw,
                    bw,
                    probe_keys.clone(),
                    build_keys.clone(),
                    residual,
                    *join,
                    ctx.batch_size,
                )
                .with_budget(ctx.budget.clone()),
            ))
        }
        PhysicalPlan::NestedLoopJoin {
            probe,
            build,
            on,
            join,
            ..
        } => {
            let pw = probe.schema().len();
            let bw = build.schema().len();
            let probe_rows = collect_rows(probe, ctx)?;
            let build_rows = collect_rows(build, ctx)?;
            let on = on
                .as_ref()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .transpose()?;
            drain_operator(Box::new(crate::exec::join::NestedLoopJoinOp::new(
                replay(pw, probe_rows, ctx.batch_size),
                replay(bw, build_rows, ctx.batch_size),
                pw,
                bw,
                on,
                *join,
                ctx.batch_size,
            )))
        }
        // Scans below the morsel threshold, Dual, and LIMIT (whose whole
        // point is to stop pulling early) run serially.
        PhysicalPlan::TableScan { .. } | PhysicalPlan::Dual | PhysicalPlan::Limit { .. } => {
            execute_physical(plan, ctx.catalog, ctx.batch_size)
        }
    }
}

/// Materialize `plan`'s output into budget-accounted radix spill
/// partitions — hashed with `hash`, sequence-tagged from `seq_base` — for
/// a grace-capable breaker to consume. Pipeline-able subtrees stream
/// morsel-parallel through per-worker spillers
/// ([`pipeline::run_morsels_spill`]); other shapes (nested breakers,
/// small scans) stream serially through the budgeted operator tree into
/// one spiller. Either way the rows are never staged in an unaccounted
/// `Vec<Row>`.
fn collect_partitions(
    plan: &PhysicalPlan,
    ctx: &Ctx<'_>,
    hash: pipeline::SpillHash<'_>,
    seq_base: u64,
) -> Result<Vec<Vec<SpillPartition>>, EngineError> {
    if pipeline::worth_parallel(plan, ctx) {
        if let Some(spec) = pipeline::build_pipeline(plan, ctx)? {
            return pipeline::run_morsels_spill(&spec, ctx, hash, seq_base);
        }
    }
    let mut op =
        crate::exec::build_operator_budgeted(plan, ctx.catalog, ctx.batch_size, &ctx.budget)?;
    let mut spiller = PartitionedSpiller::new(ctx.budget.clone(), 0);
    let mut seq = seq_base;
    while let Some(batch) = op.next_batch()? {
        let hashes = hash.hash(&batch)?;
        for (r, &h) in hashes.iter().enumerate() {
            spiller.push(h, seq, batch.materialize_row(r))?;
            seq += 1;
        }
    }
    Ok(vec![spiller.finish()?])
}

/// Parallel UPDATE/DELETE victim selection: workers claim storage-slot
/// morsels and run the vectorized predicate per window; per-morsel id
/// lists come back in slot order and concatenate in morsel order, so the
/// result is identical to the serial [`Table::filter_row_ids`] scan. On
/// error the cursor poisons and the earliest morsel's error surfaces.
pub fn parallel_filter_row_ids(
    table: &Table,
    kernel: &VectorKernel,
    workers: usize,
    morsel_size: usize,
    batch_size: usize,
) -> Result<Vec<u64>, EngineError> {
    let cursor = MorselCursor::new(table.total_slots(), morsel_size.max(1));
    let results: Mutex<Vec<(usize, Vec<u64>)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<(usize, EngineError)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| {
                while let Some((seq, slots)) = cursor.claim() {
                    match table.filter_row_ids_range(slots, batch_size, kernel) {
                        Ok(ids) => results.lock().unwrap().push((seq, ids)),
                        Err(e) => {
                            cursor.stop();
                            errors.lock().unwrap().push((seq, e));
                            return;
                        }
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap();
    if let Some((_, e)) = errors.into_iter().min_by_key(|(seq, _)| *seq) {
        return Err(e);
    }
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out.into_iter().flat_map(|(_, ids)| ids).collect())
}

fn prepare_sort_keys(
    keys: &[crate::planner::SortKey],
    ctx: &Ctx<'_>,
) -> Result<Vec<(BoundExpr, bool)>, EngineError> {
    keys.iter()
        .map(|k| {
            Ok((
                prepare_expr_with_batch_size(&k.expr, ctx.catalog, ctx.batch_size)?,
                k.desc,
            ))
        })
        .collect()
}

/// An operator replaying materialized rows in batches — the bridge that
/// lets the serial breaker operators consume parallel-collected input.
struct ReplayOp<'a> {
    batches: VecDeque<RowBatch<'a>>,
}

fn replay<'a>(width: usize, rows: Vec<Row>, batch_size: usize) -> BoxedOperator<'a> {
    let batch_size = batch_size.max(1);
    let mut batches = VecDeque::new();
    let mut it = rows.into_iter().peekable();
    while it.peek().is_some() {
        let chunk: Vec<Row> = it.by_ref().take(batch_size).collect();
        batches.push_back(RowBatch::from_rows(width, chunk));
    }
    Box::new(ReplayOp { batches })
}

impl<'a> Operator<'a> for ReplayOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        Ok(self.batches.pop_front())
    }
}

fn drain_operator(mut op: BoxedOperator<'_>) -> Result<Vec<Row>, EngineError> {
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch()? {
        rows.extend(batch.to_rows());
    }
    Ok(rows)
}
