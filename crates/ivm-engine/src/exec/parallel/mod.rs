//! Morsel-driven parallel execution (HyPer-style).
//!
//! [`execute_parallel`] runs a [`PhysicalPlan`] on a pool of scoped
//! `std::thread` workers. The plan decomposes into *pipelines* at the
//! pipeline breakers (hash-join builds, aggregation, sort/top-k,
//! distinct, set operations): each pipeline is a table-scan leaf plus a
//! stack of morsel-local stages (filter, project, hash-join probe), and
//! its source table is cut into fixed-size **morsels** that workers claim
//! dynamically from a lock-free [`crate::storage::MorselCursor`] — fast
//! workers naturally take more morsels, so skewed filters and joins
//! balance without a scheduler thread.
//!
//! Breakers merge: hash-join build sides are materialized once and
//! radix-partitioned on the equi-key hash (parallel build, lock-free
//! probe); aggregation folds per-morsel partial states that merge in
//! morsel order; sort/top-k/distinct/set-ops collect their (parallel)
//! input and reuse the serial operators over a replay source. Everything
//! reuses the vectorized kernels of [`crate::expr::vector`] inside each
//! worker.
//!
//! **Determinism.** Per-morsel results carry the morsel sequence number
//! and are merged in that order, so for every supported shape the
//! parallel executor emits rows in the *same order* as the serial one —
//! group first-seen order included. The exceptions are inherently
//! order-sensitive folds: SUM/AVG over DOUBLE associate at morsel
//! boundaries (results can differ by rounding), integer SUM overflow is
//! detected on the re-associated partial sums (a sequence whose running
//! total stays in range can overflow a partial, and vice versa), and
//! MIN/MAX may retain a different one of several cross-type-equal
//! values. Runtime errors are
//! also deterministic: the error surfaced is the one from the earliest
//! morsel, which is the error the serial scan would reach first.
//!
//! `parallelism = 1` never enters this module: sessions route through the
//! unchanged serial operator tree, byte-identical to the pre-parallel
//! executor.

mod aggregate;
mod pipeline;

use std::collections::VecDeque;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::batch::RowBatch;
use crate::exec::spill::MemoryBudget;
use crate::exec::{execute_physical, prepare_expr_with_batch_size, BoxedOperator, Operator, Row};
use crate::expr::BoundExpr;
use crate::planner::physical::PhysicalPlan;

/// Default morsel size in physical storage slots. Small enough that
/// mid-sized tables split across workers, large enough that the per-claim
/// atomic and per-morsel merge are noise.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Tuning knobs for one parallel execution.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Worker threads (1 = serial fast path through the operator tree).
    pub workers: usize,
    /// Morsel size in physical slots (tables spanning at most one morsel
    /// run serially).
    pub morsel_size: usize,
    /// Memory budget shared by every operator of the execution. Bounded
    /// budgets route hash joins and aggregations through the serial
    /// spill-capable breakers (scans, filters, and projections below
    /// them stay morsel-parallel).
    pub budget: MemoryBudget,
}

impl ParallelOptions {
    /// Options with the default morsel size and an unbounded budget.
    pub fn new(workers: usize) -> ParallelOptions {
        ParallelOptions {
            workers,
            morsel_size: DEFAULT_MORSEL_SIZE,
            budget: MemoryBudget::unbounded(),
        }
    }
}

/// Shared per-execution context.
pub(crate) struct Ctx<'a> {
    catalog: &'a Catalog,
    batch_size: usize,
    workers: usize,
    morsel_size: usize,
    pub(crate) budget: MemoryBudget,
}

/// Run a physical plan to completion with up to `opts.workers` threads,
/// materializing all result rows. With `workers <= 1` this is exactly
/// [`execute_physical`] — the serial operator tree, unchanged.
pub fn execute_parallel(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    batch_size: usize,
    opts: ParallelOptions,
) -> Result<Vec<Row>, EngineError> {
    let batch_size = batch_size.max(1);
    if opts.workers <= 1 {
        return crate::exec::execute_physical_budgeted(plan, catalog, batch_size, &opts.budget);
    }
    let ctx = Ctx {
        catalog,
        batch_size,
        workers: opts.workers,
        morsel_size: opts.morsel_size.max(1),
        budget: opts.budget,
    };
    collect_rows(plan, &ctx)
}

/// Materialize the rows of `plan`, in serial output order, parallelizing
/// every pipeline and breaker the plan shape allows.
pub(crate) fn collect_rows(plan: &PhysicalPlan, ctx: &Ctx<'_>) -> Result<Vec<Row>, EngineError> {
    // A morsel-parallel pipeline handles the whole subtree in one pass.
    if pipeline::worth_parallel(plan, ctx) {
        if let Some(spec) = pipeline::build_pipeline(plan, ctx)? {
            let partials = pipeline::run_morsels(&spec, ctx, pipeline::MorselWork::Collect)?;
            let mut rows: Vec<Row> = Vec::new();
            for (_, out) in partials {
                let pipeline::MorselOut::Rows(r) = out else {
                    unreachable!("collect work yields rows")
                };
                rows.extend(r);
            }
            for batch in pipeline::pipeline_tails(&spec, ctx)? {
                rows.extend(batch.to_rows());
            }
            return Ok(rows);
        }
    }
    // Breakers: parallelize below, merge here (reusing the serial
    // operators over a replay of the collected input where the breaker
    // logic itself is cheap). NOTE: these arms mirror the per-node
    // expression preparation and operator construction of
    // `crate::exec::build_operator` with the child swapped for a replay
    // source — a new physical node or prep step added there needs a
    // matching arm here.
    match plan {
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            mode,
            ..
        } => {
            // Under a bounded budget the merged group table must be able
            // to spill, which the serial operator below handles; the
            // input still collects morsel-parallel.
            if !ctx.budget.is_bounded() && pipeline::worth_parallel(input, ctx) {
                if let Some(spec) = pipeline::build_pipeline(input, ctx)? {
                    return aggregate::parallel_aggregate(&spec, group, aggs, *mode, ctx);
                }
            }
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let group: Vec<BoundExpr> = group
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .collect::<Result<_, _>>()?;
            let mut prepared_aggs = aggs.clone();
            for a in &mut prepared_aggs {
                if let Some(arg) = &a.arg {
                    a.arg = Some(prepare_expr_with_batch_size(
                        arg,
                        ctx.catalog,
                        ctx.batch_size,
                    )?);
                }
            }
            // Exact input count as an upper-bound sizing hint, clamped so
            // a huge duplicate-heavy input doesn't pre-zero a giant table.
            let hint = rows.len().min(1 << 16);
            drain_operator(Box::new(
                crate::exec::aggregate::HashAggregateOp::new(
                    replay(width, rows, ctx.batch_size),
                    group,
                    prepared_aggs,
                    *mode,
                    ctx.batch_size,
                    hint,
                )
                .with_budget(ctx.budget.clone()),
            ))
        }
        PhysicalPlan::Filter { input, predicate } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let predicate = prepare_expr_with_batch_size(predicate, ctx.catalog, ctx.batch_size)?;
            drain_operator(Box::new(crate::exec::operators::FilterOp::new(
                replay(width, rows, ctx.batch_size),
                predicate,
            )))
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let exprs: Vec<BoundExpr> = exprs
                .iter()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .collect::<Result<_, _>>()?;
            drain_operator(Box::new(crate::exec::operators::ProjectOp::new(
                replay(width, rows, ctx.batch_size),
                exprs,
            )))
        }
        PhysicalPlan::Sort { input, keys } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let keys = prepare_sort_keys(keys, ctx)?;
            drain_operator(Box::new(crate::exec::operators::SortOp::new(
                replay(width, rows, ctx.batch_size),
                keys,
                ctx.batch_size,
            )))
        }
        PhysicalPlan::TopK {
            input,
            keys,
            limit,
            offset,
        } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            let keys = prepare_sort_keys(keys, ctx)?;
            drain_operator(Box::new(crate::exec::operators::TopKOp::new(
                replay(width, rows, ctx.batch_size),
                keys,
                *limit,
                *offset,
                ctx.batch_size,
            )))
        }
        PhysicalPlan::Distinct { input } => {
            let width = input.schema().len();
            let rows = collect_rows(input, ctx)?;
            drain_operator(Box::new(
                crate::exec::operators::DistinctOp::new(replay(width, rows, ctx.batch_size))
                    .with_budget(ctx.budget.clone(), ctx.batch_size),
            ))
        }
        PhysicalPlan::SetOp {
            op,
            all,
            left,
            right,
            ..
        } => {
            let lwidth = left.schema().len();
            let rwidth = right.schema().len();
            let lrows = collect_rows(left, ctx)?;
            let rrows = collect_rows(right, ctx)?;
            drain_operator(Box::new(
                crate::exec::operators::SetOpOp::new(
                    *op,
                    *all,
                    replay(lwidth, lrows, ctx.batch_size),
                    replay(rwidth, rrows, ctx.batch_size),
                )
                .with_budget(ctx.budget.clone(), ctx.batch_size),
            ))
        }
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            join,
            ..
        } => {
            // The probe side was not pipeline-able (e.g. it is itself a
            // breaker); parallelize both children, join serially.
            let pw = probe.schema().len();
            let bw = build.schema().len();
            let probe_rows = collect_rows(probe, ctx)?;
            let build_rows = collect_rows(build, ctx)?;
            let residual = residual
                .as_ref()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .transpose()?;
            drain_operator(Box::new(
                crate::exec::join::HashJoinOp::new(
                    replay(pw, probe_rows, ctx.batch_size),
                    replay(bw, build_rows, ctx.batch_size),
                    pw,
                    bw,
                    probe_keys.clone(),
                    build_keys.clone(),
                    residual,
                    *join,
                    ctx.batch_size,
                )
                .with_budget(ctx.budget.clone()),
            ))
        }
        PhysicalPlan::NestedLoopJoin {
            probe,
            build,
            on,
            join,
            ..
        } => {
            let pw = probe.schema().len();
            let bw = build.schema().len();
            let probe_rows = collect_rows(probe, ctx)?;
            let build_rows = collect_rows(build, ctx)?;
            let on = on
                .as_ref()
                .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                .transpose()?;
            drain_operator(Box::new(crate::exec::join::NestedLoopJoinOp::new(
                replay(pw, probe_rows, ctx.batch_size),
                replay(bw, build_rows, ctx.batch_size),
                pw,
                bw,
                on,
                *join,
                ctx.batch_size,
            )))
        }
        // Scans below the morsel threshold, Dual, and LIMIT (whose whole
        // point is to stop pulling early) run serially.
        PhysicalPlan::TableScan { .. } | PhysicalPlan::Dual | PhysicalPlan::Limit { .. } => {
            execute_physical(plan, ctx.catalog, ctx.batch_size)
        }
    }
}

fn prepare_sort_keys(
    keys: &[crate::planner::SortKey],
    ctx: &Ctx<'_>,
) -> Result<Vec<(BoundExpr, bool)>, EngineError> {
    keys.iter()
        .map(|k| {
            Ok((
                prepare_expr_with_batch_size(&k.expr, ctx.catalog, ctx.batch_size)?,
                k.desc,
            ))
        })
        .collect()
}

/// An operator replaying materialized rows in batches — the bridge that
/// lets the serial breaker operators consume parallel-collected input.
struct ReplayOp<'a> {
    batches: VecDeque<RowBatch<'a>>,
}

fn replay<'a>(width: usize, rows: Vec<Row>, batch_size: usize) -> BoxedOperator<'a> {
    let batch_size = batch_size.max(1);
    let mut batches = VecDeque::new();
    let mut it = rows.into_iter().peekable();
    while it.peek().is_some() {
        let chunk: Vec<Row> = it.by_ref().take(batch_size).collect();
        batches.push_back(RowBatch::from_rows(width, chunk));
    }
    Box::new(ReplayOp { batches })
}

impl<'a> Operator<'a> for ReplayOp<'a> {
    fn next_batch(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        Ok(self.batches.pop_front())
    }
}

fn drain_operator(mut op: BoxedOperator<'_>) -> Result<Vec<Row>, EngineError> {
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch()? {
        rows.extend(batch.to_rows());
    }
    Ok(rows)
}
