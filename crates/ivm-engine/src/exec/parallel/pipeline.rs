//! Pipeline decomposition and the morsel worker loop.
//!
//! A [`PipelineSpec`] is the parallel-executable form of one *pipeline*:
//! a [`Table`] scan leaf (with an optional pushed-down predicate kernel)
//! followed by a stack of morsel-local [`Stage`]s — filters, projections,
//! and hash-join probes against pre-built, hash-partitioned build sides.
//! Worker threads claim morsels from a [`MorselCursor`] and run the whole
//! stage stack over each morsel's batches; per-morsel results carry the
//! morsel sequence number so the coordinator can restore the serial row
//! order when concatenating or merging.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::error::EngineError;
use crate::exec::aggregate::{AggSpec, GroupTable};
use crate::exec::batch::{ColumnData, RowBatch};
use crate::exec::hash::{
    chain_prepend, hash_batch_keys, hash_batch_rows, hash_rows_keys, FlatTable, KeyHashes,
};
use crate::exec::join::{encode_build_keys, splice_output, unmatched_build_batch};
use crate::exec::spill::{PartitionedSpiller, SpillPartition};
use crate::exec::typed::{note_fallback_rows, note_typed_rows, EncodedChunk, KeyArena};
use crate::exec::{prepare_expr_with_batch_size, Row};
use crate::expr::VectorKernel;
use crate::planner::physical::{PhysJoinKind, PhysicalPlan};
use crate::storage::{MorselCursor, Table};

use super::Ctx;

/// Build sides smaller than this skip radix partitioning entirely (one
/// flat table, built single-threaded): below it the partition pass and
/// per-partition tables cost more than they save.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// One parallel pipeline: scan leaf plus morsel-local stages.
pub(super) struct PipelineSpec<'a> {
    pub(super) table: &'a Table,
    scan_kernel: Option<VectorKernel>,
    pub(super) stages: Vec<Stage>,
}

/// A morsel-local operator applied to each batch in turn.
pub(super) enum Stage {
    /// Vectorized predicate; forwards a composed selection.
    Filter(VectorKernel),
    /// Projection: column passthrough or computed kernel per output.
    Project(Vec<Proj>),
    /// Hash-join probe against a shared partitioned build side. Boxed:
    /// the stage carries the build tables + typed key arena and would
    /// otherwise dominate the enum's size.
    Join(Box<JoinStage>),
}

/// One projection output column.
pub(super) enum Proj {
    Pass(usize),
    Compute(VectorKernel),
}

fn partition_count(workers: usize) -> usize {
    (workers.max(1) * 4).next_power_of_two().min(64)
}

/// One built radix partition: its flat table plus the `(row, next)` chain
/// updates to apply to the shared chain array.
type BuiltPartition = (FlatTable, Vec<(u32, u32)>);

/// A hash-partitioned, read-only build side shared by all probe workers.
///
/// The equi-key hash column is computed once (vectorized, in parallel
/// chunks for large builds) and reused everywhere: the **high bits**
/// pick the radix partition, the **low bits** index the partition's
/// [`FlatTable`] — no row is ever hashed twice. Per-key candidates are a
/// chain threaded through `next` in build-row order, matching the serial
/// join's output order. Build sides under the partitioning threshold use
/// a single table. `matched` flags are atomic because multiple workers
/// probe concurrently.
pub(super) struct JoinStage {
    build_rows: Vec<Row>,
    /// Typed build-key arena (arena row == build row) when every key is
    /// word-representable; chain and probe compares then reduce to word
    /// compares, exactly like the serial [`crate::exec::join::JoinTable`].
    keys: Option<KeyArena>,
    /// One flat table per radix partition (len 1 = unpartitioned);
    /// payloads are chain-head build-row indices.
    parts: Vec<FlatTable>,
    /// Per build row: next row in its equal-key chain (`u32::MAX` ends).
    next: Vec<u32>,
    /// Right-shift mapping a key hash to its partition (64 when
    /// unpartitioned, i.e. everything lands in partition 0).
    part_shift: u32,
    matched: Vec<AtomicBool>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    residual: Option<VectorKernel>,
    join: PhysJoinKind,
    probe_width: usize,
    build_width: usize,
}

/// Partition index of a hash under `part_shift` (high bits).
#[inline]
fn partition_of(hash: u64, part_shift: u32) -> usize {
    if part_shift >= 64 {
        0
    } else {
        (hash >> part_shift) as usize
    }
}

impl JoinStage {
    /// Index `build_rows` on `build_keys`. Large build sides hash and
    /// bucketize in parallel over contiguous row chunks (per-partition
    /// row lists concatenate in chunk order, keeping global row order);
    /// the per-partition flat tables are then built by reverse-scan
    /// chain-prepending, so candidate chains iterate in build-row order.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn build(
        build_rows: Vec<Row>,
        probe_width: usize,
        build_width: usize,
        probe_keys: Vec<usize>,
        build_keys: &[usize],
        residual: Option<VectorKernel>,
        join: PhysJoinKind,
        workers: usize,
    ) -> JoinStage {
        let n = build_rows.len();
        // Small-input fast path: below the threshold the radix pass costs
        // more than it saves — one flat table, built directly.
        let partitioned = n >= PARALLEL_BUILD_THRESHOLD;
        let nparts = if partitioned {
            partition_count(workers)
        } else {
            1
        };
        let part_shift = 64 - nparts.trailing_zeros();

        // Phase 1: the hash column, computed once. Parallel chunks for
        // large builds; each chunk also bucketizes its row ids per
        // partition.
        let (hashes, part_rows): (KeyHashes, Vec<Vec<u32>>) = if workers > 1 && partitioned {
            let chunk = n.div_ceil(workers);
            let chunk_out: Vec<(KeyHashes, Vec<Vec<u32>>)> = std::thread::scope(|s| {
                let handles: Vec<_> = build_rows
                    .chunks(chunk)
                    .enumerate()
                    .map(|(ci, slice)| {
                        let build_keys = &build_keys;
                        s.spawn(move || {
                            let base = (ci * chunk) as u32;
                            let hashes = hash_rows_keys(slice, build_keys);
                            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nparts];
                            for (off, h) in hashes.hashes.iter().enumerate() {
                                if !hashes.is_null(off) {
                                    lists[partition_of(*h, part_shift)].push(base + off as u32);
                                }
                            }
                            (hashes, lists)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut hashes = KeyHashes::with_len(n);
            let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); nparts];
            let mut base = 0usize;
            for (chunk_hashes, lists) in chunk_out {
                hashes.splice_from(base, chunk_hashes);
                base += chunk;
                for (p, list) in lists.into_iter().enumerate() {
                    part_rows[p].extend(list);
                }
            }
            (hashes, part_rows)
        } else {
            let hashes = hash_rows_keys(&build_rows, build_keys);
            let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); nparts];
            for (i, h) in hashes.hashes.iter().enumerate() {
                if !hashes.is_null(i) {
                    part_rows[partition_of(*h, part_shift)].push(i as u32);
                }
            }
            (hashes, part_rows)
        };

        // Typed build-key arena: encoded once over the full build side,
        // shared read-only by every partition builder and probe worker.
        let arena = encode_build_keys(&build_rows, build_keys);
        match &arena {
            Some(_) => note_typed_rows(n as u64),
            None => note_fallback_rows(n as u64),
        }

        // Phase 2: per-partition flat tables, chains prepended over a
        // reverse scan of each partition's (globally ordered) row list.
        // One build loop serves both arms; only the chain sink differs
        // (direct write vs. recorded updates applied by the coordinator).
        let mut next = vec![u32::MAX; n];
        let build_part = |list: &[u32], set_next: &mut dyn FnMut(u32, u32)| -> FlatTable {
            let mut table = FlatTable::with_capacity(list.len());
            for &i in list.iter().rev() {
                let row = &build_rows[i as usize];
                chain_prepend(
                    &mut table,
                    hashes.hashes[i as usize],
                    i,
                    |p| match &arena {
                        Some(a) => a.eq_rows(p as usize, i as usize),
                        None => {
                            let head = &build_rows[p as usize];
                            build_keys.iter().all(|&k| head[k] == row[k])
                        }
                    },
                    |head| set_next(i, head),
                );
            }
            table
        };
        let parts: Vec<FlatTable> = if workers > 1 && partitioned {
            // Partitions hold disjoint row sets, so their chain writes
            // are disjoint; each builder returns its (row, next) updates
            // and the coordinator applies them. Partitions are chunked
            // across at most `workers` threads — the parallelism knob is
            // a resource bound, not a partition count.
            let per_thread = nparts.div_ceil(workers.max(1));
            let built: Vec<Vec<BuiltPartition>> = std::thread::scope(|s| {
                let handles: Vec<_> = part_rows
                    .chunks(per_thread)
                    .map(|lists| {
                        let build_part = &build_part;
                        s.spawn(move || {
                            lists
                                .iter()
                                .map(|list| {
                                    let mut updates: Vec<(u32, u32)> = Vec::new();
                                    let table =
                                        build_part(list, &mut |i, head| updates.push((i, head)));
                                    (table, updates)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            built
                .into_iter()
                .flatten()
                .map(|(table, updates)| {
                    for (i, nxt) in updates {
                        next[i as usize] = nxt;
                    }
                    table
                })
                .collect()
        } else {
            part_rows
                .iter()
                .map(|list| build_part(list, &mut |i, head| next[i as usize] = head))
                .collect()
        };

        // Matched flags exist only to compute the FULL OUTER tail; for
        // other join kinds the per-match atomic store (and the contended
        // cache lines it touches) would be pure overhead.
        let matched = if join == PhysJoinKind::FullOuter {
            (0..n).map(|_| AtomicBool::new(false)).collect()
        } else {
            Vec::new()
        };
        JoinStage {
            build_rows,
            keys: arena,
            parts,
            next,
            part_shift,
            matched,
            probe_keys,
            build_keys: build_keys.to_vec(),
            residual,
            join,
            probe_width,
            build_width,
        }
    }

    /// Probe one batch: the probe keys hash chunk-at-a-time (once),
    /// candidate pairs come from the key's radix partition, the residual
    /// filters vectorized, and output lays out in probe-row order with
    /// outer padding — exactly the serial `HashJoinOp::join_batch`
    /// discipline.
    fn apply<'b>(&self, batch: RowBatch<'b>) -> Result<Option<RowBatch<'b>>, EngineError> {
        let preserve_probe = matches!(self.join, PhysJoinKind::LeftOuter | PhysJoinKind::FullOuter);
        let rows = batch.num_rows();
        let mut cand_rows: Vec<u32> = Vec::new();
        let mut cand_bis: Vec<u32> = Vec::new();
        // Typed build sides hash *and* encode the probe keys in one
        // enum-dispatch pass; candidate compares are then word compares
        // (rows the typed layout can't represent compare exactly via
        // `eq_row_at`). Row-based build sides take the plain hash kernel.
        let (hashes, probe_chunk) = match &self.keys {
            Some(arena) => {
                let mut chunk = EncodedChunk::new();
                let hashes = arena.encode_probe_batch(&mut chunk, &batch, &self.probe_keys);
                note_typed_rows((rows - chunk.bad_rows()) as u64);
                note_fallback_rows(chunk.bad_rows() as u64);
                (hashes, Some(chunk))
            }
            None => {
                note_fallback_rows(rows as u64);
                (hash_batch_keys(&batch, &self.probe_keys), None)
            }
        };
        for row in 0..rows {
            if hashes.is_null(row) {
                continue;
            }
            let h = hashes.hashes[row];
            let part = &self.parts[partition_of(h, self.part_shift)];
            let head = match (&self.keys, probe_chunk.as_ref()) {
                (Some(arena), Some(chunk)) if chunk.ok(row) => {
                    part.find(h, |p| arena.eq_chunk(p as usize, chunk, row))
                }
                (Some(arena), _) => part.find(h, |p| {
                    arena.eq_row_at(p as usize, |c| batch.value(self.probe_keys[c], row))
                }),
                (None, _) => part.find(h, |p| {
                    let build = &self.build_rows[p as usize];
                    self.probe_keys
                        .iter()
                        .zip(&self.build_keys)
                        .all(|(&pk, &bk)| batch.value(pk, row) == &build[bk])
                }),
            };
            let mut cur = match head {
                Some(head) => head,
                None => continue,
            };
            while cur != u32::MAX {
                cand_bis.push(cur);
                cur = self.next[cur as usize];
            }
            cand_rows.resize(cand_bis.len(), row as u32);
        }
        // Inner join without a residual: the candidate arrays already
        // ARE the output pairs (probe-row order, chains in build-row
        // order) and matched flags are FULL OUTER-only — same fast path
        // as the serial `join_probe_batch`.
        if self.join == PhysJoinKind::Inner && self.residual.is_none() {
            if cand_rows.is_empty() {
                return Ok(None);
            }
            return Ok(Some(splice_output(
                &batch,
                cand_rows,
                &self.build_rows,
                self.build_width,
                &cand_bis,
            )));
        }
        let pass: Option<Vec<bool>> = match &self.residual {
            Some(kernel) if !cand_rows.is_empty() => {
                let frame = splice_output(
                    &batch,
                    cand_rows.clone(),
                    &self.build_rows,
                    self.build_width,
                    &cand_bis,
                );
                let sel = kernel.select(&frame)?;
                let mut mask = vec![false; cand_rows.len()];
                for i in sel {
                    mask[i as usize] = true;
                }
                Some(mask)
            }
            _ => None,
        };
        let mut probe_sel: Vec<u32> = Vec::new();
        let mut build_idx: Vec<u32> = Vec::new();
        let mut cur = 0usize;
        for row in 0..rows as u32 {
            let mut any = false;
            while cur < cand_rows.len() && cand_rows[cur] == row {
                if pass.as_ref().is_none_or(|m| m[cur]) {
                    any = true;
                    if !self.matched.is_empty() {
                        self.matched[cand_bis[cur] as usize].store(true, Ordering::Relaxed);
                    }
                    probe_sel.push(row);
                    build_idx.push(cand_bis[cur]);
                }
                cur += 1;
            }
            if !any && preserve_probe {
                probe_sel.push(row);
                build_idx.push(u32::MAX);
            }
        }
        if probe_sel.is_empty() {
            return Ok(None);
        }
        Ok(Some(splice_output(
            &batch,
            probe_sel,
            &self.build_rows,
            self.build_width,
            &build_idx,
        )))
    }

    /// The FULL OUTER tail: unmatched build rows, NULL-padded on the
    /// probe side, chunked at the executor batch size. Only meaningful
    /// after every morsel has been probed.
    fn tail_batches(&self, batch_size: usize) -> Vec<RowBatch<'static>> {
        if self.join != PhysJoinKind::FullOuter {
            return Vec::new();
        }
        let ids: Vec<u32> = self
            .matched
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.load(Ordering::Relaxed))
            .map(|(i, _)| i as u32)
            .collect();
        ids.chunks(batch_size.max(1))
            .map(|chunk| {
                unmatched_build_batch(&self.build_rows, chunk, self.probe_width, self.build_width)
            })
            .collect()
    }
}

impl Stage {
    fn apply<'b>(&self, batch: RowBatch<'b>) -> Result<Option<RowBatch<'b>>, EngineError> {
        match self {
            Stage::Filter(kernel) => {
                let keep = kernel.select(&batch)?;
                Ok(batch.retain(keep))
            }
            Stage::Project(cols) => {
                let rows = batch.num_rows();
                let mut columns = Vec::with_capacity(cols.len());
                for proj in cols {
                    match proj {
                        Proj::Pass(index) if *index < batch.width() => {
                            columns.push(batch.column(*index).clone());
                        }
                        Proj::Pass(index) => {
                            return Err(EngineError::execution(format!(
                                "column index {index} out of range"
                            )));
                        }
                        Proj::Compute(kernel) => {
                            columns.push(ColumnData::owned(kernel.eval_column(&batch)?));
                        }
                    }
                }
                Ok(Some(RowBatch::new(columns, rows)))
            }
            Stage::Join(join) => join.apply(batch),
        }
    }
}

/// Run `batch` through `stages` in order; `None` when a stage drops every
/// row.
fn apply_stages<'b>(
    stages: &[Stage],
    mut batch: RowBatch<'b>,
) -> Result<Option<RowBatch<'b>>, EngineError> {
    for stage in stages {
        match stage.apply(batch)? {
            Some(b) => batch = b,
            None => return Ok(None),
        }
    }
    Ok(Some(batch))
}

/// Whether `plan` roots a pipeline worth running in parallel: its scan
/// leaf spans more than one morsel and is not answered by an index point
/// read.
pub(super) fn worth_parallel(plan: &PhysicalPlan, ctx: &Ctx<'_>) -> bool {
    fn source(plan: &PhysicalPlan) -> Option<&PhysicalPlan> {
        match plan {
            PhysicalPlan::TableScan { .. } => Some(plan),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                source(input)
            }
            PhysicalPlan::HashJoin { probe, .. } => source(probe),
            _ => None,
        }
    }
    let Some(PhysicalPlan::TableScan {
        table, index_eq, ..
    }) = source(plan)
    else {
        return false;
    };
    let Ok(t) = ctx.catalog.table(table) else {
        return false;
    };
    if t.total_slots() <= ctx.morsel_size {
        return false;
    }
    index_eq.is_empty() || t.equality_lookup(index_eq).is_none()
}

/// Decompose `plan` into a [`PipelineSpec`]: walk Filter/Project/HashJoin
/// nodes down to a `TableScan` leaf, compiling stage kernels and
/// materializing + partitioning every join build side (recursively
/// through the parallel executor). `None` when the shape is not a
/// pipeline (the caller falls back to breaker-level parallelism or serial
/// execution).
pub(super) fn build_pipeline<'a>(
    plan: &PhysicalPlan,
    ctx: &Ctx<'a>,
) -> Result<Option<PipelineSpec<'a>>, EngineError> {
    Ok(match plan {
        PhysicalPlan::TableScan {
            table, predicate, ..
        } => {
            // Callers gate on `worth_parallel`, which already rejected
            // index point reads (they take the serial path); no second
            // `equality_lookup` probe here. A pipeline built without that
            // gate would still be correct — `predicate` carries the full
            // conjunction including any index-eligible equalities — just
            // slower than the point read.
            let t = ctx.catalog.table(table)?;
            let scan_kernel = match predicate {
                None => None,
                Some(p) => {
                    let prepared = prepare_expr_with_batch_size(p, ctx.catalog, ctx.batch_size)?;
                    Some(VectorKernel::compile(&prepared))
                }
            };
            Some(PipelineSpec {
                table: t,
                scan_kernel,
                stages: Vec::new(),
            })
        }
        PhysicalPlan::Filter { input, predicate } => match build_pipeline(input, ctx)? {
            None => None,
            Some(mut spec) => {
                let prepared =
                    prepare_expr_with_batch_size(predicate, ctx.catalog, ctx.batch_size)?;
                spec.stages
                    .push(Stage::Filter(VectorKernel::compile(&prepared)));
                Some(spec)
            }
        },
        PhysicalPlan::Project { input, exprs, .. } => match build_pipeline(input, ctx)? {
            None => None,
            Some(mut spec) => {
                let mut cols = Vec::with_capacity(exprs.len());
                for e in exprs {
                    cols.push(match e {
                        crate::expr::BoundExpr::Column { index, .. } => Proj::Pass(*index),
                        _ => {
                            let prepared =
                                prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size)?;
                            Proj::Compute(VectorKernel::compile(&prepared))
                        }
                    });
                }
                spec.stages.push(Stage::Project(cols));
                Some(spec)
            }
        },
        // Under a bounded memory budget, join build sides must be able
        // to spill; the fused `JoinStage` holds its partitioned build in
        // memory, so the plan is left to the breaker path, where both
        // sides stream through per-worker spill partitioners
        // ([`run_morsels_spill`]) into the grace-capable `HashJoinOp`.
        // Scans/filters/projects below stay morsel-parallel.
        PhysicalPlan::HashJoin { .. } if ctx.budget.is_bounded() => None,
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            join,
            ..
        } => match build_pipeline(probe, ctx)? {
            None => None,
            Some(mut spec) => {
                // The build side materializes once, through the parallel
                // executor itself (it may contain its own pipelines).
                let build_rows = super::collect_rows(build, ctx)?;
                let residual = residual
                    .as_ref()
                    .map(|e| prepare_expr_with_batch_size(e, ctx.catalog, ctx.batch_size))
                    .transpose()?
                    .map(|e| VectorKernel::compile(&e));
                spec.stages.push(Stage::Join(Box::new(JoinStage::build(
                    build_rows,
                    probe.schema().len(),
                    build.schema().len(),
                    probe_keys.clone(),
                    build_keys,
                    residual,
                    *join,
                    ctx.workers,
                ))));
                Some(spec)
            }
        },
        _ => None,
    })
}

/// What each worker computes per morsel.
pub(super) enum MorselWork<'s> {
    /// Materialize the pipeline's output rows.
    Collect,
    /// Fold into a per-morsel grouped aggregation state.
    AggGrouped(&'s AggSpec),
    /// Fold into a per-morsel single accumulator set.
    AggGlobal(&'s AggSpec),
}

/// The per-morsel result, tagged with the morsel sequence number by
/// [`run_morsels`].
pub(super) enum MorselOut {
    Rows(Vec<Row>),
    Grouped(Box<GroupTable>),
    Global(crate::exec::aggregate::GroupState),
}

fn process_morsel(
    spec: &PipelineSpec<'_>,
    ctx: &Ctx<'_>,
    slots: Range<usize>,
    work: &MorselWork<'_>,
) -> Result<MorselOut, EngineError> {
    let batches = spec
        .table
        .scan_morsel(slots, ctx.batch_size, spec.scan_kernel.as_ref())?;
    match work {
        MorselWork::Collect => {
            let mut rows = Vec::new();
            for batch in batches {
                if let Some(b) = apply_stages(&spec.stages, batch)? {
                    rows.extend(b.to_rows());
                }
            }
            Ok(MorselOut::Rows(rows))
        }
        MorselWork::AggGrouped(agg) => {
            let mut groups = GroupTable::new();
            for batch in batches {
                if let Some(b) = apply_stages(&spec.stages, batch)? {
                    agg.fold_batch_grouped(&b, &mut groups)?;
                }
            }
            Ok(MorselOut::Grouped(Box::new(groups)))
        }
        MorselWork::AggGlobal(agg) => {
            let mut state = agg.new_state();
            for batch in batches {
                if let Some(b) = apply_stages(&spec.stages, batch)? {
                    agg.fold_batch_global(&b, &mut state)?;
                }
            }
            Ok(MorselOut::Global(state))
        }
    }
}

/// The morsel-driven worker loop: `ctx.workers` scoped threads claim
/// morsels from a shared [`MorselCursor`] until the table is exhausted,
/// producing one [`MorselOut`] per morsel. Results come back sorted by
/// morsel sequence so callers reconstruct the serial order. On error the
/// cursor is poisoned (other workers wind down) and the error from the
/// earliest morsel is returned — the same error the serial executor
/// would hit first.
pub(super) fn run_morsels(
    spec: &PipelineSpec<'_>,
    ctx: &Ctx<'_>,
    work: MorselWork<'_>,
) -> Result<Vec<(usize, MorselOut)>, EngineError> {
    let total = spec.table.total_slots();
    let cursor = MorselCursor::new(total, ctx.effective_morsel_size(total));
    let results: Mutex<Vec<(usize, MorselOut)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<(usize, EngineError)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..ctx.workers {
            s.spawn(|| {
                while let Some((seq, slots)) = cursor.claim() {
                    match process_morsel(spec, ctx, slots, &work) {
                        Ok(out) => results.lock().unwrap().push((seq, out)),
                        Err(e) => {
                            cursor.stop();
                            errors.lock().unwrap().push((seq, e));
                            return;
                        }
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap();
    if let Some((_, e)) = errors.into_iter().min_by_key(|(seq, _)| *seq) {
        return Err(e);
    }
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// How rows flowing into a per-worker spill partitioner hash — it must be
/// the exact hash the consuming breaker uses on its serial drain path, so
/// radix partitions align between producers and the breaker's grace
/// processing.
pub(super) enum SpillHash<'s> {
    /// Equi-join key hash over the given columns.
    Keys(&'s [usize]),
    /// Whole-row hash (DISTINCT and set operations).
    WholeRow,
    /// Aggregation group-key hash.
    Agg(&'s AggSpec),
}

impl SpillHash<'_> {
    pub(super) fn hash(&self, batch: &RowBatch<'_>) -> Result<Vec<u64>, EngineError> {
        Ok(match self {
            SpillHash::Keys(cols) => hash_batch_keys(batch, cols).hashes,
            SpillHash::WholeRow => hash_batch_rows(batch),
            SpillHash::Agg(spec) => spec.group_hashes(batch)?,
        })
    }
}

/// Run one morsel's batches through the stage stack, pushing every output
/// row into the worker's spiller. Row sequence tags are
/// `seq_base | ordinal` with the ordinal counting output rows within the
/// morsel — unique and ascending per worker because workers claim morsels
/// in increasing sequence order.
fn spill_morsel(
    spec: &PipelineSpec<'_>,
    ctx: &Ctx<'_>,
    slots: Range<usize>,
    hash: &SpillHash<'_>,
    seq_base: u64,
    spiller: &mut PartitionedSpiller,
) -> Result<(), EngineError> {
    let batches = spec
        .table
        .scan_morsel(slots, ctx.batch_size, spec.scan_kernel.as_ref())?;
    let mut ordinal = 0u64;
    for batch in batches {
        if let Some(b) = apply_stages(&spec.stages, batch)? {
            let hashes = hash.hash(&b)?;
            for (r, &h) in hashes.iter().enumerate() {
                spiller.push(h, seq_base | ordinal, b.materialize_row(r))?;
                ordinal += 1;
            }
        }
    }
    Ok(())
}

/// The out-of-core morsel loop: like [`run_morsels`], but each worker
/// routes its morsel output straight into its own budget-accounted
/// [`PartitionedSpiller`] instead of materializing `Vec<Row>`s. Returns
/// one partition set per producer (worker spillers, plus one for the
/// FULL OUTER tails when the pipeline has any); sequence tags are
/// `seq_base + (morsel_seq << 32 | output_ordinal)`, so a sequence-ordered
/// merge of all producers reproduces the serial output order exactly.
pub(super) fn run_morsels_spill(
    spec: &PipelineSpec<'_>,
    ctx: &Ctx<'_>,
    hash: SpillHash<'_>,
    seq_base: u64,
) -> Result<Vec<Vec<SpillPartition>>, EngineError> {
    let total = spec.table.total_slots();
    let morsel = ctx.effective_morsel_size(total);
    let cursor = MorselCursor::new(total, morsel);
    let num_morsels = total.div_ceil(morsel.max(1)) as u64;
    let producers: Mutex<Vec<Vec<SpillPartition>>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<(usize, EngineError)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..ctx.workers {
            s.spawn(|| {
                let mut spiller = PartitionedSpiller::new(ctx.budget.clone(), 0);
                while let Some((seq, slots)) = cursor.claim() {
                    let base = seq_base + ((seq as u64) << 32);
                    if let Err(e) = spill_morsel(spec, ctx, slots, &hash, base, &mut spiller) {
                        cursor.stop();
                        errors.lock().unwrap().push((seq, e));
                        return;
                    }
                }
                match spiller.finish() {
                    Ok(parts) => producers.lock().unwrap().push(parts),
                    Err(e) => {
                        cursor.stop();
                        errors.lock().unwrap().push((usize::MAX, e));
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap();
    if let Some((_, e)) = errors.into_iter().min_by_key(|(seq, _)| *seq) {
        return Err(e);
    }
    let mut producers = producers.into_inner().unwrap();
    // FULL OUTER tails sequence after every morsel row (morsel ordinals
    // stay below 1 << 32), matching the serial executor's append order.
    let tails = pipeline_tails(spec, ctx)?;
    if !tails.is_empty() {
        let mut spiller = PartitionedSpiller::new(ctx.budget.clone(), 0);
        let mut seq = seq_base + ((num_morsels + 1) << 32);
        for batch in tails {
            let hashes = hash.hash(&batch)?;
            for (r, &h) in hashes.iter().enumerate() {
                spiller.push(h, seq, batch.materialize_row(r))?;
                seq += 1;
            }
        }
        producers.push(spiller.finish()?);
    }
    Ok(producers)
}

/// The pipeline's tail batches: for every FULL OUTER join stage
/// (bottom-up), its unmatched build rows pushed through the *remaining*
/// stages — which may probe (and mark matches in) outer join stages
/// above, exactly as the serial executor's end-of-probe tail does. Must
/// run after [`run_morsels`] completes.
pub(super) fn pipeline_tails(
    spec: &PipelineSpec<'_>,
    ctx: &Ctx<'_>,
) -> Result<Vec<RowBatch<'static>>, EngineError> {
    let mut out = Vec::new();
    for j in 0..spec.stages.len() {
        if let Stage::Join(join) = &spec.stages[j] {
            for batch in join.tail_batches(ctx.batch_size) {
                if let Some(b) = apply_stages(&spec.stages[j + 1..], batch)? {
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}
