//! Memory-budgeted spill-to-disk for hash operators.
//!
//! The engine's pipeline breakers (join builds, group tables, DISTINCT /
//! set-operation row sets) used to assume their state fits in RAM; any
//! build side or GROUP BY larger than memory aborted the process. This
//! module adds the out-of-core machinery they share:
//!
//! - [`MemoryBudget`]: a cheaply-clonable accounting handle (one per
//!   [`crate::session::Database`]) holding the byte limit, the running
//!   usage counter, the spill directory, and the spill/rehydrate
//!   counters. Unbounded budgets (`limit = usize::MAX`) never spill.
//! - [`SpillWriter`] / [`SpillFile`]: temp-file lifecycle around the
//!   columnar frame codec of [`crate::storage::frame`]. Frames are
//!   encoded on the execution thread but *written* by a dedicated
//!   background writer thread (one per budgeted session) behind a
//!   bounded queue, so eviction overlaps with fold/probe work and
//!   backpressures instead of buffering unboundedly. Write errors
//!   (ENOSPC and friends) surface as clean [`EngineError`]s at the next
//!   enqueue or at [`SpillWriter::finish`], which drains the queue and
//!   fsyncs. Files are created in the budget's spill directory and
//!   removed when the [`SpillFile`] handle drops — spill files never
//!   outlive the query.
//! - [`PartitionedSpiller`]: the radix accumulator. Rows arrive tagged
//!   with their key hash and a global sequence number and are routed to
//!   one of [`NUM_PARTITIONS`] partitions by a high-bit slice of the
//!   hash (rotated per recursion level, so re-partitioning a partition
//!   that still does not fit uses a *fresh* bit range). Partitions
//!   buffer in memory while the budget allows; when the budget
//!   overflows, the largest resident partition is flushed to its spill
//!   file and subsequent rows for it pass through a small bounded write
//!   buffer.
//! - [`SeqMerge`]: a k-way merge over sequence-ascending partition
//!   streams. Parallel execution produces one spiller per worker; the
//!   per-worker slices of a partition merge back into one
//!   sequence-ordered stream holding at most one frame per source
//!   resident.
//! - [`OutputRuns`] / [`MergeEmit`]: budget-bounded operator output.
//!   Each fitting partition appends one key-ascending run; runs flush
//!   to disk under memory pressure and the finished operator emits by
//!   k-way merging the runs — no materialize-and-sort of the full
//!   result.
//!
//! The sequence tags are what make spilling invisible: consumers fold or
//! join partition-at-a-time (any order) and use the tags to restore the
//! exact serial output order, so a spilled run is row-identical —
//! values *and* order — to the in-memory run, at any parallelism.
//! `tests/prop_spill_agree.rs` holds that equivalence under random
//! workloads.
//!
//! The hash bit layout composes with the rest of the engine: spill
//! partitions use rotated *high* bits (levels 0..4 cover bits 48..64),
//! the flat tables index with *low* bits, and tag bytes come from the
//! middle — one hash per key, everywhere.

use std::collections::{BinaryHeap, VecDeque};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::EngineError;
use crate::exec::batch::RowBatch;
use crate::exec::Row;
use crate::storage::frame;
use crate::storage::io::{self as sio, FileHandle, OpenMode};
use crate::value::Value;

/// Radix bits per spill level: 16 partitions per level.
pub(crate) const PART_BITS: u32 = 4;

/// Partitions per spiller (one radix pass).
pub(crate) const NUM_PARTITIONS: usize = 1 << PART_BITS;

/// Deepest recursive re-partition level. Four levels consume hash bits
/// 48..64; beyond that a partition is processed in memory regardless
/// (its rows share 16 hash bits — almost certainly one heavy key, which
/// no amount of hash partitioning can split).
pub(crate) const MAX_SPILL_DEPTH: u32 = 4;

/// Rows per spill write-buffer flush (bounds the per-partition buffer
/// independently of the budget — even a 1-byte budget keeps at most this
/// many rows buffered per spilled partition).
const WRITE_BUFFER_ROWS: usize = 256;

/// Fixed per-tuple accounting overhead on top of the row payload (the
/// `(hash, seq)` tags and vector slack).
const TUPLE_OVERHEAD: usize = 16;

/// Encoded frames the background writer queue holds before enqueueing
/// execution threads block (backpressure). Bounds the memory the queue
/// itself can pin to a handful of frames.
const SPILL_QUEUE_FRAMES: usize = 8;

/// Partition index of `hash` at recursion level `bit_offset / PART_BITS`:
/// the top [`PART_BITS`] bits after rotating the level's range in.
#[inline]
pub(crate) fn spill_partition_of(hash: u64, bit_offset: u32) -> usize {
    (hash.rotate_left(bit_offset) >> (64 - PART_BITS)) as usize
}

/// Monotone suffix for spill file names (process-wide).
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug, Default)]
struct StatCells {
    spilled_partitions: AtomicU64,
    spilled_rows: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
    rehydrated_partitions: AtomicU64,
    rehydrated_rows: AtomicU64,
    bytes_read: AtomicU64,
    repartitions: AtomicU64,
    queue_high_water: AtomicU64,
    overlap_nanos: AtomicU64,
    peak_used: AtomicU64,
}

/// A snapshot of the spill counters, surfaced through
/// [`crate::session::Database::spill_stats`] and the bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions flushed from memory to disk.
    pub spilled_partitions: u64,
    /// Rows written to spill files.
    pub spilled_rows: u64,
    /// Bytes written to spill files (encoded frame bytes).
    pub spilled_bytes: u64,
    /// Spill files created.
    pub spill_files: u64,
    /// Spilled partitions read back for processing.
    pub rehydrated_partitions: u64,
    /// Rows read back from spill files.
    pub rehydrated_rows: u64,
    /// Bytes read back from spill files (encoded frame bytes).
    pub bytes_read: u64,
    /// Recursive re-partition passes (a partition did not fit and was
    /// split again on a rotated hash-bit range).
    pub repartitions: u64,
    /// High-water mark of the background writer queue (frames in flight).
    pub queue_high_water: u64,
    /// Nanoseconds the background writer spent writing — I/O time that
    /// overlapped with execution instead of blocking it.
    pub overlap_nanos: u64,
    /// Peak budget-accounted bytes observed. With per-worker spill
    /// partitioning this stays near the limit even at high parallelism —
    /// the proof that breaker inputs are never fully materialized.
    pub peak_used: u64,
}

impl SpillStats {
    /// True when any spilling happened at all.
    pub fn spilled(&self) -> bool {
        self.spilled_partitions > 0
    }
}

#[derive(Debug)]
struct SlotState {
    file: Option<FileHandle>,
    pending: usize,
    error: Option<String>,
}

/// Shared state between one [`SpillWriter`] and the background writer
/// thread: the open file, the count of queued-but-unwritten frames, and
/// the first write error (sticky until surfaced).
#[derive(Debug)]
struct FileSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum IoMsg {
    Frame { slot: Arc<FileSlot>, bytes: Vec<u8> },
}

/// The per-session background writer: a bounded frame queue and the
/// thread draining it. The thread exits when every sender is gone
/// (session drop plus all in-flight writers).
#[derive(Debug)]
struct SpillIo {
    tx: SyncSender<IoMsg>,
    handle: Option<std::thread::JoinHandle<()>>,
    inflight: Arc<AtomicU64>,
}

fn writer_loop(rx: Receiver<IoMsg>, stats: Arc<StatCells>, inflight: Arc<AtomicU64>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            IoMsg::Frame { slot, bytes } => {
                let start = std::time::Instant::now();
                {
                    let mut st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
                    if st.error.is_none() {
                        if let Some(file) = st.file.as_mut() {
                            if let Err(e) = file.write_all(&bytes) {
                                st.error = Some(e.to_string());
                            }
                        }
                    }
                    st.pending -= 1;
                    slot.cv.notify_all();
                }
                stats
                    .overlap_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                inflight.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[derive(Debug)]
struct BudgetInner {
    /// Byte limit; `usize::MAX` means unbounded.
    limit: AtomicUsize,
    /// Estimated bytes currently held by budget-tracked operator state.
    used: AtomicUsize,
    /// Directory spill files are created in.
    spill_dir: Mutex<PathBuf>,
    /// Shared with the writer thread (which must not keep `BudgetInner`
    /// itself alive, or the session could never drop).
    stats: Arc<StatCells>,
    /// Lazily-started background writer; lives for the session.
    io: Mutex<Option<SpillIo>>,
}

impl Drop for BudgetInner {
    fn drop(&mut self) {
        // Every live SpillWriter holds a budget clone, so when the inner
        // drops there are no senders left beyond ours: closing it ends
        // the writer thread, and joining cannot deadlock.
        if let Some(io) = self.io.get_mut().map(Option::take).unwrap_or(None) {
            let SpillIo { tx, handle, .. } = io;
            drop(tx);
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

/// The session-wide memory accounting handle threaded through the
/// executor. Clones share one underlying account, so every operator of a
/// query (serial or parallel) draws from the same pool.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        MemoryBudget::unbounded()
    }
}

impl MemoryBudget {
    fn with_raw_limit(limit: usize) -> MemoryBudget {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                limit: AtomicUsize::new(limit),
                used: AtomicUsize::new(0),
                spill_dir: Mutex::new(std::env::temp_dir()),
                stats: Arc::new(StatCells::default()),
                io: Mutex::new(None),
            }),
        }
    }

    /// A budget that never spills (the default).
    pub fn unbounded() -> MemoryBudget {
        MemoryBudget::with_raw_limit(usize::MAX)
    }

    /// A budget limited to `bytes` of tracked operator state.
    pub fn with_limit(bytes: usize) -> MemoryBudget {
        MemoryBudget::with_raw_limit(bytes.max(1))
    }

    /// Change the limit in place (`None` = unbounded). Counters and the
    /// spill directory are preserved.
    pub fn set_limit(&self, bytes: Option<usize>) {
        let raw = match bytes {
            Some(b) => b.max(1),
            None => usize::MAX,
        };
        self.inner.limit.store(raw, Ordering::Relaxed);
    }

    /// The configured limit, `None` when unbounded.
    pub fn limit(&self) -> Option<usize> {
        match self.inner.limit.load(Ordering::Relaxed) {
            usize::MAX => None,
            b => Some(b),
        }
    }

    /// Whether a limit is set at all. Unbounded budgets take none of the
    /// spill paths.
    pub fn is_bounded(&self) -> bool {
        self.limit().is_some()
    }

    /// Set the directory spill files are created in.
    pub fn set_spill_dir(&self, dir: PathBuf) {
        *self
            .inner
            .spill_dir
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = dir;
    }

    /// The directory spill files are created in.
    pub fn spill_dir(&self) -> PathBuf {
        self.inner
            .spill_dir
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot the spill/rehydrate counters.
    pub fn stats(&self) -> SpillStats {
        let s = &self.inner.stats;
        SpillStats {
            spilled_partitions: s.spilled_partitions.load(Ordering::Relaxed),
            spilled_rows: s.spilled_rows.load(Ordering::Relaxed),
            spilled_bytes: s.spilled_bytes.load(Ordering::Relaxed),
            spill_files: s.spill_files.load(Ordering::Relaxed),
            rehydrated_partitions: s.rehydrated_partitions.load(Ordering::Relaxed),
            rehydrated_rows: s.rehydrated_rows.load(Ordering::Relaxed),
            bytes_read: s.bytes_read.load(Ordering::Relaxed),
            repartitions: s.repartitions.load(Ordering::Relaxed),
            queue_high_water: s.queue_high_water.load(Ordering::Relaxed),
            overlap_nanos: s.overlap_nanos.load(Ordering::Relaxed),
            peak_used: s.peak_used.load(Ordering::Relaxed),
        }
    }

    /// The background writer's queue handle, starting the thread on
    /// first use.
    fn io(&self) -> Result<(SyncSender<IoMsg>, Arc<AtomicU64>), EngineError> {
        let mut guard = self.inner.io.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            let (tx, rx) = std::sync::mpsc::sync_channel::<IoMsg>(SPILL_QUEUE_FRAMES);
            let stats = Arc::clone(&self.inner.stats);
            let inflight = Arc::new(AtomicU64::new(0));
            let thread_inflight = Arc::clone(&inflight);
            let handle = std::thread::Builder::new()
                .name("openivm-spill-io".into())
                .spawn(move || writer_loop(rx, stats, thread_inflight))
                .map_err(|e| {
                    EngineError::execution(format!("cannot start spill writer thread: {e}"))
                })?;
            *guard = Some(SpillIo {
                tx,
                handle: Some(handle),
                inflight,
            });
        }
        let io = guard
            .as_ref()
            .ok_or_else(|| EngineError::execution("spill writer thread is not running"))?;
        Ok((io.tx.clone(), Arc::clone(&io.inflight)))
    }

    /// Account `bytes` of new operator state.
    pub(crate) fn add(&self, bytes: usize) {
        let now = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner
            .stats
            .peak_used
            .fetch_max(now as u64, Ordering::Relaxed);
    }

    /// Release `bytes` of operator state.
    pub(crate) fn sub(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Whether tracked usage currently exceeds the limit.
    pub(crate) fn over_limit(&self) -> bool {
        self.inner.used.load(Ordering::Relaxed) > self.inner.limit.load(Ordering::Relaxed)
    }

    /// Whether a finished partition of `bytes` is too large to process
    /// in memory and should be re-partitioned on the next bit range.
    pub(crate) fn should_split(&self, bytes: u64) -> bool {
        (bytes as u128) > self.inner.limit.load(Ordering::Relaxed) as u128
    }
}

/// Approximate accounted footprint of one spiller tuple.
#[inline]
pub(crate) fn tuple_bytes(row: &[Value]) -> usize {
    frame::row_bytes(row) + TUPLE_OVERHEAD
}

/// The start time (clock ticks since boot) of a process, from field 22
/// of `/proc/<pid>/stat` — the kernel's disambiguator between a pid and
/// a *recycled* pid: a new process under an old pid gets a new start
/// time. `None` when the process is gone or the field is unreadable.
/// Parsed after the last `)` because the comm field may itself contain
/// spaces and parentheses.
#[cfg(target_os = "linux")]
fn proc_start_time(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let after_comm = stat.rsplit_once(')')?.1;
    // Tokens after the comm field start at field 3 (state), so field 22
    // (starttime) is the 20th token here.
    after_comm.split_whitespace().nth(19)?.parse().ok()
}

/// This process's own start time, stamped into every spill filename so
/// a later process that drew the same pid (PID reuse) — or another
/// concurrent session in *this* process — can tell our files from a
/// dead owner's. 0 where `/proc` is unavailable.
fn own_start_time() -> u64 {
    static OWN: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *OWN.get_or_init(|| {
        #[cfg(target_os = "linux")]
        {
            proc_start_time(std::process::id()).unwrap_or(0)
        }
        #[cfg(not(target_os = "linux"))]
        {
            0
        }
    })
}

/// Whether the recorded owner of a spill file is still alive — meaning
/// the pid exists *and* belongs to the same process incarnation that
/// created the file. A dead pid is reclaimable; a live pid with a
/// different start time is a recycled pid, i.e. the real owner is dead
/// and the file is reclaimable too. Legacy filenames without a start
/// time (`start_time == None`) fall back to bare pid liveness. Only
/// Linux gives us a cheap answer (`/proc/<pid>/stat`); elsewhere we
/// stay conservative and never reclaim another process's files.
fn spill_owner_alive(pid: u32, start_time: Option<u64>) -> bool {
    #[cfg(target_os = "linux")]
    {
        match proc_start_time(pid) {
            None => false,
            Some(current) => match start_time {
                Some(recorded) => current == recorded,
                None => true,
            },
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (pid, start_time);
        true
    }
}

/// Delete `openivm-spill-{pid}-{starttime}-{seq}.bin` files in `dir`
/// whose owning process incarnation is dead — the temp files a crashed
/// process leaves behind. Liveness is pid + process start time, so a
/// recycled pid cannot make a dead owner's files look owned (or, before
/// this check existed, leak them forever). Files of the live owner
/// (including our own) are never touched; legacy two-part names
/// (`pid-seq`) are judged on pid liveness alone. Returns the number of
/// files removed; all I/O errors are swallowed (cleanup is best-effort
/// and races with concurrent databases).
pub fn clean_orphan_spill_files(dir: &Path) -> usize {
    let Ok(entries) = sio::read_dir(dir) else {
        return 0;
    };
    let own_pid = std::process::id();
    let mut removed = 0;
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("openivm-spill-")
            .and_then(|r| r.strip_suffix(".bin"))
        else {
            continue;
        };
        let mut parts = stem.split('-');
        let Some(pid) = parts.next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        // Three-part names carry the owner's start time; legacy
        // two-part names (`pid-seq`) don't.
        let start_time = match (parts.next(), parts.next()) {
            (Some(st), Some(_seq)) => st.parse::<u64>().ok(),
            _ => None,
        };
        let ours = pid == own_pid && start_time.is_none_or(|st| st == own_start_time());
        if ours || spill_owner_alive(pid, start_time) {
            continue;
        }
        if sio::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// `Read` adapter counting decoded bytes, feeding the `bytes_read` stat.
struct CountingReader<R> {
    inner: R,
    n: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.n += n as u64;
        Ok(n)
    }
}

/// A spill file being written. Frames are encoded here on the calling
/// thread and handed to the session's background writer; `finish` drains
/// the queue, surfaces any deferred write error, and fsyncs.
#[derive(Debug)]
pub(crate) struct SpillWriter {
    /// Keeps the session (and so the writer thread) alive while any
    /// writer exists.
    budget: MemoryBudget,
    slot: Arc<FileSlot>,
    tx: SyncSender<IoMsg>,
    inflight: Arc<AtomicU64>,
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Create a fresh spill file in `budget`'s spill directory.
    pub(crate) fn create(budget: &MemoryBudget) -> Result<SpillWriter, EngineError> {
        let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = budget.spill_dir().join(format!(
            "openivm-spill-{}-{}-{}.bin",
            std::process::id(),
            own_start_time(),
            seq
        ));
        SpillWriter::create_at(path, budget)
    }

    /// Create a writer at an explicit path. A missing or closed
    /// directory fails here, synchronously; device-level errors (ENOSPC)
    /// surface later through the async error path.
    fn create_at(path: PathBuf, budget: &MemoryBudget) -> Result<SpillWriter, EngineError> {
        let file = sio::open(&path, OpenMode::Create)
            .map_err(|e| EngineError::execution(format!("cannot create spill file: {e}")))?;
        let (tx, inflight) = budget.io()?;
        budget
            .inner
            .stats
            .spill_files
            .fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(FileSlot {
            state: Mutex::new(SlotState {
                file: Some(file),
                pending: 0,
                error: None,
            }),
            cv: Condvar::new(),
        });
        let mut w = SpillWriter {
            budget: budget.clone(),
            slot,
            tx,
            inflight,
            path,
            rows: 0,
            bytes: 0,
        };
        // The header rides the queue like every frame, so even it gets
        // the async error discipline (a full device fails the next
        // enqueue or `finish`, never a hang).
        let mut header = Vec::new();
        frame::write_header(&mut header)?;
        w.enqueue(header)?;
        Ok(w)
    }

    fn enqueue(&mut self, bytes: Vec<u8>) -> Result<(), EngineError> {
        {
            let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = &st.error {
                return Err(EngineError::execution(format!("spill write failed: {e}")));
            }
            st.pending += 1;
        }
        let queued = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.budget
            .inner
            .stats
            .queue_high_water
            .fetch_max(queued, Ordering::Relaxed);
        self.tx
            .send(IoMsg::Frame {
                slot: Arc::clone(&self.slot),
                bytes,
            })
            .map_err(|_| EngineError::execution("spill writer thread terminated"))
    }

    /// Encode one frame of rows and queue it for the background writer.
    /// Returns as soon as the queue accepts the frame.
    pub(crate) fn write_rows(&mut self, rows: &[Row]) -> Result<(), EngineError> {
        if rows.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        self.bytes += frame::write_frame(&mut buf, rows)?;
        self.rows += rows.len() as u64;
        self.enqueue(buf)
    }

    /// Drain queued frames, surface any deferred write error, fsync, and
    /// seal into a readable [`SpillFile`].
    pub(crate) fn finish(mut self) -> Result<SpillFile, EngineError> {
        let file = {
            let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.pending > 0 {
                st = self.slot.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if let Some(e) = st.error.take() {
                return Err(EngineError::execution(format!("spill write failed: {e}")));
            }
            st.file.take()
        };
        if let Some(mut file) = file {
            file.sync_data()
                .map_err(|e| EngineError::execution(format!("spill fsync failed: {e}")))?;
        }
        Ok(SpillFile {
            path: std::mem::take(&mut self.path),
            rows: self.rows,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        // Abandoned writers (error paths) must not leak their file; any
        // still-queued frames find the slot closed and are discarded.
        if !self.path.as_os_str().is_empty() {
            let _ = sio::remove_file(&self.path);
            self.slot
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .file = None;
        }
    }
}

/// A sealed spill file; removed from disk when dropped.
#[derive(Debug)]
pub(crate) struct SpillFile {
    path: PathBuf,
    rows: u64,
}

impl SpillFile {
    /// Number of rows in the file.
    pub(crate) fn rows(&self) -> u64 {
        self.rows
    }

    /// Stream every frame through `f`, counting bytes read.
    pub(crate) fn replay(
        &self,
        budget: &MemoryBudget,
        mut f: impl FnMut(Vec<Row>) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        let stats = &budget.inner.stats;
        let file = sio::open(&self.path, OpenMode::ReadOnly)
            .map_err(|e| EngineError::execution(format!("cannot reopen spill file: {e}")))?;
        let mut r = CountingReader {
            inner: BufReader::new(file),
            n: 0,
        };
        frame::read_header(&mut r)?;
        let mut counted = 0u64;
        while let Some(rows) = frame::read_frame(&mut r)? {
            stats.bytes_read.fetch_add(r.n - counted, Ordering::Relaxed);
            counted = r.n;
            f(rows)?;
        }
        stats.bytes_read.fetch_add(r.n - counted, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = sio::remove_file(&self.path);
    }
}

/// A frame-at-a-time reader over a sealed spill file. Owns the file
/// handle (so deletion still happens on drop) and keeps only one decoded
/// frame in memory.
pub(crate) struct SpillReader {
    _file: SpillFile,
    r: CountingReader<BufReader<FileHandle>>,
    stats: Arc<StatCells>,
    counted: u64,
}

impl SpillReader {
    pub(crate) fn open(file: SpillFile, budget: &MemoryBudget) -> Result<SpillReader, EngineError> {
        let stats = Arc::clone(&budget.inner.stats);
        stats.rehydrated_partitions.fetch_add(1, Ordering::Relaxed);
        let f = sio::open(&file.path, OpenMode::ReadOnly)
            .map_err(|e| EngineError::execution(format!("cannot reopen spill file: {e}")))?;
        let mut r = CountingReader {
            inner: BufReader::new(f),
            n: 0,
        };
        frame::read_header(&mut r)?;
        Ok(SpillReader {
            _file: file,
            r,
            stats,
            counted: 0,
        })
    }

    pub(crate) fn next_frame(&mut self) -> Result<Option<Vec<Row>>, EngineError> {
        let frame = frame::read_frame(&mut self.r)?;
        self.stats
            .bytes_read
            .fetch_add(self.r.n - self.counted, Ordering::Relaxed);
        self.counted = self.r.n;
        if let Some(rows) = &frame {
            self.stats
                .rehydrated_rows
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
        }
        Ok(frame)
    }
}

/// One spiller tuple: `(key hash, global sequence, row)`.
pub(crate) type Tagged = (u64, u64, Row);

#[derive(Debug, Default)]
struct PartBuf {
    resident: Vec<Tagged>,
    resident_bytes: usize,
    writer: Option<SpillWriter>,
    write_buf: Vec<Row>,
    total_rows: u64,
    total_bytes: u64,
}

/// The radix accumulator: rows route to partitions by a high-bit slice
/// of their hash, buffer in memory under the budget, and overflow to
/// per-partition spill files.
#[derive(Debug)]
pub(crate) struct PartitionedSpiller {
    budget: MemoryBudget,
    parts: Vec<PartBuf>,
    bit_offset: u32,
    held: usize,
    spilled_any: bool,
}

/// One producer's finished partition set, indexed by radix partition:
/// index `i` of every producer's set holds the same key space, so a
/// grace consumer merges index `i` across producers.
pub(crate) type PartitionGroups = Vec<Vec<SpillPartition>>;

/// One finished partition: resident rows or a sealed spill file.
#[derive(Debug)]
pub(crate) enum SpillPartition {
    /// Fully in memory.
    Resident {
        /// The partition's tuples in arrival (sequence-ascending) order.
        rows: Vec<Tagged>,
        /// Accounted bytes.
        bytes: u64,
    },
    /// On disk.
    Spilled {
        /// The sealed file (tuples in arrival order).
        file: SpillFile,
        /// Accounted bytes.
        bytes: u64,
    },
}

impl SpillPartition {
    /// Accounted byte size of the partition.
    pub(crate) fn bytes(&self) -> u64 {
        match self {
            SpillPartition::Resident { bytes, .. } | SpillPartition::Spilled { bytes, .. } => {
                *bytes
            }
        }
    }

    /// Number of tuples in the partition.
    pub(crate) fn row_count(&self) -> u64 {
        match self {
            SpillPartition::Resident { rows, .. } => rows.len() as u64,
            SpillPartition::Spilled { file, .. } => file.rows(),
        }
    }

    /// Materialize the whole partition in sequence-ascending order.
    /// Callers only do this for partitions the budget says fit (or at
    /// [`MAX_SPILL_DEPTH`], where splitting cannot help).
    pub(crate) fn load(self, budget: &MemoryBudget) -> Result<Vec<Tagged>, EngineError> {
        match self {
            SpillPartition::Resident { rows, .. } => Ok(rows),
            SpillPartition::Spilled { file, .. } => {
                let stats = &budget.inner.stats;
                stats.rehydrated_partitions.fetch_add(1, Ordering::Relaxed);
                let mut out: Vec<Tagged> = Vec::with_capacity(file.rows() as usize);
                file.replay(budget, |rows| {
                    stats
                        .rehydrated_rows
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    for row in rows {
                        out.push(untag(row)?);
                    }
                    Ok(())
                })?;
                Ok(out)
            }
        }
    }
}

/// Append the `(seq, hash)` tag columns for spill encoding.
fn tag(mut row: Row, hash: u64, seq: u64) -> Row {
    row.push(Value::Integer(seq as i64));
    row.push(Value::Integer(hash as i64));
    row
}

/// Strip the tag columns back off a spilled row.
fn untag(mut row: Row) -> Result<Tagged, EngineError> {
    let hash = row
        .pop()
        .and_then(|v| v.as_integer())
        .ok_or_else(|| EngineError::execution("corrupt spill frame: missing hash tag"))?;
    let seq = row
        .pop()
        .and_then(|v| v.as_integer())
        .ok_or_else(|| EngineError::execution("corrupt spill frame: missing sequence tag"))?;
    Ok((hash as u64, seq as u64, row))
}

impl PartitionedSpiller {
    /// A spiller at recursion level `bit_offset / PART_BITS`.
    pub(crate) fn new(budget: MemoryBudget, bit_offset: u32) -> PartitionedSpiller {
        PartitionedSpiller {
            budget,
            parts: (0..NUM_PARTITIONS).map(|_| PartBuf::default()).collect(),
            bit_offset,
            held: 0,
            spilled_any: false,
        }
    }

    /// Whether any partition has been flushed to disk so far.
    pub(crate) fn spilled_any(&self) -> bool {
        self.spilled_any
    }

    /// Route one tuple to its partition, spilling the largest resident
    /// partitions when the budget overflows.
    pub(crate) fn push(&mut self, hash: u64, seq: u64, row: Row) -> Result<(), EngineError> {
        let p = spill_partition_of(hash, self.bit_offset);
        let bytes = tuple_bytes(&row);
        let part = &mut self.parts[p];
        part.total_rows += 1;
        part.total_bytes += bytes as u64;
        if part.writer.is_some() {
            part.write_buf.push(tag(row, hash, seq));
            if part.write_buf.len() >= WRITE_BUFFER_ROWS {
                Self::flush_write_buf(&mut self.parts[p], &self.budget)?;
            }
            return Ok(());
        }
        part.resident.push((hash, seq, row));
        part.resident_bytes += bytes;
        self.held += bytes;
        self.budget.add(bytes);
        while self.budget.over_limit() {
            if !self.spill_largest()? {
                break;
            }
        }
        Ok(())
    }

    fn flush_write_buf(part: &mut PartBuf, budget: &MemoryBudget) -> Result<(), EngineError> {
        if part.write_buf.is_empty() {
            return Ok(());
        }
        let writer = part.writer.as_mut().expect("flushing a spilled partition");
        let before = writer.bytes;
        // Chunked frames: the initial eviction can carry a budget's worth
        // of resident rows at once, and rehydration materializes one
        // frame at a time.
        for chunk in part.write_buf.chunks(4096) {
            writer.write_rows(chunk)?;
        }
        let stats = &budget.inner.stats;
        stats
            .spilled_rows
            .fetch_add(part.write_buf.len() as u64, Ordering::Relaxed);
        stats
            .spilled_bytes
            .fetch_add(writer.bytes - before, Ordering::Relaxed);
        part.write_buf.clear();
        Ok(())
    }

    /// Flush the largest resident partition to disk; `false` when every
    /// partition is already spilled (nothing left to evict here).
    fn spill_largest(&mut self) -> Result<bool, EngineError> {
        let victim = self
            .parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.resident.is_empty())
            .max_by_key(|(_, p)| p.resident_bytes)
            .map(|(i, _)| i);
        let Some(i) = victim else {
            return Ok(false);
        };
        let budget = self.budget.clone();
        let part = &mut self.parts[i];
        if part.writer.is_none() {
            part.writer = Some(SpillWriter::create(&budget)?);
            budget
                .inner
                .stats
                .spilled_partitions
                .fetch_add(1, Ordering::Relaxed);
        }
        part.write_buf.extend(
            std::mem::take(&mut part.resident)
                .into_iter()
                .map(|(hash, seq, row)| tag(row, hash, seq)),
        );
        Self::flush_write_buf(part, &budget)?;
        let released = std::mem::take(&mut part.resident_bytes);
        self.held -= released;
        self.budget.sub(released);
        self.spilled_any = true;
        Ok(true)
    }

    /// Seal every partition, in partition order. The budget reservation
    /// for resident rows transfers to the caller's processing phase and
    /// is released here (processing is partition-at-a-time and checks
    /// [`MemoryBudget::should_split`] before materializing anything).
    pub(crate) fn finish(mut self) -> Result<Vec<SpillPartition>, EngineError> {
        let budget = self.budget.clone();
        let mut out = Vec::with_capacity(self.parts.len());
        for mut part in self.parts.drain(..) {
            if part.writer.is_some() {
                Self::flush_write_buf(&mut part, &budget)?;
                let file = part.writer.take().expect("checked above").finish()?;
                out.push(SpillPartition::Spilled {
                    file,
                    bytes: part.total_bytes,
                });
            } else {
                out.push(SpillPartition::Resident {
                    rows: part.resident,
                    bytes: part.total_bytes,
                });
            }
        }
        budget.sub(std::mem::take(&mut self.held));
        Ok(out)
    }
}

impl Drop for PartitionedSpiller {
    fn drop(&mut self) {
        // Error paths drop the spiller without `finish`; release the
        // reservation so the session budget doesn't leak usage.
        self.budget.sub(self.held);
        self.held = 0;
    }
}

/// Cursor over one sequence-ascending tuple source: a resident partition
/// or a frame-at-a-time spill reader.
struct TaggedCursor {
    reader: Option<SpillReader>,
    buf: VecDeque<Tagged>,
}

impl TaggedCursor {
    fn refill(&mut self) -> Result<(), EngineError> {
        while self.buf.is_empty() {
            let Some(r) = self.reader.as_mut() else {
                return Ok(());
            };
            match r.next_frame()? {
                Some(rows) => {
                    for row in rows {
                        self.buf.push_back(untag(row)?);
                    }
                }
                None => self.reader = None,
            }
        }
        Ok(())
    }

    fn peek_seq(&self) -> Option<u64> {
        self.buf.front().map(|t| t.1)
    }
}

/// K-way merge over sequence-ascending partition streams, yielding one
/// globally sequence-ordered stream. Spilled sources keep at most one
/// decoded frame resident, so merging `k` per-worker slices of a
/// partition costs ~`k` frames of memory, not the partition.
pub(crate) struct SeqMerge {
    cursors: Vec<TaggedCursor>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
}

impl SeqMerge {
    /// Merge `parts` (each internally sequence-ascending; sequences are
    /// globally unique across them).
    pub(crate) fn new(
        parts: Vec<SpillPartition>,
        budget: &MemoryBudget,
    ) -> Result<SeqMerge, EngineError> {
        let mut cursors = Vec::with_capacity(parts.len());
        for part in parts {
            if part.row_count() == 0 {
                continue;
            }
            match part {
                SpillPartition::Resident { rows, .. } => cursors.push(TaggedCursor {
                    reader: None,
                    buf: rows.into(),
                }),
                SpillPartition::Spilled { file, .. } => cursors.push(TaggedCursor {
                    reader: Some(SpillReader::open(file, budget)?),
                    buf: VecDeque::new(),
                }),
            }
        }
        let mut merge = SeqMerge {
            cursors,
            heap: BinaryHeap::new(),
        };
        for i in 0..merge.cursors.len() {
            merge.cursors[i].refill()?;
            if let Some(seq) = merge.cursors[i].peek_seq() {
                merge.heap.push(std::cmp::Reverse((seq, i)));
            }
        }
        Ok(merge)
    }

    /// The next tuple in global sequence order.
    pub(crate) fn next(&mut self) -> Result<Option<Tagged>, EngineError> {
        let Some(std::cmp::Reverse((_, i))) = self.heap.pop() else {
            return Ok(None);
        };
        let tuple = self.cursors[i]
            .buf
            .pop_front()
            .expect("heap entry implies a buffered tuple");
        self.cursors[i].refill()?;
        if let Some(seq) = self.cursors[i].peek_seq() {
            self.heap.push(std::cmp::Reverse((seq, i)));
        }
        Ok(Some(tuple))
    }

    /// Materialize the merged stream (for sides the budget says fit).
    pub(crate) fn collect_all(mut self) -> Result<Vec<Tagged>, EngineError> {
        let mut out = Vec::new();
        while let Some(t) = self.next()? {
            out.push(t);
        }
        Ok(out)
    }

    /// Stream the merged tuples through `f` in chunks of at most
    /// `chunk_rows` — the streamed-side discipline: never materialize.
    pub(crate) fn for_each_chunk(
        mut self,
        chunk_rows: usize,
        mut f: impl FnMut(Vec<Tagged>) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        let cap = chunk_rows.max(1);
        let mut chunk: Vec<Tagged> = Vec::with_capacity(cap);
        while let Some(t) = self.next()? {
            chunk.push(t);
            if chunk.len() == cap {
                f(std::mem::take(&mut chunk))?;
            }
        }
        if !chunk.is_empty() {
            f(chunk)?;
        }
        Ok(())
    }
}

/// Gather column `p` from every producer's partition vector.
fn partition_column(groups: &mut [Vec<SpillPartition>], p: usize) -> Vec<SpillPartition> {
    let mut col = Vec::new();
    for g in groups.iter_mut() {
        if p < g.len() {
            col.push(std::mem::replace(
                &mut g[p],
                SpillPartition::Resident {
                    rows: Vec::new(),
                    bytes: 0,
                },
            ));
        }
    }
    col
}

/// Stream a partition group through a sub-spiller on the next bit range
/// (in global sequence order, so sub-partitions stay sequence-ascending).
fn repartition_group(
    parts: Vec<SpillPartition>,
    budget: &MemoryBudget,
    bit_offset: u32,
) -> Result<Vec<SpillPartition>, EngineError> {
    budget
        .inner
        .stats
        .repartitions
        .fetch_add(1, Ordering::Relaxed);
    let mut sub = PartitionedSpiller::new(budget.clone(), bit_offset);
    let mut merge = SeqMerge::new(parts, budget)?;
    while let Some((hash, seq, row)) = merge.next()? {
        sub.push(hash, seq, row)?;
    }
    sub.finish()
}

fn group_step(
    parts: Vec<SpillPartition>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let rows: u64 = parts.iter().map(|p| p.row_count()).sum();
    if rows == 0 {
        return Ok(());
    }
    let bytes: u64 = parts.iter().map(|p| p.bytes()).sum();
    if depth + 1 < MAX_SPILL_DEPTH && budget.should_split(bytes) && rows > 1 {
        let sub = repartition_group(parts, budget, (depth + 1) * PART_BITS)?;
        for_each_fitting_group(vec![sub], budget, depth + 1, process)
    } else {
        process(SeqMerge::new(parts, budget)?.collect_all()?)
    }
}

/// Drive every partition of a group of finished spillers (one per
/// producer — e.g. one per parallel worker) through `process`,
/// recursively re-partitioning (rotated bit range) any partition the
/// budget says does not fit, until [`MAX_SPILL_DEPTH`]. The per-producer
/// slices of each partition are k-way merged on their sequence tags, so
/// partitions reach `process` fully materialized in sequence-ascending
/// order regardless of how many producers wrote them.
pub(crate) fn for_each_fitting_group(
    mut groups: Vec<Vec<SpillPartition>>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let n = groups.iter().map(|g| g.len()).max().unwrap_or(0);
    for p in 0..n {
        group_step(partition_column(&mut groups, p), budget, depth, process)?;
    }
    Ok(())
}

/// Single-producer convenience over [`for_each_fitting_group`].
#[cfg(test)]
pub(crate) fn for_each_fitting_partition(
    parts: Vec<SpillPartition>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    for_each_fitting_group(vec![parts], budget, depth, process)
}

fn group_pair_step(
    a_parts: Vec<SpillPartition>,
    b_parts: Vec<SpillPartition>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>, SeqMerge) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let a_rows: u64 = a_parts.iter().map(|p| p.row_count()).sum();
    let b_rows: u64 = b_parts.iter().map(|p| p.row_count()).sum();
    if a_rows == 0 && b_rows == 0 {
        return Ok(());
    }
    let a_bytes: u64 = a_parts.iter().map(|p| p.bytes()).sum();
    if depth + 1 < MAX_SPILL_DEPTH && budget.should_split(a_bytes) && a_rows > 1 {
        let off = (depth + 1) * PART_BITS;
        let a_sub = repartition_group(a_parts, budget, off)?;
        let b_sub = repartition_group(b_parts, budget, off)?;
        for_each_fitting_group_pair(vec![a_sub], vec![b_sub], budget, depth + 1, process)
    } else {
        process(
            SeqMerge::new(a_parts, budget)?.collect_all()?,
            SeqMerge::new(b_parts, budget)?,
        )
    }
}

/// Pairwise variant of [`for_each_fitting_group`] for two-sided
/// operators (join build/probe, set-operation right/left). Partitions
/// pair positionally (both sides use the same bit range); when side `a`
/// does not fit, **both** sides re-partition on the next bit range so
/// the pairing stays aligned. `process` receives side `a` fully
/// materialized and side `b` as a sequence-ordered merge to stream.
pub(crate) fn for_each_fitting_group_pair(
    mut a_groups: Vec<Vec<SpillPartition>>,
    mut b_groups: Vec<Vec<SpillPartition>>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>, SeqMerge) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let n = a_groups
        .iter()
        .chain(b_groups.iter())
        .map(|g| g.len())
        .max()
        .unwrap_or(0);
    for p in 0..n {
        group_pair_step(
            partition_column(&mut a_groups, p),
            partition_column(&mut b_groups, p),
            budget,
            depth,
            process,
        )?;
    }
    Ok(())
}

/// Emission keys are `(primary, secondary)` pairs — e.g. a join's
/// `(probe sequence, match ordinal)` — restoring the exact serial output
/// order across partitions without a global sort.
type EmitKey = (u64, u64);

#[derive(Debug, Default)]
struct Run {
    writer: Option<SpillWriter>,
    resident: Vec<(u64, u64, Row)>,
    resident_bytes: usize,
    last_key: Option<EmitKey>,
}

/// Budget-bounded operator output: each fitting partition appends one
/// key-ascending run; runs flush to disk (prefix order preserved) when
/// the budget overflows. `finish` turns the runs into a [`MergeEmit`]
/// that k-way merges them — output memory stays at ~one frame per run
/// instead of the whole result.
pub(crate) struct OutputRuns {
    budget: MemoryBudget,
    runs: Vec<Run>,
    held: usize,
}

impl OutputRuns {
    pub(crate) fn new(budget: MemoryBudget) -> OutputRuns {
        OutputRuns {
            budget,
            runs: Vec::new(),
            held: 0,
        }
    }

    /// Start the next run. Keys must ascend *within* a run; runs may
    /// overlap each other freely.
    pub(crate) fn begin_run(&mut self) {
        self.runs.push(Run::default());
    }

    /// Append one output row to the current run.
    pub(crate) fn push(&mut self, k1: u64, k2: u64, row: Row) -> Result<(), EngineError> {
        let run = self.runs.last_mut().expect("begin_run before push");
        debug_assert!(
            run.last_key.is_none_or(|k| k <= (k1, k2)),
            "output run keys must ascend"
        );
        run.last_key = Some((k1, k2));
        let bytes = tuple_bytes(&row);
        run.resident.push((k1, k2, row));
        run.resident_bytes += bytes;
        self.held += bytes;
        self.budget.add(bytes);
        while self.budget.over_limit() {
            if !self.flush_largest()? {
                break;
            }
        }
        Ok(())
    }

    /// Flush the largest resident run suffix to its file. Only the last
    /// run ever grows again, so every file stays a key-prefix of its run.
    fn flush_largest(&mut self) -> Result<bool, EngineError> {
        let victim = self
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.resident.is_empty())
            .max_by_key(|(_, r)| r.resident_bytes)
            .map(|(i, _)| i);
        let Some(i) = victim else {
            return Ok(false);
        };
        let budget = self.budget.clone();
        let run = &mut self.runs[i];
        if run.writer.is_none() {
            run.writer = Some(SpillWriter::create(&budget)?);
            budget
                .inner
                .stats
                .spilled_partitions
                .fetch_add(1, Ordering::Relaxed);
        }
        let writer = run.writer.as_mut().expect("just created");
        let before = writer.bytes;
        let rows: Vec<Row> = std::mem::take(&mut run.resident)
            .into_iter()
            .map(|(k1, k2, row)| tag(row, k1, k2))
            .collect();
        for chunk in rows.chunks(4096) {
            writer.write_rows(chunk)?;
        }
        let stats = &budget.inner.stats;
        stats
            .spilled_rows
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        stats
            .spilled_bytes
            .fetch_add(writer.bytes - before, Ordering::Relaxed);
        let released = std::mem::take(&mut run.resident_bytes);
        self.held -= released;
        self.budget.sub(released);
        Ok(true)
    }

    /// Seal the runs into a streaming merge emitter.
    pub(crate) fn finish(
        mut self,
        width: usize,
        batch_size: usize,
    ) -> Result<MergeEmit, EngineError> {
        let budget = self.budget.clone();
        budget.sub(std::mem::take(&mut self.held));
        let mut cursors = Vec::new();
        for run in std::mem::take(&mut self.runs) {
            let reader = match run.writer {
                Some(w) => Some(SpillReader::open(w.finish()?, &budget)?),
                None => None,
            };
            if reader.is_none() && run.resident.is_empty() {
                continue;
            }
            cursors.push(RunCursor {
                reader,
                buf: VecDeque::new(),
                resident: run.resident.into(),
            });
        }
        let mut emit = MergeEmit {
            cursors,
            heap: BinaryHeap::new(),
            width,
            batch_size: batch_size.max(1),
        };
        for i in 0..emit.cursors.len() {
            emit.cursors[i].refill()?;
            if let Some(key) = emit.cursors[i].peek() {
                emit.heap.push(std::cmp::Reverse((key.0, key.1, i)));
            }
        }
        Ok(emit)
    }
}

impl Drop for OutputRuns {
    fn drop(&mut self) {
        self.budget.sub(self.held);
        self.held = 0;
    }
}

/// One sealed run: an optional file prefix followed by the resident
/// suffix, keys ascending across the whole.
struct RunCursor {
    reader: Option<SpillReader>,
    buf: VecDeque<(u64, u64, Row)>,
    resident: VecDeque<(u64, u64, Row)>,
}

impl RunCursor {
    fn refill(&mut self) -> Result<(), EngineError> {
        while self.buf.is_empty() {
            if let Some(r) = self.reader.as_mut() {
                match r.next_frame()? {
                    Some(rows) => {
                        for row in rows {
                            let (k1, k2, row) = untag(row)?;
                            self.buf.push_back((k1, k2, row));
                        }
                    }
                    None => self.reader = None,
                }
            } else {
                if self.resident.is_empty() {
                    return Ok(());
                }
                std::mem::swap(&mut self.buf, &mut self.resident);
            }
        }
        Ok(())
    }

    fn peek(&self) -> Option<EmitKey> {
        self.buf.front().map(|t| (t.0, t.1))
    }
}

/// Streaming k-way merge over sealed output runs, emitting batches in
/// global key order with ~one frame per run resident.
pub(crate) struct MergeEmit {
    cursors: Vec<RunCursor>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
    width: usize,
    batch_size: usize,
}

impl MergeEmit {
    fn next_row(&mut self) -> Result<Option<Row>, EngineError> {
        let Some(std::cmp::Reverse((_, _, i))) = self.heap.pop() else {
            return Ok(None);
        };
        let (_, _, row) = self.cursors[i]
            .buf
            .pop_front()
            .expect("heap entry implies a buffered tuple");
        self.cursors[i].refill()?;
        if let Some(key) = self.cursors[i].peek() {
            self.heap.push(std::cmp::Reverse((key.0, key.1, i)));
        }
        Ok(Some(row))
    }

    /// The next output batch (up to `batch_size` rows), `None` at end.
    pub(crate) fn next_batch<'a>(&mut self) -> Result<Option<RowBatch<'a>>, EngineError> {
        let mut rows: Vec<Row> = Vec::with_capacity(self.batch_size);
        while rows.len() < self.batch_size {
            match self.next_row()? {
                Some(row) => rows.push(row),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::from_rows(self.width, rows)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        vec![Value::Integer(i), Value::Varchar(format!("row-{i}"))]
    }

    #[test]
    fn budget_limits_and_counters() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        assert_eq!(b.limit(), None);
        b.set_limit(Some(1024));
        assert!(b.is_bounded());
        assert_eq!(b.limit(), Some(1024));
        b.add(2000);
        assert!(b.over_limit());
        b.sub(2000);
        assert!(!b.over_limit());
        assert!(b.should_split(2048));
        assert!(!b.should_split(512));
        assert!(b.stats().peak_used >= 2000);
        b.set_limit(None);
        assert!(!b.is_bounded());
    }

    #[test]
    fn spill_file_round_trips_and_cleans_up() {
        let budget = MemoryBudget::with_limit(1);
        let mut w = SpillWriter::create(&budget).unwrap();
        w.write_rows(&[row(1), row(2)]).unwrap();
        w.write_rows(&[row(3)]).unwrap();
        let file = w.finish().unwrap();
        assert_eq!(file.rows(), 3);
        let mut seen = Vec::new();
        file.replay(&budget, |rows| {
            seen.extend(rows);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![row(1), row(2), row(3)]);
        assert!(budget.stats().bytes_read > 0);
        let path = file.path.clone();
        assert!(path.exists());
        drop(file);
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn abandoned_writer_removes_its_file() {
        let budget = MemoryBudget::with_limit(1);
        let w = SpillWriter::create(&budget).unwrap();
        let path = w.path.clone();
        assert!(path.exists());
        drop(w);
        assert!(!path.exists(), "abandoned spill file must be removed");
    }

    #[cfg(unix)]
    #[test]
    fn writer_thread_error_surfaces_cleanly() {
        // /dev/full accepts the open but fails every write with ENOSPC;
        // the failure happens on the background writer thread and must
        // surface as a clean EngineError — never a hang or a panic.
        let dev_full = PathBuf::from("/dev/full");
        if !dev_full.exists() {
            return;
        }
        let budget = MemoryBudget::with_limit(1);
        let mut w = SpillWriter::create_at(dev_full, &budget).unwrap();
        let mut failed = false;
        for i in 0..1000 {
            let rows: Vec<Row> = (0..64).map(|j| row(i * 64 + j)).collect();
            if w.write_rows(&rows).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            assert!(w.finish().is_err(), "ENOSPC must surface by finish()");
        }
    }

    #[test]
    fn writer_in_missing_directory_fails_fast() {
        let budget = MemoryBudget::with_limit(1);
        budget.set_spill_dir(PathBuf::from("/nonexistent-openivm-spill-dir"));
        assert!(SpillWriter::create(&budget).is_err());
    }

    #[test]
    fn unbounded_spiller_stays_resident() {
        let budget = MemoryBudget::unbounded();
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..500 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        assert!(!s.spilled_any());
        let parts = s.finish().unwrap();
        let total: usize = parts
            .iter()
            .map(|p| match p {
                SpillPartition::Resident { rows, .. } => rows.len(),
                SpillPartition::Spilled { .. } => panic!("unbounded must not spill"),
            })
            .sum();
        assert_eq!(total, 500);
        assert!(!budget.stats().spilled());
    }

    #[test]
    fn bounded_spiller_spills_and_replays_in_order() {
        let budget = MemoryBudget::with_limit(2_000);
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..2_000 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        assert!(s.spilled_any());
        let parts = s.finish().unwrap();
        let stats = budget.stats();
        assert!(stats.spilled() && stats.spilled_rows > 0 && stats.spill_files > 0);
        let mut all: Vec<Tagged> = Vec::new();
        for part in parts {
            let rows = part.load(&budget).unwrap();
            // Within a partition, arrival (sequence) order is preserved.
            assert!(rows.windows(2).all(|w| w[0].1 < w[1].1));
            all.extend(rows);
        }
        all.sort_by_key(|(_, seq, _)| *seq);
        assert_eq!(all.len(), 2_000);
        for (i, (hash, seq, r)) in all.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(r, &row(i as i64));
            assert_eq!(
                *hash,
                crate::exec::hash::hash_value(&Value::Integer(i as i64))
            );
        }
        assert!(budget.stats().rehydrated_rows > 0);
        assert!(budget.stats().queue_high_water > 0);
    }

    #[test]
    fn recursion_splits_oversized_partitions() {
        // A tiny budget forces every partition over the limit; the
        // recursive driver must still deliver every row exactly once.
        let budget = MemoryBudget::with_limit(64);
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..300 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        let parts = s.finish().unwrap();
        let mut all: Vec<Tagged> = Vec::new();
        for_each_fitting_partition(parts, &budget, 0, &mut |rows| {
            all.extend(rows);
            Ok(())
        })
        .unwrap();
        all.sort_by_key(|(_, seq, _)| *seq);
        assert_eq!(all.len(), 300);
        for (i, (_, seq, r)) in all.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(r, &row(i as i64));
        }
        assert!(budget.stats().repartitions > 0, "recursion must trigger");
    }

    #[test]
    fn one_row_budget_spills_everything() {
        let budget = MemoryBudget::with_limit(1);
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..50 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        assert!(s.spilled_any());
        let parts = s.finish().unwrap();
        let mut n = 0;
        for_each_fitting_partition(parts, &budget, 0, &mut |rows| {
            n += rows.len();
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn dropped_spiller_releases_its_reservation() {
        let budget = MemoryBudget::with_limit(usize::MAX - 1);
        {
            let mut s = PartitionedSpiller::new(budget.clone(), 0);
            for i in 0..100 {
                s.push(i as u64, i as u64, row(i)).unwrap();
            }
            assert!(budget.inner.used.load(Ordering::Relaxed) > 0);
        }
        assert_eq!(budget.inner.used.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn group_merge_restores_sequence_order_across_producers() {
        // Simulate 3 workers spilling disjoint sequence ranges; the
        // group driver must hand each partition back in global seq order.
        let budget = MemoryBudget::with_limit(512);
        let mut groups = Vec::new();
        for w in 0..3u64 {
            let mut s = PartitionedSpiller::new(budget.clone(), 0);
            for i in 0..200u64 {
                let seq = (i << 2) | w; // interleaved but per-worker ascending
                s.push(
                    crate::exec::hash::hash_value(&Value::Integer((i % 7) as i64)),
                    seq,
                    row(seq as i64),
                )
                .unwrap();
            }
            groups.push(s.finish().unwrap());
        }
        let mut all: Vec<Tagged> = Vec::new();
        for_each_fitting_group(groups, &budget, 0, &mut |rows| {
            assert!(rows.windows(2).all(|t| t[0].1 < t[1].1));
            all.extend(rows);
            Ok(())
        })
        .unwrap();
        assert_eq!(all.len(), 600);
        all.sort_by_key(|t| t.1);
        for t in &all {
            assert_eq!(t.2, row(t.1 as i64));
        }
    }

    #[test]
    fn output_runs_merge_in_key_order_under_pressure() {
        let budget = MemoryBudget::with_limit(256);
        let mut runs = OutputRuns::new(budget.clone());
        // Three overlapping runs, each internally ascending.
        for r in 0..3u64 {
            runs.begin_run();
            for i in 0..100u64 {
                runs.push(i * 3 + r, 0, row((i * 3 + r) as i64)).unwrap();
            }
        }
        let mut emit = runs.finish(2, 7).unwrap();
        let mut seen = Vec::new();
        while let Some(batch) = emit.next_batch().unwrap() {
            assert!(batch.num_rows() <= 7);
            seen.extend(batch.to_rows());
        }
        assert_eq!(seen.len(), 300);
        for (i, r) in seen.iter().enumerate() {
            assert_eq!(r, &row(i as i64));
        }
        assert!(budget.stats().spilled(), "256-byte budget must flush runs");
        assert_eq!(budget.inner.used.load(Ordering::Relaxed), 0);
    }

    /// A scratch directory for reaper tests, removed on drop.
    struct ReaperDir(PathBuf);
    impl ReaperDir {
        fn new(tag: &str) -> ReaperDir {
            let dir = std::env::temp_dir().join(format!(
                "openivm-iotest-reaper-{}-{}",
                std::process::id(),
                tag
            ));
            std::fs::create_dir_all(&dir).unwrap();
            ReaperDir(dir)
        }
        fn fake(&self, name: &str) -> PathBuf {
            let path = self.0.join(name);
            std::fs::write(&path, b"stale marker").unwrap();
            path
        }
    }
    impl Drop for ReaperDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A pid that is certainly dead: spawn a short-lived child and reap
    /// it. (The pid could in principle be recycled immediately, but the
    /// reaper tests that rely on this also record a bogus start time, so
    /// even a recycled pid reads as a dead incarnation.)
    fn dead_pid() -> u32 {
        let mut child = std::process::Command::new("true").spawn().unwrap();
        let pid = child.id();
        child.wait().unwrap();
        pid
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn orphan_reaper_survives_pid_reuse() {
        let dir = ReaperDir::new("reuse");
        let own = std::process::id();
        // The PID-reuse regression: a file recorded under *our* pid but
        // a different start time was created by a dead process whose
        // pid the kernel re-issued to us. The old reaper (bare
        // `/proc/<pid>` existence) would leak it forever; the
        // start-time check reclaims it.
        let recycled = dir.fake(&format!("openivm-spill-{}-{}-0.bin", own, u64::MAX));
        // Our own live incarnation's file must never be touched.
        let ours = dir.fake(&format!(
            "openivm-spill-{}-{}-1.bin",
            own,
            super::own_start_time()
        ));
        assert_eq!(clean_orphan_spill_files(&dir.0), 1);
        assert!(!recycled.exists(), "recycled-pid orphan must be reclaimed");
        assert!(ours.exists(), "live owner's file must survive");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn orphan_reaper_reclaims_dead_owners_only() {
        let dir = ReaperDir::new("dead");
        let dead = dead_pid();
        let dead_new = dir.fake(&format!("openivm-spill-{}-{}-0.bin", dead, u64::MAX));
        let dead_legacy = dir.fake(&format!("openivm-spill-{dead}-7.bin"));
        // A live foreign incarnation (pid 1 with its true start time)
        // must survive, as must files the parser can't attribute.
        let init_st = super::proc_start_time(1).unwrap();
        let live_foreign = dir.fake(&format!("openivm-spill-1-{init_st}-0.bin"));
        let own_legacy = dir.fake(&format!("openivm-spill-{}-9.bin", std::process::id()));
        let unparseable = dir.fake("openivm-spill-not-a-pid.bin");
        assert_eq!(clean_orphan_spill_files(&dir.0), 2);
        assert!(!dead_new.exists(), "dead owner (stamped) reclaimed");
        assert!(!dead_legacy.exists(), "dead owner (legacy name) reclaimed");
        assert!(live_foreign.exists(), "live foreign owner kept");
        assert!(own_legacy.exists(), "own legacy file kept");
        assert!(unparseable.exists(), "unparseable names are left alone");
    }

    #[test]
    fn spill_filenames_carry_start_time() {
        let budget = MemoryBudget::with_limit(1);
        let w = SpillWriter::create(&budget).unwrap();
        let name = w.path.file_name().unwrap().to_str().unwrap().to_string();
        drop(w);
        let stem = name
            .strip_prefix("openivm-spill-")
            .and_then(|r| r.strip_suffix(".bin"))
            .unwrap();
        let parts: Vec<&str> = stem.split('-').collect();
        assert_eq!(parts.len(), 3, "pid-starttime-seq: {name}");
        assert_eq!(parts[0].parse::<u32>().unwrap(), std::process::id());
        assert_eq!(parts[1].parse::<u64>().unwrap(), super::own_start_time());
        parts[2].parse::<u64>().unwrap();
    }
}
