//! Memory-budgeted spill-to-disk for hash operators.
//!
//! The engine's pipeline breakers (join builds, group tables, DISTINCT /
//! set-operation row sets) used to assume their state fits in RAM; any
//! build side or GROUP BY larger than memory aborted the process. This
//! module adds the out-of-core machinery they share:
//!
//! - [`MemoryBudget`]: a cheaply-clonable accounting handle (one per
//!   [`crate::session::Database`]) holding the byte limit, the running
//!   usage counter, the spill directory, and the spill/rehydrate
//!   counters. Unbounded budgets (`limit = usize::MAX`) never spill and
//!   never touch the accounting atomics on the hot path.
//! - [`SpillWriter`] / [`SpillFile`]: temp-file lifecycle around the
//!   columnar frame codec of [`crate::storage::frame`]. Files are
//!   created in the budget's spill directory and removed when the
//!   [`SpillFile`] handle drops — spill files never outlive the query.
//! - [`PartitionedSpiller`]: the radix accumulator. Rows arrive tagged
//!   with their key hash and a global sequence number and are routed to
//!   one of [`NUM_PARTITIONS`] partitions by a high-bit slice of the
//!   hash (rotated per recursion level, so re-partitioning a partition
//!   that still does not fit uses a *fresh* bit range). Partitions
//!   buffer in memory while the budget allows; when the budget
//!   overflows, the largest resident partition is flushed to its spill
//!   file and subsequent rows for it pass through a small bounded write
//!   buffer.
//!
//! The sequence tags are what make spilling invisible: consumers fold or
//! join partition-at-a-time (any order) and use the tags to restore the
//! exact serial output order, so a spilled run is row-identical —
//! values *and* order — to the in-memory run. `tests/prop_spill_agree.rs`
//! holds that equivalence under random workloads.
//!
//! The hash bit layout composes with the rest of the engine: spill
//! partitions use rotated *high* bits (levels 0..4 cover bits 48..64),
//! the flat tables index with *low* bits, and tag bytes come from the
//! middle — one hash per key, everywhere.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::EngineError;
use crate::exec::Row;
use crate::storage::frame;
use crate::value::Value;

/// Radix bits per spill level: 16 partitions per level.
pub(crate) const PART_BITS: u32 = 4;

/// Partitions per spiller (one radix pass).
pub(crate) const NUM_PARTITIONS: usize = 1 << PART_BITS;

/// Deepest recursive re-partition level. Four levels consume hash bits
/// 48..64; beyond that a partition is processed in memory regardless
/// (its rows share 16 hash bits — almost certainly one heavy key, which
/// no amount of hash partitioning can split).
pub(crate) const MAX_SPILL_DEPTH: u32 = 4;

/// Rows per spill write-buffer flush (bounds the per-partition buffer
/// independently of the budget — even a 1-byte budget keeps at most this
/// many rows buffered per spilled partition).
const WRITE_BUFFER_ROWS: usize = 256;

/// Fixed per-tuple accounting overhead on top of the row payload (the
/// `(hash, seq)` tags and vector slack).
const TUPLE_OVERHEAD: usize = 16;

/// Partition index of `hash` at recursion level `bit_offset / PART_BITS`:
/// the top [`PART_BITS`] bits after rotating the level's range in.
#[inline]
pub(crate) fn spill_partition_of(hash: u64, bit_offset: u32) -> usize {
    (hash.rotate_left(bit_offset) >> (64 - PART_BITS)) as usize
}

/// Monotone suffix for spill file names (process-wide).
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug, Default)]
struct StatCells {
    spilled_partitions: AtomicU64,
    spilled_rows: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
    rehydrated_partitions: AtomicU64,
    rehydrated_rows: AtomicU64,
    repartitions: AtomicU64,
}

/// A snapshot of the spill counters, surfaced through
/// [`crate::session::Database::spill_stats`] and the bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions flushed from memory to disk.
    pub spilled_partitions: u64,
    /// Rows written to spill files.
    pub spilled_rows: u64,
    /// Bytes written to spill files (encoded frame bytes).
    pub spilled_bytes: u64,
    /// Spill files created.
    pub spill_files: u64,
    /// Spilled partitions read back for processing.
    pub rehydrated_partitions: u64,
    /// Rows read back from spill files.
    pub rehydrated_rows: u64,
    /// Recursive re-partition passes (a partition did not fit and was
    /// split again on a rotated hash-bit range).
    pub repartitions: u64,
}

impl SpillStats {
    /// True when any spilling happened at all.
    pub fn spilled(&self) -> bool {
        self.spilled_partitions > 0
    }
}

#[derive(Debug)]
struct BudgetInner {
    /// Byte limit; `usize::MAX` means unbounded.
    limit: AtomicUsize,
    /// Estimated bytes currently held by budget-tracked operator state.
    used: AtomicUsize,
    /// Directory spill files are created in.
    spill_dir: Mutex<PathBuf>,
    stats: StatCells,
}

/// The session-wide memory accounting handle threaded through the
/// executor. Clones share one underlying account, so every operator of a
/// query (serial or parallel) draws from the same pool.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        MemoryBudget::unbounded()
    }
}

impl MemoryBudget {
    fn with_raw_limit(limit: usize) -> MemoryBudget {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                limit: AtomicUsize::new(limit),
                used: AtomicUsize::new(0),
                spill_dir: Mutex::new(std::env::temp_dir()),
                stats: StatCells::default(),
            }),
        }
    }

    /// A budget that never spills (the default).
    pub fn unbounded() -> MemoryBudget {
        MemoryBudget::with_raw_limit(usize::MAX)
    }

    /// A budget limited to `bytes` of tracked operator state.
    pub fn with_limit(bytes: usize) -> MemoryBudget {
        MemoryBudget::with_raw_limit(bytes.max(1))
    }

    /// Change the limit in place (`None` = unbounded). Counters and the
    /// spill directory are preserved.
    pub fn set_limit(&self, bytes: Option<usize>) {
        let raw = match bytes {
            Some(b) => b.max(1),
            None => usize::MAX,
        };
        self.inner.limit.store(raw, Ordering::Relaxed);
    }

    /// The configured limit, `None` when unbounded.
    pub fn limit(&self) -> Option<usize> {
        match self.inner.limit.load(Ordering::Relaxed) {
            usize::MAX => None,
            b => Some(b),
        }
    }

    /// Whether a limit is set at all. Unbounded budgets take none of the
    /// spill paths.
    pub fn is_bounded(&self) -> bool {
        self.limit().is_some()
    }

    /// Set the directory spill files are created in.
    pub fn set_spill_dir(&self, dir: PathBuf) {
        *self.inner.spill_dir.lock().unwrap() = dir;
    }

    /// The directory spill files are created in.
    pub fn spill_dir(&self) -> PathBuf {
        self.inner.spill_dir.lock().unwrap().clone()
    }

    /// Snapshot the spill/rehydrate counters.
    pub fn stats(&self) -> SpillStats {
        let s = &self.inner.stats;
        SpillStats {
            spilled_partitions: s.spilled_partitions.load(Ordering::Relaxed),
            spilled_rows: s.spilled_rows.load(Ordering::Relaxed),
            spilled_bytes: s.spilled_bytes.load(Ordering::Relaxed),
            spill_files: s.spill_files.load(Ordering::Relaxed),
            rehydrated_partitions: s.rehydrated_partitions.load(Ordering::Relaxed),
            rehydrated_rows: s.rehydrated_rows.load(Ordering::Relaxed),
            repartitions: s.repartitions.load(Ordering::Relaxed),
        }
    }

    /// Account `bytes` of new operator state.
    pub(crate) fn add(&self, bytes: usize) {
        self.inner.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Release `bytes` of operator state.
    pub(crate) fn sub(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Whether tracked usage currently exceeds the limit.
    pub(crate) fn over_limit(&self) -> bool {
        self.inner.used.load(Ordering::Relaxed) > self.inner.limit.load(Ordering::Relaxed)
    }

    /// Whether a finished partition of `bytes` is too large to process
    /// in memory and should be re-partitioned on the next bit range.
    pub(crate) fn should_split(&self, bytes: u64) -> bool {
        (bytes as u128) > self.inner.limit.load(Ordering::Relaxed) as u128
    }
}

/// Approximate accounted footprint of one spiller tuple.
#[inline]
pub(crate) fn tuple_bytes(row: &[Value]) -> usize {
    frame::row_bytes(row) + TUPLE_OVERHEAD
}

/// A spill file being written: buffered frames behind the codec of
/// [`crate::storage::frame`].
#[derive(Debug)]
pub(crate) struct SpillWriter {
    w: BufWriter<File>,
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Create a fresh spill file in `budget`'s spill directory.
    pub(crate) fn create(budget: &MemoryBudget) -> Result<SpillWriter, EngineError> {
        let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            budget
                .spill_dir()
                .join(format!("openivm-spill-{}-{}.bin", std::process::id(), seq));
        let file = File::create(&path)
            .map_err(|e| EngineError::execution(format!("cannot create spill file: {e}")))?;
        let mut w = BufWriter::new(file);
        frame::write_header(&mut w)?;
        budget
            .inner
            .stats
            .spill_files
            .fetch_add(1, Ordering::Relaxed);
        Ok(SpillWriter {
            w,
            path,
            rows: 0,
            bytes: 0,
        })
    }

    /// Append one frame of rows.
    pub(crate) fn write_rows(&mut self, rows: &[Row]) -> Result<(), EngineError> {
        if rows.is_empty() {
            return Ok(());
        }
        self.bytes += frame::write_frame(&mut self.w, rows)?;
        self.rows += rows.len() as u64;
        Ok(())
    }

    /// Flush and seal into a readable [`SpillFile`].
    pub(crate) fn finish(mut self) -> Result<SpillFile, EngineError> {
        self.w
            .flush()
            .map_err(|e| EngineError::execution(format!("spill flush failed: {e}")))?;
        Ok(SpillFile {
            path: std::mem::take(&mut self.path),
            rows: self.rows,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        // Abandoned writers (error paths) must not leak their file.
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A sealed spill file; removed from disk when dropped.
#[derive(Debug)]
pub(crate) struct SpillFile {
    path: PathBuf,
    rows: u64,
}

impl SpillFile {
    /// Number of rows in the file.
    pub(crate) fn rows(&self) -> u64 {
        self.rows
    }

    /// Stream every frame through `f`.
    pub(crate) fn replay(
        &self,
        mut f: impl FnMut(Vec<Row>) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        let file = File::open(&self.path)
            .map_err(|e| EngineError::execution(format!("cannot reopen spill file: {e}")))?;
        let mut r = BufReader::new(file);
        frame::read_header(&mut r)?;
        while let Some(rows) = frame::read_frame(&mut r)? {
            f(rows)?;
        }
        Ok(())
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One spiller tuple: `(key hash, global sequence, row)`.
pub(crate) type Tagged = (u64, u64, Row);

#[derive(Debug, Default)]
struct PartBuf {
    resident: Vec<Tagged>,
    resident_bytes: usize,
    writer: Option<SpillWriter>,
    write_buf: Vec<Row>,
    total_rows: u64,
    total_bytes: u64,
}

/// The radix accumulator: rows route to partitions by a high-bit slice
/// of their hash, buffer in memory under the budget, and overflow to
/// per-partition spill files.
#[derive(Debug)]
pub(crate) struct PartitionedSpiller {
    budget: MemoryBudget,
    parts: Vec<PartBuf>,
    bit_offset: u32,
    held: usize,
    spilled_any: bool,
}

/// One finished partition: resident rows or a sealed spill file.
#[derive(Debug)]
pub(crate) enum SpillPartition {
    /// Fully in memory.
    Resident {
        /// The partition's tuples in arrival (sequence-ascending) order.
        rows: Vec<Tagged>,
        /// Accounted bytes.
        bytes: u64,
    },
    /// On disk.
    Spilled {
        /// The sealed file (tuples in arrival order).
        file: SpillFile,
        /// Accounted bytes.
        bytes: u64,
    },
}

impl SpillPartition {
    /// Accounted byte size of the partition.
    pub(crate) fn bytes(&self) -> u64 {
        match self {
            SpillPartition::Resident { bytes, .. } | SpillPartition::Spilled { bytes, .. } => {
                *bytes
            }
        }
    }

    /// Number of tuples in the partition.
    pub(crate) fn row_count(&self) -> u64 {
        match self {
            SpillPartition::Resident { rows, .. } => rows.len() as u64,
            SpillPartition::Spilled { file, .. } => file.rows(),
        }
    }

    /// Materialize the whole partition in sequence-ascending order.
    /// Callers only do this for partitions the budget says fit (or at
    /// [`MAX_SPILL_DEPTH`], where splitting cannot help).
    pub(crate) fn load(self, budget: &MemoryBudget) -> Result<Vec<Tagged>, EngineError> {
        match self {
            SpillPartition::Resident { rows, .. } => Ok(rows),
            SpillPartition::Spilled { file, .. } => {
                let stats = &budget.inner.stats;
                stats.rehydrated_partitions.fetch_add(1, Ordering::Relaxed);
                let mut out: Vec<Tagged> = Vec::with_capacity(file.rows() as usize);
                file.replay(|rows| {
                    stats
                        .rehydrated_rows
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    for row in rows {
                        out.push(untag(row)?);
                    }
                    Ok(())
                })?;
                Ok(out)
            }
        }
    }

    /// Stream the partition's tuples through `f` in bounded chunks
    /// (sequence-ascending) without materializing the whole partition —
    /// the probe-side discipline: only the *build* side of a pair is
    /// required to fit, the streamed side never is.
    pub(crate) fn for_each_chunk(
        self,
        budget: &MemoryBudget,
        mut f: impl FnMut(Vec<Tagged>) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        match self {
            SpillPartition::Resident { rows, .. } => {
                if !rows.is_empty() {
                    f(rows)?;
                }
                Ok(())
            }
            SpillPartition::Spilled { file, .. } => {
                let stats = &budget.inner.stats;
                stats.rehydrated_partitions.fetch_add(1, Ordering::Relaxed);
                file.replay(|rows| {
                    stats
                        .rehydrated_rows
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    let tuples: Vec<Tagged> =
                        rows.into_iter().map(untag).collect::<Result<_, _>>()?;
                    if !tuples.is_empty() {
                        f(tuples)?;
                    }
                    Ok(())
                })
            }
        }
    }

    /// Stream the partition's tuples into `target` (a sub-spiller on a
    /// rotated bit range) — the recursive re-partition step.
    pub(crate) fn split_into(
        self,
        budget: &MemoryBudget,
        target: &mut PartitionedSpiller,
    ) -> Result<(), EngineError> {
        budget
            .inner
            .stats
            .repartitions
            .fetch_add(1, Ordering::Relaxed);
        match self {
            SpillPartition::Resident { rows, .. } => {
                for (hash, seq, row) in rows {
                    target.push(hash, seq, row)?;
                }
                Ok(())
            }
            SpillPartition::Spilled { file, .. } => {
                let stats = &budget.inner.stats;
                stats.rehydrated_partitions.fetch_add(1, Ordering::Relaxed);
                file.replay(|rows| {
                    stats
                        .rehydrated_rows
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    for row in rows {
                        let (hash, seq, row) = untag(row)?;
                        target.push(hash, seq, row)?;
                    }
                    Ok(())
                })
            }
        }
    }
}

/// Append the `(seq, hash)` tag columns for spill encoding.
fn tag(mut row: Row, hash: u64, seq: u64) -> Row {
    row.push(Value::Integer(seq as i64));
    row.push(Value::Integer(hash as i64));
    row
}

/// Strip the tag columns back off a spilled row.
fn untag(mut row: Row) -> Result<Tagged, EngineError> {
    let hash = row
        .pop()
        .and_then(|v| v.as_integer())
        .ok_or_else(|| EngineError::execution("corrupt spill frame: missing hash tag"))?;
    let seq = row
        .pop()
        .and_then(|v| v.as_integer())
        .ok_or_else(|| EngineError::execution("corrupt spill frame: missing sequence tag"))?;
    Ok((hash as u64, seq as u64, row))
}

impl PartitionedSpiller {
    /// A spiller at recursion level `bit_offset / PART_BITS`.
    pub(crate) fn new(budget: MemoryBudget, bit_offset: u32) -> PartitionedSpiller {
        PartitionedSpiller {
            budget,
            parts: (0..NUM_PARTITIONS).map(|_| PartBuf::default()).collect(),
            bit_offset,
            held: 0,
            spilled_any: false,
        }
    }

    /// Whether any partition has been flushed to disk so far.
    pub(crate) fn spilled_any(&self) -> bool {
        self.spilled_any
    }

    /// Route one tuple to its partition, spilling the largest resident
    /// partitions when the budget overflows.
    pub(crate) fn push(&mut self, hash: u64, seq: u64, row: Row) -> Result<(), EngineError> {
        let p = spill_partition_of(hash, self.bit_offset);
        let bytes = tuple_bytes(&row);
        let part = &mut self.parts[p];
        part.total_rows += 1;
        part.total_bytes += bytes as u64;
        if part.writer.is_some() {
            part.write_buf.push(tag(row, hash, seq));
            if part.write_buf.len() >= WRITE_BUFFER_ROWS {
                Self::flush_write_buf(&mut self.parts[p], &self.budget)?;
            }
            return Ok(());
        }
        part.resident.push((hash, seq, row));
        part.resident_bytes += bytes;
        self.held += bytes;
        self.budget.add(bytes);
        while self.budget.over_limit() {
            if !self.spill_largest()? {
                break;
            }
        }
        Ok(())
    }

    fn flush_write_buf(part: &mut PartBuf, budget: &MemoryBudget) -> Result<(), EngineError> {
        if part.write_buf.is_empty() {
            return Ok(());
        }
        let writer = part.writer.as_mut().expect("flushing a spilled partition");
        let before = writer.bytes;
        // Chunked frames: the initial eviction can carry a budget's worth
        // of resident rows at once, and rehydration materializes one
        // frame at a time.
        for chunk in part.write_buf.chunks(4096) {
            writer.write_rows(chunk)?;
        }
        let stats = &budget.inner.stats;
        stats
            .spilled_rows
            .fetch_add(part.write_buf.len() as u64, Ordering::Relaxed);
        stats
            .spilled_bytes
            .fetch_add(writer.bytes - before, Ordering::Relaxed);
        part.write_buf.clear();
        Ok(())
    }

    /// Flush the largest resident partition to disk; `false` when every
    /// partition is already spilled (nothing left to evict here).
    fn spill_largest(&mut self) -> Result<bool, EngineError> {
        let victim = self
            .parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.resident.is_empty())
            .max_by_key(|(_, p)| p.resident_bytes)
            .map(|(i, _)| i);
        let Some(i) = victim else {
            return Ok(false);
        };
        let budget = self.budget.clone();
        let part = &mut self.parts[i];
        if part.writer.is_none() {
            part.writer = Some(SpillWriter::create(&budget)?);
            budget
                .inner
                .stats
                .spilled_partitions
                .fetch_add(1, Ordering::Relaxed);
        }
        part.write_buf.extend(
            std::mem::take(&mut part.resident)
                .into_iter()
                .map(|(hash, seq, row)| tag(row, hash, seq)),
        );
        Self::flush_write_buf(part, &budget)?;
        let released = std::mem::take(&mut part.resident_bytes);
        self.held -= released;
        self.budget.sub(released);
        self.spilled_any = true;
        Ok(true)
    }

    /// Seal every partition, in partition order. The budget reservation
    /// for resident rows transfers to the caller's processing phase and
    /// is released here (processing is partition-at-a-time and checks
    /// [`MemoryBudget::should_split`] before materializing anything).
    pub(crate) fn finish(mut self) -> Result<Vec<SpillPartition>, EngineError> {
        let budget = self.budget.clone();
        let mut out = Vec::with_capacity(self.parts.len());
        for mut part in self.parts.drain(..) {
            if part.writer.is_some() {
                Self::flush_write_buf(&mut part, &budget)?;
                let file = part.writer.take().expect("checked above").finish()?;
                out.push(SpillPartition::Spilled {
                    file,
                    bytes: part.total_bytes,
                });
            } else {
                out.push(SpillPartition::Resident {
                    rows: part.resident,
                    bytes: part.total_bytes,
                });
            }
        }
        budget.sub(std::mem::take(&mut self.held));
        Ok(out)
    }
}

impl Drop for PartitionedSpiller {
    fn drop(&mut self) {
        // Error paths drop the spiller without `finish`; release the
        // reservation so the session budget doesn't leak usage.
        self.budget.sub(self.held);
        self.held = 0;
    }
}

/// Drive every partition of a finished spiller through `process`,
/// recursively re-partitioning (rotated bit range) any partition the
/// budget says does not fit, until [`MAX_SPILL_DEPTH`]. Partitions reach
/// `process` fully materialized, in sequence-ascending order.
pub(crate) fn for_each_fitting_partition(
    parts: Vec<SpillPartition>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    for part in parts {
        if part.row_count() == 0 {
            continue;
        }
        if depth + 1 < MAX_SPILL_DEPTH && budget.should_split(part.bytes()) && part.row_count() > 1
        {
            let mut sub = PartitionedSpiller::new(budget.clone(), (depth + 1) * PART_BITS);
            part.split_into(budget, &mut sub)?;
            for_each_fitting_partition(sub.finish()?, budget, depth + 1, process)?;
        } else {
            process(part.load(budget)?)?;
        }
    }
    Ok(())
}

/// Chunk sequence-sorted output rows into `batch_size` batches — the
/// shared emission tail of every spill consumer (join, aggregation,
/// DISTINCT, set operations).
pub(crate) fn rebatch_rows<'a>(
    rows: impl IntoIterator<Item = Row>,
    width: usize,
    batch_size: usize,
) -> std::collections::VecDeque<crate::exec::batch::RowBatch<'a>> {
    let batch_size = batch_size.max(1);
    let mut out = std::collections::VecDeque::new();
    let mut chunk: Vec<Row> = Vec::new();
    for row in rows {
        chunk.push(row);
        if chunk.len() == batch_size {
            out.push_back(crate::exec::batch::RowBatch::from_rows(
                width,
                std::mem::take(&mut chunk),
            ));
        }
    }
    if !chunk.is_empty() {
        out.push_back(crate::exec::batch::RowBatch::from_rows(width, chunk));
    }
    out
}

/// Pairwise variant of [`for_each_fitting_partition`] for two-sided
/// operators (join build/probe, set-operation right/left). Partitions
/// pair positionally (both spillers use the same bit range); when side
/// `a` does not fit, **both** sides re-partition on the next bit range so
/// the pairing stays aligned. `process` receives side `a` fully
/// materialized and side `b` as a partition handle to stream.
pub(crate) fn for_each_fitting_partition_pair(
    a_parts: Vec<SpillPartition>,
    b_parts: Vec<SpillPartition>,
    budget: &MemoryBudget,
    depth: u32,
    process: &mut impl FnMut(Vec<Tagged>, SpillPartition) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    debug_assert_eq!(a_parts.len(), b_parts.len());
    for (a, b) in a_parts.into_iter().zip(b_parts) {
        if a.row_count() == 0 && b.row_count() == 0 {
            continue;
        }
        if depth + 1 < MAX_SPILL_DEPTH && budget.should_split(a.bytes()) && a.row_count() > 1 {
            let off = (depth + 1) * PART_BITS;
            let mut a_sub = PartitionedSpiller::new(budget.clone(), off);
            a.split_into(budget, &mut a_sub)?;
            let mut b_sub = PartitionedSpiller::new(budget.clone(), off);
            b.split_into(budget, &mut b_sub)?;
            for_each_fitting_partition_pair(
                a_sub.finish()?,
                b_sub.finish()?,
                budget,
                depth + 1,
                process,
            )?;
        } else {
            process(a.load(budget)?, b)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        vec![Value::Integer(i), Value::Varchar(format!("row-{i}"))]
    }

    #[test]
    fn budget_limits_and_counters() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        assert_eq!(b.limit(), None);
        b.set_limit(Some(1024));
        assert!(b.is_bounded());
        assert_eq!(b.limit(), Some(1024));
        b.add(2000);
        assert!(b.over_limit());
        b.sub(2000);
        assert!(!b.over_limit());
        assert!(b.should_split(2048));
        assert!(!b.should_split(512));
        b.set_limit(None);
        assert!(!b.is_bounded());
    }

    #[test]
    fn spill_file_round_trips_and_cleans_up() {
        let budget = MemoryBudget::with_limit(1);
        let mut w = SpillWriter::create(&budget).unwrap();
        w.write_rows(&[row(1), row(2)]).unwrap();
        w.write_rows(&[row(3)]).unwrap();
        let file = w.finish().unwrap();
        assert_eq!(file.rows(), 3);
        let mut seen = Vec::new();
        file.replay(|rows| {
            seen.extend(rows);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![row(1), row(2), row(3)]);
        let path = file.path.clone();
        assert!(path.exists());
        drop(file);
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn abandoned_writer_removes_its_file() {
        let budget = MemoryBudget::with_limit(1);
        let w = SpillWriter::create(&budget).unwrap();
        let path = w.path.clone();
        assert!(path.exists());
        drop(w);
        assert!(!path.exists(), "abandoned spill file must be removed");
    }

    #[test]
    fn unbounded_spiller_stays_resident() {
        let budget = MemoryBudget::unbounded();
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..500 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        assert!(!s.spilled_any());
        let parts = s.finish().unwrap();
        let total: usize = parts
            .iter()
            .map(|p| match p {
                SpillPartition::Resident { rows, .. } => rows.len(),
                SpillPartition::Spilled { .. } => panic!("unbounded must not spill"),
            })
            .sum();
        assert_eq!(total, 500);
        assert!(!budget.stats().spilled());
    }

    #[test]
    fn bounded_spiller_spills_and_replays_in_order() {
        let budget = MemoryBudget::with_limit(2_000);
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..2_000 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        assert!(s.spilled_any());
        let parts = s.finish().unwrap();
        let stats = budget.stats();
        assert!(stats.spilled() && stats.spilled_rows > 0 && stats.spill_files > 0);
        let mut all: Vec<Tagged> = Vec::new();
        for part in parts {
            let rows = part.load(&budget).unwrap();
            // Within a partition, arrival (sequence) order is preserved.
            assert!(rows.windows(2).all(|w| w[0].1 < w[1].1));
            all.extend(rows);
        }
        all.sort_by_key(|(_, seq, _)| *seq);
        assert_eq!(all.len(), 2_000);
        for (i, (hash, seq, r)) in all.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(r, &row(i as i64));
            assert_eq!(
                *hash,
                crate::exec::hash::hash_value(&Value::Integer(i as i64))
            );
        }
        assert!(budget.stats().rehydrated_rows > 0);
    }

    #[test]
    fn recursion_splits_oversized_partitions() {
        // A tiny budget forces every partition over the limit; the
        // recursive driver must still deliver every row exactly once.
        let budget = MemoryBudget::with_limit(64);
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..300 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        let parts = s.finish().unwrap();
        let mut all: Vec<Tagged> = Vec::new();
        for_each_fitting_partition(parts, &budget, 0, &mut |rows| {
            all.extend(rows);
            Ok(())
        })
        .unwrap();
        all.sort_by_key(|(_, seq, _)| *seq);
        assert_eq!(all.len(), 300);
        for (i, (_, seq, r)) in all.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(r, &row(i as i64));
        }
        assert!(budget.stats().repartitions > 0, "recursion must trigger");
    }

    #[test]
    fn one_row_budget_spills_everything() {
        let budget = MemoryBudget::with_limit(1);
        let mut s = PartitionedSpiller::new(budget.clone(), 0);
        for i in 0..50 {
            s.push(
                crate::exec::hash::hash_value(&Value::Integer(i)),
                i as u64,
                row(i),
            )
            .unwrap();
        }
        assert!(s.spilled_any());
        let parts = s.finish().unwrap();
        let mut n = 0;
        for_each_fitting_partition(parts, &budget, 0, &mut |rows| {
            n += rows.len();
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn dropped_spiller_releases_its_reservation() {
        let budget = MemoryBudget::with_limit(usize::MAX - 1);
        {
            let mut s = PartitionedSpiller::new(budget.clone(), 0);
            for i in 0..100 {
                s.push(i as u64, i as u64, row(i)).unwrap();
            }
            assert!(budget.inner.used.load(Ordering::Relaxed) > 0);
        }
        assert_eq!(budget.inner.used.load(Ordering::Relaxed), 0);
    }
}
