//! Typed columnar key arenas for the hash operators.
//!
//! The row-based hash path stores every key as a `Vec<Value>` and compares
//! candidates by walking that vector with per-variant enum dispatch. This
//! module packs key tuples into fixed-width columns instead — one `u8`
//! representation tag plus one 8-byte word per key column — so a candidate
//! compare inside a [`FlatTable`](crate::exec::hash::FlatTable) probe is a
//! branch-free `(class, word)` compare over a contiguous arena:
//!
//! | value            | tag      | word                                   |
//! |------------------|----------|----------------------------------------|
//! | `NULL`           | `T_NULL` | `0`                                    |
//! | `BOOLEAN b`      | `T_BOOL` | `b as u64`                             |
//! | `INTEGER i`      | `T_INT`  | `(i as f64).to_bits()`                 |
//! | `DOUBLE d`       | `T_DOUBLE`| `d.to_bits()`                         |
//! | `DATE d`         | `T_DATE` | `d as u32 as u64`                      |
//! | `VARCHAR s`      | `T_TEXT` | id of `s` interned in the arena's heap |
//!
//! Numerics share one *equality class* but keep distinct representation
//! tags: the word is the canonical `f64` bit pattern, so `INTEGER 3` and
//! `DOUBLE 3.0` compare equal by word (grouping equality, matching
//! [`Value::total_cmp`](crate::value::Value::total_cmp)), while decode
//! recovers the original subtype exactly. Integers whose `f64` widening is
//! lossy (beyond ±2^53) have no canonical word — grouping equality is not
//! transitive there — so encoding *fails* for them and the consumer falls
//! back to the row-based path ([`TupleStore::demote`]); the fallback is
//! lossless because every encoded tuple decodes back to its original
//! `Value`s. Text is interned once per distinct string into a per-arena
//! [`StringHeap`], making string equality an id compare.
//!
//! Population is chunk-at-a-time: [`KeyArena::encode_chunk`] encodes a
//! whole batch's key tuples into a reusable [`EncodedChunk`] next to the
//! hash kernels' per-batch hash columns, and the per-row find/insert then
//! touches only packed words.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::exec::batch::RowBatch;
use crate::exec::hash::{
    combine, hash_str, hash_value, mix, FlatTable, KeyHashes, BOOL_SALT, DATE_SALT, HASH_SEED,
    NULL_SALT, NUM_SALT,
};
use crate::exec::Row;
use crate::value::Value;

/// Representation tags (one per [`Value`] variant). `T_NULL` doubles as
/// the padding tag for rows that failed to encode.
const T_NULL: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_DOUBLE: u8 = 3;
const T_DATE: u8 = 4;
const T_TEXT: u8 = 5;

/// Equality class per representation tag: `T_INT` and `T_DOUBLE` collapse
/// into one class so cross-numeric grouping equality holds on the word
/// compare; every other tag is its own class.
const EQ_CLASS: [u8; 6] = [0, 1, 2, 2, 3, 4];

/// Probe-side sentinel for a string absent from the build arena's heap:
/// interned ids are `u32`-sized, so this word never equals a stored one.
const MISS_WORD: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Typed-path counters
// ---------------------------------------------------------------------------

/// Rows that went through a typed key arena (hit) vs. rows a typed-capable
/// consumer had to handle on the row-based path (fallback). Counted in
/// batch granularity on the hot paths; used by benches and tests to prove
/// workloads are not silently falling back.
static TYPED_HIT_ROWS: AtomicU64 = AtomicU64::new(0);
static TYPED_FALLBACK_ROWS: AtomicU64 = AtomicU64::new(0);

/// Record `n` rows processed through a typed arena.
#[inline]
pub fn note_typed_rows(n: u64) {
    if n > 0 {
        TYPED_HIT_ROWS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Record `n` rows a typed-capable consumer handled row-based.
#[inline]
pub fn note_fallback_rows(n: u64) {
    if n > 0 {
        TYPED_FALLBACK_ROWS.fetch_add(n, Ordering::Relaxed);
    }
}

/// `(typed_rows, fallback_rows)` processed since start (or last reset).
pub fn typed_path_stats() -> (u64, u64) {
    (
        TYPED_HIT_ROWS.load(Ordering::Relaxed),
        TYPED_FALLBACK_ROWS.load(Ordering::Relaxed),
    )
}

/// Zero both counters (bench cells measure per-query deltas).
pub fn reset_typed_path_stats() {
    TYPED_HIT_ROWS.store(0, Ordering::Relaxed);
    TYPED_FALLBACK_ROWS.store(0, Ordering::Relaxed);
}

/// Canonical word for an integer key, when its `f64` widening is exact.
/// The explicit `< 2^63` bound matters: `(i64::MAX as f64) as i64`
/// saturates back to `i64::MAX`, so a plain roundtrip check would wrongly
/// accept it.
#[inline]
fn int_word(i: i64) -> Option<u64> {
    let d = i as f64;
    if d < 9_223_372_036_854_775_808.0 && d as i64 == i {
        Some(d.to_bits())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// StringHeap
// ---------------------------------------------------------------------------

/// Per-arena string interner: distinct strings stored once in a byte heap,
/// addressed by dense `u32` ids through a [`FlatTable`]. Equal strings get
/// equal ids, so text key equality is a word compare.
#[derive(Debug, Default, Clone)]
struct StringHeap {
    bytes: String,
    spans: Vec<(u32, u32)>,
    map: FlatTable,
}

impl StringHeap {
    #[inline]
    fn get(&self, id: u64) -> &str {
        let (off, len) = self.spans[id as usize];
        &self.bytes[off as usize..(off + len) as usize]
    }

    /// Id of `s` (pre-hashed as `h = hash_str(s)`), interning it on first
    /// sight. `None` when the heap's `u32` address space is exhausted
    /// (the consumer then falls back). Taking the hash lets the fused
    /// encode+hash kernels hash each string exactly once.
    fn intern(&mut self, s: &str, h: u64) -> Option<u64> {
        if let Some(id) = self.lookup(s, h) {
            return Some(id);
        }
        let off = self.bytes.len();
        if off + s.len() > u32::MAX as usize || self.spans.len() >= u32::MAX as usize {
            return None;
        }
        let id = self.spans.len() as u32;
        self.bytes.push_str(s);
        self.spans.push((off as u32, s.len() as u32));
        self.map.insert(h, id);
        Some(u64::from(id))
    }

    /// Id of `s` (pre-hashed as `h = hash_str(s)`) when already interned
    /// (probe side never mutates the build arena's heap).
    #[inline]
    fn lookup(&self, s: &str, h: u64) -> Option<u64> {
        let spans = &self.spans;
        let bytes = &self.bytes;
        self.map
            .find(h, |p| {
                let (off, len) = spans[p as usize];
                &bytes[off as usize..(off + len) as usize] == s
            })
            .map(u64::from)
    }
}

// ---------------------------------------------------------------------------
// EncodedChunk
// ---------------------------------------------------------------------------

/// One batch's key tuples in packed form — the reusable scratch filled by
/// [`KeyArena::encode_chunk`] / [`KeyArena::encode_probe_chunk`]. Row `r`
/// occupies `tags[r*width..][..width]` and `words[r*width..][..width]`;
/// rows the layout cannot represent are marked not-ok (padded with
/// `T_NULL`/`0` to keep indexing aligned).
#[derive(Debug, Default)]
pub struct EncodedChunk {
    width: usize,
    tags: Vec<u8>,
    words: Vec<u64>,
    ok: Vec<bool>,
    bad: usize,
}

impl EncodedChunk {
    /// Fresh empty scratch.
    pub fn new() -> EncodedChunk {
        EncodedChunk::default()
    }

    fn reset(&mut self, width: usize, rows: usize) {
        self.width = width;
        self.tags.clear();
        self.words.clear();
        self.tags.reserve(width * rows);
        self.words.reserve(width * rows);
        self.ok.clear();
        self.ok.resize(rows, true);
        self.bad = 0;
    }

    /// Reset to a dense, default-filled layout (`T_NULL`/`0` everywhere) —
    /// the column-at-a-time fused probe kernel writes slots in column
    /// order rather than appending row by row.
    fn reset_dense(&mut self, width: usize, rows: usize) {
        self.width = width;
        self.tags.clear();
        self.tags.resize(width * rows, T_NULL);
        self.words.clear();
        self.words.resize(width * rows, 0);
        self.ok.clear();
        self.ok.resize(rows, true);
        self.bad = 0;
    }

    /// Whether row `r` encoded cleanly.
    #[inline]
    pub fn ok(&self, r: usize) -> bool {
        self.ok[r]
    }

    /// Whether every row of the chunk encoded cleanly.
    #[inline]
    pub fn all_ok(&self) -> bool {
        self.bad == 0
    }

    /// Number of rows that failed to encode.
    #[inline]
    pub fn bad_rows(&self) -> usize {
        self.bad
    }

    /// Number of rows encoded (ok or not).
    #[inline]
    pub fn rows(&self) -> usize {
        self.ok.len()
    }
}

// ---------------------------------------------------------------------------
// KeyArena
// ---------------------------------------------------------------------------

/// Fixed-width columnar storage for key tuples: per tuple, `width` `(tag,
/// word)` pairs in row-major order plus one shared string heap. Tuple `i`
/// is the arena row addressed by [`FlatTable`] payloads.
#[derive(Debug, Default, Clone)]
pub struct KeyArena {
    width: usize,
    tags: Vec<u8>,
    words: Vec<u64>,
    heap: StringHeap,
}

impl KeyArena {
    /// An empty arena for `width`-column keys.
    pub fn new(width: usize) -> KeyArena {
        KeyArena {
            width,
            ..KeyArena::default()
        }
    }

    /// Number of key columns per tuple.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stored tuples.
    #[inline]
    pub fn len(&self) -> usize {
        // Zero-width keys store no words; the arena is only ever used
        // with at least one key column.
        self.words.len().checked_div(self.width).unwrap_or(0)
    }

    /// True when no tuples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Pre-reserve space for `rows` more tuples.
    pub fn reserve(&mut self, rows: usize) {
        self.tags.reserve(rows * self.width);
        self.words.reserve(rows * self.width);
    }

    /// Encode one value, interning text. `None` → unrepresentable.
    #[inline]
    fn encode_value(&mut self, v: &Value) -> Option<(u8, u64)> {
        match v {
            Value::Null => Some((T_NULL, 0)),
            Value::Boolean(b) => Some((T_BOOL, u64::from(*b))),
            Value::Integer(i) => int_word(*i).map(|w| (T_INT, w)),
            Value::Double(d) => Some((T_DOUBLE, d.to_bits())),
            Value::Varchar(s) => self.heap.intern(s, hash_str(s)).map(|id| (T_TEXT, id)),
            Value::Date(d) => Some((T_DATE, *d as u32 as u64)),
        }
    }

    /// Encode one probe value against this arena's heap without mutating
    /// it: a string the heap has never seen gets [`MISS_WORD`] (the row
    /// stays ok — it simply matches nothing, which is exactly join
    /// semantics). `None` → unrepresentable integer.
    #[inline]
    fn encode_probe_value(&self, v: &Value) -> Option<(u8, u64)> {
        match v {
            Value::Null => Some((T_NULL, 0)),
            Value::Boolean(b) => Some((T_BOOL, u64::from(*b))),
            Value::Integer(i) => int_word(*i).map(|w| (T_INT, w)),
            Value::Double(d) => Some((T_DOUBLE, d.to_bits())),
            Value::Varchar(s) => Some((
                T_TEXT,
                self.heap.lookup(s, hash_str(s)).unwrap_or(MISS_WORD),
            )),
            Value::Date(d) => Some((T_DATE, *d as u32 as u64)),
        }
    }

    /// [`encode_value`](KeyArena::encode_value) fused with the hash
    /// kernel: one enum dispatch per value yields the packed `(tag,
    /// word)` *and* its value hash. The packed word is exactly the
    /// scalar the hash kernel mixes for numerics/bool/date (numerics:
    /// the canonical `f64` bits; date: zero-extended days), and text
    /// hashes its bytes once, shared between interning and the row
    /// hash — so the result is bit-identical to
    /// [`hash_value`](crate::exec::hash::hash_value).
    #[inline]
    fn encode_hash_value(&mut self, v: &Value) -> Option<(u8, u64, u64)> {
        match v {
            Value::Null => Some((T_NULL, 0, NULL_SALT)),
            Value::Boolean(b) => {
                let w = u64::from(*b);
                Some((T_BOOL, w, mix(BOOL_SALT ^ w)))
            }
            Value::Integer(i) => int_word(*i).map(|w| (T_INT, w, mix(NUM_SALT ^ w))),
            Value::Double(d) => {
                let w = d.to_bits();
                Some((T_DOUBLE, w, mix(NUM_SALT ^ w)))
            }
            Value::Varchar(s) => {
                let h = hash_str(s);
                self.heap.intern(s, h).map(|id| (T_TEXT, id, h))
            }
            Value::Date(d) => {
                let w = *d as u32 as u64;
                Some((T_DATE, w, mix(DATE_SALT ^ w)))
            }
        }
    }

    /// Probe-side [`encode_hash_value`](KeyArena::encode_hash_value):
    /// lookup-only against this arena's heap, no interning.
    #[inline]
    fn encode_hash_probe_value(&self, v: &Value) -> Option<(u8, u64, u64)> {
        match v {
            Value::Null => Some((T_NULL, 0, NULL_SALT)),
            Value::Boolean(b) => {
                let w = u64::from(*b);
                Some((T_BOOL, w, mix(BOOL_SALT ^ w)))
            }
            Value::Integer(i) => int_word(*i).map(|w| (T_INT, w, mix(NUM_SALT ^ w))),
            Value::Double(d) => {
                let w = d.to_bits();
                Some((T_DOUBLE, w, mix(NUM_SALT ^ w)))
            }
            Value::Varchar(s) => {
                let h = hash_str(s);
                Some((T_TEXT, self.heap.lookup(s, h).unwrap_or(MISS_WORD), h))
            }
            Value::Date(d) => {
                let w = *d as u32 as u64;
                Some((T_DATE, w, mix(DATE_SALT ^ w)))
            }
        }
    }

    /// Encode `rows` key tuples into `chunk`, interning new text. `get(r,
    /// c)` yields key column `c` of row `r`. Rows with unrepresentable
    /// keys are marked not-ok; the caller decides whether to demote the
    /// whole store or skip those rows.
    pub fn encode_chunk<'v>(
        &mut self,
        chunk: &mut EncodedChunk,
        rows: usize,
        mut get: impl FnMut(usize, usize) -> &'v Value,
    ) {
        chunk.reset(self.width, rows);
        for r in 0..rows {
            let base = chunk.tags.len();
            let mut ok = true;
            for c in 0..self.width {
                match self.encode_value(get(r, c)) {
                    Some((t, w)) => {
                        chunk.tags.push(t);
                        chunk.words.push(w);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                chunk.tags.truncate(base);
                chunk.words.truncate(base);
                chunk.tags.resize(base + self.width, T_NULL);
                chunk.words.resize(base + self.width, 0);
                chunk.ok[r] = false;
                chunk.bad += 1;
            }
        }
    }

    /// Probe-side [`encode_chunk`](KeyArena::encode_chunk): lookup-only
    /// against this arena's heap, no interning.
    pub fn encode_probe_chunk<'v>(
        &self,
        chunk: &mut EncodedChunk,
        rows: usize,
        mut get: impl FnMut(usize, usize) -> &'v Value,
    ) {
        chunk.reset(self.width, rows);
        for r in 0..rows {
            let base = chunk.tags.len();
            let mut ok = true;
            for c in 0..self.width {
                match self.encode_probe_value(get(r, c)) {
                    Some((t, w)) => {
                        chunk.tags.push(t);
                        chunk.words.push(w);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                chunk.tags.truncate(base);
                chunk.words.truncate(base);
                chunk.tags.resize(base + self.width, T_NULL);
                chunk.words.resize(base + self.width, 0);
                chunk.ok[r] = false;
                chunk.bad += 1;
            }
        }
    }

    /// [`encode_chunk`](KeyArena::encode_chunk) fused with the hash
    /// kernel: one pass over the key tuples yields both the packed chunk
    /// and the per-row hashes, bit-identical to
    /// [`hash_key_columns`](crate::exec::hash::hash_key_columns) — each
    /// key value is enum-dispatched exactly once instead of once to hash
    /// and once to encode. Rows that fail to encode (marked not-ok) still
    /// get their exact hash via the value-based kernel, so the row-based
    /// fallback sees the same hashes it always did.
    pub fn encode_chunk_hashed<'v>(
        &mut self,
        chunk: &mut EncodedChunk,
        rows: usize,
        mut get: impl FnMut(usize, usize) -> &'v Value,
    ) -> Vec<u64> {
        chunk.reset(self.width, rows);
        let mut hashes = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut h = HASH_SEED;
            let mut ok = true;
            for c in 0..self.width {
                let v = get(r, c);
                match self.encode_hash_value(v) {
                    Some((t, w, vh)) => {
                        chunk.tags.push(t);
                        chunk.words.push(w);
                        h = combine(h, vh);
                    }
                    None => {
                        // Keep hashing the rest of the row (the fallback
                        // path needs the full row hash); pad the packed
                        // slots, which a not-ok row never compares.
                        ok = false;
                        chunk.tags.push(T_NULL);
                        chunk.words.push(0);
                        h = combine(h, hash_value(v));
                    }
                }
            }
            if !ok {
                chunk.ok[r] = false;
                chunk.bad += 1;
            }
            hashes.push(h);
        }
        hashes
    }

    /// Probe-side fused kernel: encode a batch's key columns against this
    /// arena (lookup-only) and hash them in the same column-at-a-time
    /// pass — bit-identical to
    /// [`hash_batch_keys`](crate::exec::hash::hash_batch_keys), NULL-key
    /// marking included.
    pub fn encode_probe_batch(
        &self,
        chunk: &mut EncodedChunk,
        batch: &RowBatch<'_>,
        cols: &[usize],
    ) -> KeyHashes {
        let rows = batch.num_rows();
        let width = self.width;
        debug_assert_eq!(cols.len(), width);
        chunk.reset_dense(width, rows);
        let mut out = KeyHashes::seeded(rows);
        let tags = &mut chunk.tags;
        let words = &mut chunk.words;
        let ok = &mut chunk.ok;
        let mut bad = 0usize;
        let mut nulls: Vec<usize> = Vec::new();
        for (k, &c) in cols.iter().enumerate() {
            let col = batch.column(c);
            let hashes = &mut out.hashes;
            col.for_each_value(rows, |r, v| {
                let slot = r * width + k;
                match self.encode_hash_probe_value(v) {
                    Some((t, w, vh)) => {
                        tags[slot] = t;
                        words[slot] = w;
                        hashes[r] = combine(hashes[r], vh);
                        if t == T_NULL {
                            nulls.push(r);
                        }
                    }
                    None => {
                        if ok[r] {
                            ok[r] = false;
                            bad += 1;
                        }
                        hashes[r] = combine(hashes[r], hash_value(v));
                    }
                }
            });
        }
        chunk.bad = bad;
        for r in nulls {
            out.mark_null(r);
        }
        out
    }

    /// Owned-side fused batch kernel: encode a batch's key columns
    /// directly into `chunk` (interning new text) and hash them in the
    /// same column-at-a-time pass — bit-identical to
    /// [`hash_key_columns`](crate::exec::hash::hash_key_columns) on the
    /// materialized values, so consumers can skip materializing bare
    /// column references entirely. Rows that fail to encode are marked
    /// not-ok but still get their exact hash via the value-based kernel.
    pub fn encode_batch_hashed(
        &mut self,
        chunk: &mut EncodedChunk,
        batch: &RowBatch<'_>,
        cols: &[usize],
    ) -> Vec<u64> {
        let rows = batch.num_rows();
        let width = self.width;
        debug_assert_eq!(cols.len(), width);
        chunk.reset_dense(width, rows);
        let mut hashes = vec![HASH_SEED; rows];
        let mut bad = 0usize;
        for (k, &c) in cols.iter().enumerate() {
            let col = batch.column(c);
            let (tags, words, ok) = (&mut chunk.tags, &mut chunk.words, &mut chunk.ok);
            let hashes = &mut hashes;
            col.for_each_value(rows, |r, v| {
                let slot = r * width + k;
                match self.encode_hash_value(v) {
                    Some((t, w, vh)) => {
                        tags[slot] = t;
                        words[slot] = w;
                        hashes[r] = combine(hashes[r], vh);
                    }
                    None => {
                        if ok[r] {
                            ok[r] = false;
                            bad += 1;
                        }
                        hashes[r] = combine(hashes[r], hash_value(v));
                    }
                }
            });
        }
        chunk.bad = bad;
        hashes
    }

    /// Append chunk row `r` (must be ok) as a stored tuple; returns its
    /// arena index.
    #[inline]
    pub fn push_from_chunk(&mut self, chunk: &EncodedChunk, r: usize) -> u32 {
        debug_assert!(chunk.ok(r) && chunk.width == self.width);
        let idx = self.len() as u32;
        let s = r * self.width;
        self.tags.extend_from_slice(&chunk.tags[s..s + self.width]);
        self.words
            .extend_from_slice(&chunk.words[s..s + self.width]);
        idx
    }

    /// Grouping equality between stored tuple `idx` and chunk row `r`:
    /// equal classes and equal words across all columns. Valid for owned
    /// chunks and for probe chunks encoded against *this* arena (ids live
    /// in the same heap).
    #[inline]
    pub fn eq_chunk(&self, idx: usize, chunk: &EncodedChunk, r: usize) -> bool {
        let w = self.width;
        let a = idx * w;
        let b = r * w;
        for k in 0..w {
            if EQ_CLASS[self.tags[a + k] as usize] != EQ_CLASS[chunk.tags[b + k] as usize]
                || self.words[a + k] != chunk.words[b + k]
            {
                return false;
            }
        }
        true
    }

    /// Grouping equality between two stored tuples (join build chains
    /// compare candidate build rows against each other).
    #[inline]
    pub fn eq_rows(&self, a: usize, b: usize) -> bool {
        let w = self.width;
        let (a, b) = (a * w, b * w);
        for k in 0..w {
            if EQ_CLASS[self.tags[a + k] as usize] != EQ_CLASS[self.tags[b + k] as usize]
                || self.words[a + k] != self.words[b + k]
            {
                return false;
            }
        }
        true
    }

    /// Grouping equality between stored tuple `idx` and a row of plain
    /// `Value`s fetched through `get(c)` — the per-row fallback compare
    /// for probes that could not be chunk-encoded. Exact for *all* values,
    /// including integers beyond ±2^53: stored `T_INT` words decode back
    /// to exact integers for an `i64` compare, while `T_DOUBLE` words
    /// compare against the probe integer's widening, mirroring
    /// `Value::total_cmp` case by case.
    pub fn eq_row_at<'v>(&self, idx: usize, mut get: impl FnMut(usize) -> &'v Value) -> bool {
        let base = idx * self.width;
        for c in 0..self.width {
            let (tag, word) = (self.tags[base + c], self.words[base + c]);
            let equal = match get(c) {
                Value::Null => tag == T_NULL,
                Value::Boolean(b) => tag == T_BOOL && word == u64::from(*b),
                Value::Integer(i) => match tag {
                    T_INT => f64::from_bits(word) as i64 == *i,
                    T_DOUBLE => (*i as f64).to_bits() == word,
                    _ => false,
                },
                Value::Double(d) => (tag == T_INT || tag == T_DOUBLE) && word == d.to_bits(),
                Value::Varchar(s) => tag == T_TEXT && self.heap.get(word) == s.as_str(),
                Value::Date(d) => tag == T_DATE && word == *d as u32 as u64,
            };
            if !equal {
                return false;
            }
        }
        true
    }

    /// Decode column `col` of stored tuple `idx` back to its original
    /// `Value` (exact: every encodable value round-trips).
    pub fn value_at(&self, idx: usize, col: usize) -> Value {
        let i = idx * self.width + col;
        let word = self.words[i];
        match self.tags[i] {
            T_NULL => Value::Null,
            T_BOOL => Value::Boolean(word != 0),
            T_INT => Value::Integer(f64::from_bits(word) as i64),
            T_DOUBLE => Value::Double(f64::from_bits(word)),
            T_DATE => Value::Date(word as u32 as i32),
            T_TEXT => Value::Varchar(self.heap.get(word).to_string()),
            t => unreachable!("invalid key arena tag {t}"),
        }
    }

    /// Decode stored tuple `idx` into a materialized row.
    pub fn decode_row(&self, idx: usize) -> Row {
        (0..self.width).map(|c| self.value_at(idx, c)).collect()
    }

    /// Decode the whole arena, preserving insertion order — the lossless
    /// conversion a consumer runs when demoting to the row-based path.
    pub fn decode_all(&self) -> Vec<Row> {
        (0..self.len()).map(|i| self.decode_row(i)).collect()
    }
}

// ---------------------------------------------------------------------------
// TupleStore
// ---------------------------------------------------------------------------

/// Key-tuple storage shared by the hash consumers: typed while the key
/// set is representable, demoted (losslessly, via decode) to materialized
/// rows the moment it is not. `Empty` defers the choice until the first
/// batch reveals the key width.
#[derive(Debug, Default)]
pub enum TupleStore {
    /// No tuples yet; width unknown.
    #[default]
    Empty,
    /// Typed columnar storage.
    Typed(KeyArena),
    /// Row-based fallback storage.
    Rows(Vec<Row>),
}

impl TupleStore {
    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        match self {
            TupleStore::Empty => 0,
            TupleStore::Typed(a) => a.len(),
            TupleStore::Rows(r) => r.len(),
        }
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve `Empty` into a typed arena for `width` columns (zero-width
    /// keys go straight to rows — there is nothing to pack).
    pub fn init(&mut self, width: usize) {
        if matches!(self, TupleStore::Empty) {
            *self = if width == 0 {
                TupleStore::Rows(Vec::new())
            } else {
                TupleStore::Typed(KeyArena::new(width))
            };
        }
    }

    /// Resolve the store for `width`-column tuples, demoting to rows when
    /// an earlier resolution used a different width (mixed-width tuples
    /// cannot share one arena — they are simply unequal rows).
    pub fn ensure_width(&mut self, width: usize) {
        self.init(width);
        if matches!(self, TupleStore::Typed(a) if a.width() != width) {
            self.demote();
        }
    }

    /// Switch to row-based storage, decoding any typed tuples in order;
    /// returns the row vector for immediate use.
    pub fn demote(&mut self) -> &mut Vec<Row> {
        if let TupleStore::Typed(a) = self {
            *self = TupleStore::Rows(a.decode_all());
        } else if matches!(self, TupleStore::Empty) {
            *self = TupleStore::Rows(Vec::new());
        }
        match self {
            TupleStore::Rows(r) => r,
            _ => unreachable!(),
        }
    }

    /// Materialize stored tuple `idx` (typed tuples decode, rows clone).
    pub fn row(&self, idx: usize) -> Row {
        match self {
            TupleStore::Empty => unreachable!("empty tuple store has no rows"),
            TupleStore::Typed(a) => a.decode_row(idx),
            TupleStore::Rows(r) => r[idx].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(values: &[&[Value]]) -> KeyArena {
        let width = values[0].len();
        let mut a = KeyArena::new(width);
        let mut chunk = EncodedChunk::new();
        a.encode_chunk(&mut chunk, values.len(), |r, c| &values[r][c]);
        assert!(chunk.all_ok());
        for r in 0..values.len() {
            a.push_from_chunk(&chunk, r);
        }
        a
    }

    #[test]
    fn round_trips_every_type() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Null],
            vec![Value::Boolean(true)],
            vec![Value::Integer(-42)],
            vec![Value::Integer(i64::MIN)], // -2^63 is exactly representable
            vec![Value::Double(3.25)],
            vec![Value::Double(-0.0)],
            vec![Value::Double(f64::NAN)],
            vec![Value::Varchar(String::new())],
            vec![Value::Varchar("héllo".into())],
            vec![Value::Date(-719_468)],
        ];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = arena_with(&refs);
        for (i, row) in rows.iter().enumerate() {
            let back = a.decode_row(i);
            // Bit-exact round trip, including NaN and -0.0 (compare debug
            // forms; Value's == is grouping equality, which -0.0/0.0 would
            // also distinguish but NaN payloads would not).
            assert_eq!(format!("{back:?}"), format!("{row:?}"));
        }
    }

    #[test]
    fn unrepresentable_integers_fail_encoding() {
        let mut a = KeyArena::new(1);
        let mut chunk = EncodedChunk::new();
        let vals = [
            vec![Value::Integer((1 << 53) + 1)],
            vec![Value::Integer(i64::MAX)],
            vec![Value::Integer(1 << 53)], // exactly representable
        ];
        a.encode_chunk(&mut chunk, vals.len(), |r, c| &vals[r][c]);
        assert!(!chunk.ok(0));
        assert!(!chunk.ok(1));
        assert!(chunk.ok(2));
        assert_eq!(chunk.bad_rows(), 2);
    }

    #[test]
    fn grouping_equality_matches_value_semantics() {
        let rows = [
            vec![Value::Integer(3)],
            vec![Value::Null],
            vec![Value::Varchar(String::new())],
            vec![Value::Date(3)],
        ];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut a = arena_with(&refs);

        // INTEGER 3 ≡ DOUBLE 3.0, NULL ≡ NULL, "" ≢ NULL, DATE 3 ≢ INTEGER 3.
        let mut probe = EncodedChunk::new();
        let probes = [
            vec![Value::Double(3.0)],
            vec![Value::Null],
            vec![Value::Varchar("x".into())],
            vec![Value::Integer(3)],
        ];
        a.encode_chunk(&mut probe, probes.len(), |r, c| &probes[r][c]);
        assert!(a.eq_chunk(0, &probe, 0), "INTEGER 3 must equal DOUBLE 3.0");
        assert!(a.eq_chunk(1, &probe, 1), "NULL must equal NULL");
        assert!(!a.eq_chunk(2, &probe, 1), "'' must not equal NULL");
        assert!(!a.eq_chunk(2, &probe, 2));
        assert!(!a.eq_chunk(3, &probe, 3), "DATE 3 must not equal INTEGER 3");
    }

    #[test]
    fn probe_chunk_never_interns() {
        let rows = [vec![Value::Varchar("a".into())]];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = arena_with(&refs);
        let heap_len = a.heap.spans.len();
        let mut chunk = EncodedChunk::new();
        let probes = [
            vec![Value::Varchar("b".into())],
            vec![Value::Varchar("a".into())],
        ];
        a.encode_probe_chunk(&mut chunk, probes.len(), |r, c| &probes[r][c]);
        assert_eq!(a.heap.spans.len(), heap_len, "probe must not intern");
        assert!(chunk.ok(0) && chunk.ok(1));
        assert!(!a.eq_chunk(0, &chunk, 0), "unseen string matches nothing");
        assert!(a.eq_chunk(0, &chunk, 1));
    }

    #[test]
    fn fallback_row_compare_is_exact_beyond_2_53() {
        // Stored: exactly-representable Integer(2^53) and a Double at the
        // same bits. A probe Integer(2^53 + 1) must match the Double (its
        // widening rounds onto it) but not the Integer — the asymmetry
        // that forces unrepresentable ints off the typed path.
        let big = 1_i64 << 53;
        let rows = [vec![Value::Integer(big)], vec![Value::Double(big as f64)]];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = arena_with(&refs);
        let probe = [Value::Integer(big + 1)];
        assert!(!a.eq_row_at(0, |c| &probe[c]));
        assert!(a.eq_row_at(1, |c| &probe[c]));
        // And the sanity direction: the exact integer matches both.
        let exact = [Value::Integer(big)];
        assert!(a.eq_row_at(0, |c| &exact[c]));
        assert!(a.eq_row_at(1, |c| &exact[c]));
    }

    #[test]
    fn demote_preserves_order_and_values() {
        let rows = [
            vec![Value::Integer(1), Value::Varchar("x".into())],
            vec![Value::Null, Value::Double(2.5)],
        ];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut store = TupleStore::Typed(arena_with(&refs));
        let decoded = store.demote().clone();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], rows[0]);
        assert_eq!(decoded[1], rows[1]);
    }
}
