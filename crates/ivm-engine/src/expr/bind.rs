//! Name resolution: AST expressions → [`BoundExpr`].

use ivm_sql::ast::{BinaryOp, Expr, Literal};

use crate::error::EngineError;
use crate::expr::{BoundExpr, ScalarFunc};
use crate::types::DataType;
use crate::value::Value;

/// One column visible to the binder.
#[derive(Debug, Clone)]
pub struct BindColumn {
    /// Table name or alias the column is reachable through.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Static type, when known.
    pub ty: Option<DataType>,
}

/// The set of columns visible while binding an expression: the
/// concatenated outputs of the FROM-clause relations.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Visible columns in input-row order.
    pub columns: Vec<BindColumn>,
}

impl Scope {
    /// Empty scope (constant expressions only).
    pub fn empty() -> Scope {
        Scope::default()
    }

    /// Scope over one relation's output.
    pub fn for_relation(
        qualifier: Option<&str>,
        names: &[String],
        types: &[Option<DataType>],
    ) -> Scope {
        Scope {
            columns: names
                .iter()
                .zip(types)
                .map(|(n, t)| BindColumn {
                    qualifier: qualifier.map(str::to_string),
                    name: n.clone(),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// Concatenate two scopes (join output order: left then right).
    pub fn join(mut self, right: Scope) -> Scope {
        self.columns.extend(right.columns);
        self
    }

    /// Resolve a possibly-qualified name to a column position.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, EngineError> {
        let mut found = None;
        for (i, col) in self.columns.iter().enumerate() {
            let qual_ok = match qualifier {
                None => true,
                Some(q) => col.qualifier.as_deref() == Some(q),
            };
            if qual_ok && col.name == name {
                if found.is_some() {
                    return Err(EngineError::bind(format!("ambiguous column name {name}")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| match qualifier {
            Some(q) => EngineError::bind(format!("unknown column {q}.{name}")),
            None => EngineError::bind(format!("unknown column {name}")),
        })
    }
}

/// Bind an AST expression against a scope, without subquery support.
/// Aggregate calls are rejected — the planner extracts them first.
pub fn bind_expr(expr: &Expr, scope: &Scope) -> Result<BoundExpr, EngineError> {
    bind_expr_with(expr, scope, None)
}

/// Bind an AST expression against a scope. `catalog` enables planning of
/// uncorrelated `IN (subquery)` predicates; without it they are rejected.
pub fn bind_expr_with(
    expr: &Expr,
    scope: &Scope,
    catalog: Option<&crate::catalog::Catalog>,
) -> Result<BoundExpr, EngineError> {
    match expr {
        Expr::Literal(lit) => Ok(BoundExpr::Literal(bind_literal(lit)?)),
        Expr::Column(c) => {
            let qualifier = c.table.as_ref().map(|t| t.normalized().to_string());
            let index = scope.resolve(qualifier.as_deref(), c.column.normalized())?;
            Ok(BoundExpr::Column {
                index,
                ty: scope.columns[index].ty,
                name: c.column.normalized().to_string(),
            })
        }
        Expr::Binary { left, op, right } => {
            let l = bind_expr_with(left, scope, catalog)?;
            let r = bind_expr_with(right, scope, catalog)?;
            check_binary_types(*op, &l, &r)?;
            Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(l),
                right: Box::new(r),
            })
        }
        Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind_expr_with(expr, scope, catalog)?),
        }),
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            let fname = name.normalized();
            if crate::expr::AggFunc::is_aggregate_name(fname) {
                return Err(EngineError::bind(format!(
                    "aggregate function {fname} is not allowed here"
                )));
            }
            if *star || *distinct {
                return Err(EngineError::bind(format!(
                    "invalid use of * or DISTINCT in scalar function {fname}"
                )));
            }
            let func = ScalarFunc::lookup(fname)
                .ok_or_else(|| EngineError::bind(format!("unknown function {fname}")))?;
            let bound: Vec<BoundExpr> = args
                .iter()
                .map(|a| bind_expr_with(a, scope, catalog))
                .collect::<Result<_, _>>()?;
            let (min, max) = func.arity();
            if bound.len() < min || bound.len() > max {
                return Err(EngineError::bind(format!(
                    "function {fname} expects {min}..{} arguments, got {}",
                    if max == usize::MAX {
                        "N".to_string()
                    } else {
                        max.to_string()
                    },
                    bound.len()
                )));
            }
            Ok(BoundExpr::ScalarFn { func, args: bound })
        }
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            // Desugar `CASE x WHEN v …` into `CASE WHEN x = v …`.
            let mut bound_branches = Vec::with_capacity(branches.len());
            for (when, then) in branches {
                let when_bound = match operand {
                    Some(op) => {
                        let l = bind_expr_with(op, scope, catalog)?;
                        let r = bind_expr_with(when, scope, catalog)?;
                        BoundExpr::Binary {
                            op: BinaryOp::Eq,
                            left: Box::new(l),
                            right: Box::new(r),
                        }
                    }
                    None => bind_expr_with(when, scope, catalog)?,
                };
                bound_branches.push((when_bound, bind_expr_with(then, scope, catalog)?));
            }
            let else_bound = match else_result {
                Some(e) => Some(Box::new(bind_expr_with(e, scope, catalog)?)),
                None => None,
            };
            Ok(BoundExpr::Case {
                branches: bound_branches,
                else_result: else_bound,
            })
        }
        Expr::Cast { expr, ty } => Ok(BoundExpr::Cast {
            expr: Box::new(bind_expr_with(expr, scope, catalog)?),
            ty: DataType::from(*ty),
        }),
        Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
            expr: Box::new(bind_expr_with(expr, scope, catalog)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(BoundExpr::InList {
            expr: Box::new(bind_expr_with(expr, scope, catalog)?),
            list: list
                .iter()
                .map(|e| bind_expr_with(e, scope, catalog))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        }),
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let Some(catalog) = catalog else {
                return Err(EngineError::unsupported(
                    "IN (subquery) is not allowed in this context",
                ));
            };
            let plan = crate::planner::plan_query(query, catalog)?;
            if plan.schema().len() != 1 {
                return Err(EngineError::bind(format!(
                    "IN subquery must return one column, got {}",
                    plan.schema().len()
                )));
            }
            Ok(BoundExpr::InSubquery {
                expr: Box::new(bind_expr_with(expr, scope, Some(catalog))?),
                plan: Box::new(plan),
                negated: *negated,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // Desugar into conjunction of comparisons.
            let e = bind_expr_with(expr, scope, catalog)?;
            let lo = bind_expr_with(low, scope, catalog)?;
            let hi = bind_expr_with(high, scope, catalog)?;
            let ge = BoundExpr::Binary {
                op: BinaryOp::GtEq,
                left: Box::new(e.clone()),
                right: Box::new(lo),
            };
            let le = BoundExpr::Binary {
                op: BinaryOp::LtEq,
                left: Box::new(e),
                right: Box::new(hi),
            };
            let both = BoundExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(ge),
                right: Box::new(le),
            };
            Ok(if *negated {
                BoundExpr::Unary {
                    op: ivm_sql::ast::UnaryOp::Not,
                    expr: Box::new(both),
                }
            } else {
                both
            })
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Ok(BoundExpr::Like {
            expr: Box::new(bind_expr_with(expr, scope, catalog)?),
            pattern: Box::new(bind_expr_with(pattern, scope, catalog)?),
            negated: *negated,
        }),
    }
}

/// Parse a literal into a runtime value. Integer lexemes that fit i64 stay
/// INTEGER; everything else numeric becomes DOUBLE.
pub fn bind_literal(lit: &Literal) -> Result<Value, EngineError> {
    Ok(match lit {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Boolean(*b),
        Literal::String(s) => Value::Varchar(s.clone()),
        Literal::Number(n) => {
            if !n.contains(['.', 'e', 'E']) {
                if let Ok(i) = n.parse::<i64>() {
                    return Ok(Value::Integer(i));
                }
            }
            let d: f64 = n
                .parse()
                .map_err(|_| EngineError::bind(format!("invalid numeric literal {n}")))?;
            Value::Double(d)
        }
    })
}

/// Bind-time sanity checks for binary operators (best effort: unknown types
/// pass through and are re-checked at runtime).
fn check_binary_types(op: BinaryOp, l: &BoundExpr, r: &BoundExpr) -> Result<(), EngineError> {
    let (Some(lt), Some(rt)) = (l.ty(), r.ty()) else {
        return Ok(());
    };
    let ok = match op {
        BinaryOp::And | BinaryOp::Or => lt == DataType::Boolean && rt == DataType::Boolean,
        BinaryOp::Plus
        | BinaryOp::Minus
        | BinaryOp::Multiply
        | BinaryOp::Divide
        | BinaryOp::Modulo => {
            (lt.is_numeric() && rt.is_numeric())
                || (lt == DataType::Date && rt == DataType::Integer)
                || (lt == DataType::Integer && rt == DataType::Date)
        }
        BinaryOp::Concat => true,
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => lt == rt || (lt.is_numeric() && rt.is_numeric()),
    };
    if ok {
        Ok(())
    } else {
        Err(EngineError::bind(format!(
            "operator {} not defined for {lt} and {rt}",
            op.as_str()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_sql::ast::{SelectItem, SetExpr, Statement};
    use ivm_sql::parse_statement;

    fn parse_expr(sql: &str) -> Expr {
        match parse_statement(&format!("SELECT {sql}")).unwrap() {
            Statement::Query(q) => match q.body {
                SetExpr::Select(s) => match s.projection.into_iter().next().unwrap() {
                    SelectItem::Expr { expr, .. } => expr,
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    fn scope() -> Scope {
        Scope {
            columns: vec![
                BindColumn {
                    qualifier: Some("t".into()),
                    name: "a".into(),
                    ty: Some(DataType::Integer),
                },
                BindColumn {
                    qualifier: Some("t".into()),
                    name: "b".into(),
                    ty: Some(DataType::Varchar),
                },
                BindColumn {
                    qualifier: Some("u".into()),
                    name: "a".into(),
                    ty: Some(DataType::Double),
                },
            ],
        }
    }

    #[test]
    fn resolve_qualified_and_ambiguous() {
        let s = scope();
        assert_eq!(s.resolve(Some("t"), "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 2);
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert!(s.resolve(None, "a").is_err(), "ambiguous");
        assert!(s.resolve(None, "zz").is_err(), "unknown");
        assert!(s.resolve(Some("x"), "a").is_err(), "unknown qualifier");
    }

    #[test]
    fn bind_column_types() {
        let b = bind_expr(&parse_expr("t.a + 1"), &scope()).unwrap();
        assert_eq!(b.ty(), Some(DataType::Integer));
        let b = bind_expr(&parse_expr("u.a + 1"), &scope()).unwrap();
        assert_eq!(b.ty(), Some(DataType::Double));
    }

    #[test]
    fn between_desugars() {
        let b = bind_expr(&parse_expr("t.a BETWEEN 1 AND 5"), &scope()).unwrap();
        assert!(matches!(
            b,
            BoundExpr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn operand_case_desugars() {
        let b = bind_expr(&parse_expr("CASE t.b WHEN 'x' THEN 1 ELSE 0 END"), &scope()).unwrap();
        match b {
            BoundExpr::Case { branches, .. } => {
                assert!(matches!(
                    branches[0].0,
                    BoundExpr::Binary {
                        op: BinaryOp::Eq,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates_rejected() {
        assert!(bind_expr(&parse_expr("SUM(t.a)"), &scope()).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(bind_expr(&parse_expr("frobnicate(t.a)"), &scope()).is_err());
    }

    #[test]
    fn type_errors_detected() {
        assert!(bind_expr(&parse_expr("t.b + 1"), &scope()).is_err());
        assert!(bind_expr(&parse_expr("t.a AND TRUE"), &scope()).is_err());
        assert!(bind_expr(&parse_expr("t.a = t.b"), &scope()).is_err());
    }

    #[test]
    fn literals() {
        assert_eq!(
            bind_literal(&Literal::Number("42".into())).unwrap(),
            Value::Integer(42)
        );
        assert_eq!(
            bind_literal(&Literal::Number("2.5".into())).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(
            bind_literal(&Literal::Number("1e3".into())).unwrap(),
            Value::Double(1000.0)
        );
        // Over-large integers fall back to double.
        assert_eq!(
            bind_literal(&Literal::Number("99999999999999999999".into())).unwrap(),
            Value::Double(1e20)
        );
    }

    #[test]
    fn arity_enforced() {
        assert!(bind_expr(&parse_expr("abs(1, 2)"), &scope()).is_err());
        assert!(bind_expr(&parse_expr("coalesce()"), &Scope::empty()).is_err());
    }
}
