//! Expression evaluation with SQL NULL semantics.

use ivm_sql::ast::{BinaryOp, UnaryOp};

use crate::error::EngineError;
use crate::expr::{BoundExpr, ScalarFunc};
use crate::types::DataType;
use crate::value::{Tuple, Value};

impl BoundExpr {
    /// Evaluate against one input row.
    ///
    /// Generic over [`Tuple`] so rows inside a columnar batch evaluate
    /// in place, without being gathered into a `Vec<Value>` first.
    pub fn eval<R: Tuple + ?Sized>(&self, row: &R) -> Result<Value, EngineError> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column { index, .. } => row.col(*index).cloned().ok_or_else(|| {
                EngineError::execution(format!("column index {index} out of range"))
            }),
            BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Boolean(b) => Ok(Value::Boolean(!b)),
                        other => Err(EngineError::execution(format!("NOT applied to {other}"))),
                    },
                    UnaryOp::Minus => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Integer(i) => i
                            .checked_neg()
                            .map(Value::Integer)
                            .ok_or_else(|| EngineError::execution("integer overflow in negation")),
                        Value::Double(d) => Ok(Value::Double(-d)),
                        other => Err(EngineError::execution(format!("- applied to {other}"))),
                    },
                    UnaryOp::Plus => Ok(v),
                }
            }
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                for (when, then) in branches {
                    if when.eval(row)?.as_bool() == Some(true) {
                        return then.eval(row);
                    }
                }
                match else_result {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::Cast { expr, ty } => expr.eval(row)?.cast(*ty),
            BoundExpr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Boolean(isnull != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let probe = expr.eval(row)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for candidate in list {
                    let v = candidate.eval(row)?;
                    if v.is_null() {
                        saw_null = true;
                    } else if sql_equal(&probe, &v)? {
                        return Ok(Value::Boolean(!negated));
                    }
                }
                // SQL three-valued IN: no match but NULL present → NULL.
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Boolean(*negated))
                }
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let s = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (s, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Varchar(s), Value::Varchar(p)) => {
                        Ok(Value::Boolean(like_match(&s, &p) != *negated))
                    }
                    (a, b) => Err(EngineError::execution(format!(
                        "LIKE applied to {a} and {b}"
                    ))),
                }
            }
            BoundExpr::ScalarFn { func, args } => eval_scalar_fn(*func, args, row),
            BoundExpr::InSubquery { .. } => Err(EngineError::execution(
                "IN (subquery) must be prepared by the executor before evaluation",
            )),
            BoundExpr::InSet {
                expr,
                set,
                has_null,
                negated,
            } => {
                let probe = expr.eval(row)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                if set.contains(&probe) {
                    Ok(Value::Boolean(!negated))
                } else if *has_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Boolean(*negated))
                }
            }
        }
    }
}

fn eval_binary<R: Tuple + ?Sized>(
    op: BinaryOp,
    left: &BoundExpr,
    right: &BoundExpr,
    row: &R,
) -> Result<Value, EngineError> {
    // AND/OR get Kleene logic (must not early-evaluate NULL as false).
    match op {
        BinaryOp::And => {
            let l = left.eval(row)?;
            if l.as_bool() == Some(false) {
                return Ok(Value::Boolean(false));
            }
            let r = right.eval(row)?;
            return Ok(match (l.as_bool(), r.as_bool()) {
                (_, Some(false)) => Value::Boolean(false),
                (Some(true), Some(true)) => Value::Boolean(true),
                _ => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = left.eval(row)?;
            if l.as_bool() == Some(true) {
                return Ok(Value::Boolean(true));
            }
            let r = right.eval(row)?;
            return Ok(match (l.as_bool(), r.as_bool()) {
                (_, Some(true)) => Value::Boolean(true),
                (Some(false), Some(false)) => Value::Boolean(false),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    let l = left.eval(row)?;
    let r = right.eval(row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinaryOp::Eq => Ok(Value::Boolean(sql_equal(&l, &r)?)),
        BinaryOp::NotEq => Ok(Value::Boolean(!sql_equal(&l, &r)?)),
        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            let ord = sql_compare(&l, &r)?;
            Ok(Value::Boolean(match op {
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::LtEq => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        BinaryOp::Concat => {
            let ls = l.cast(DataType::Varchar)?;
            let rs = r.cast(DataType::Varchar)?;
            Ok(Value::Varchar(format!(
                "{}{}",
                ls.as_str().unwrap_or_default(),
                rs.as_str().unwrap_or_default()
            )))
        }
        BinaryOp::Plus
        | BinaryOp::Minus
        | BinaryOp::Multiply
        | BinaryOp::Divide
        | BinaryOp::Modulo => eval_arith(op, &l, &r),
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

pub(crate) fn eval_arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value, EngineError> {
    // DATE ± INTEGER arithmetic.
    if let (Value::Date(d), Value::Integer(i)) = (l, r) {
        return match op {
            BinaryOp::Plus => Ok(Value::Date(d + *i as i32)),
            BinaryOp::Minus => Ok(Value::Date(d - *i as i32)),
            _ => Err(EngineError::execution("unsupported DATE arithmetic")),
        };
    }
    if let (Value::Integer(i), Value::Date(d)) = (l, r) {
        return match op {
            BinaryOp::Plus => Ok(Value::Date(d + *i as i32)),
            _ => Err(EngineError::execution("unsupported DATE arithmetic")),
        };
    }
    match (l, r) {
        (Value::Integer(a), Value::Integer(b)) => {
            let (a, b) = (*a, *b);
            let out = match op {
                BinaryOp::Plus => a.checked_add(b),
                BinaryOp::Minus => a.checked_sub(b),
                BinaryOp::Multiply => a.checked_mul(b),
                BinaryOp::Divide => {
                    if b == 0 {
                        return Err(EngineError::execution("division by zero"));
                    }
                    a.checked_div(b)
                }
                BinaryOp::Modulo => {
                    if b == 0 {
                        return Err(EngineError::execution("modulo by zero"));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Integer)
                .ok_or_else(|| EngineError::execution("integer overflow"))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(EngineError::execution(format!(
                    "arithmetic on non-numeric values {l} and {r}"
                )));
            };
            let out = match op {
                BinaryOp::Plus => a + b,
                BinaryOp::Minus => a - b,
                BinaryOp::Multiply => a * b,
                BinaryOp::Divide => {
                    if b == 0.0 {
                        return Err(EngineError::execution("division by zero"));
                    }
                    a / b
                }
                BinaryOp::Modulo => {
                    if b == 0.0 {
                        return Err(EngineError::execution("modulo by zero"));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Double(out))
        }
    }
}

/// SQL equality for non-NULL operands.
pub(crate) fn sql_equal(l: &Value, r: &Value) -> Result<bool, EngineError> {
    Ok(sql_compare(l, r)?.is_eq())
}

/// SQL ordering for non-NULL operands of compatible types.
pub(crate) fn sql_compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering, EngineError> {
    let compatible = match (l.data_type(), r.data_type()) {
        (Some(a), Some(b)) => a == b || (a.is_numeric() && b.is_numeric()),
        _ => true,
    };
    if !compatible {
        return Err(EngineError::execution(format!(
            "cannot compare {l} with {r}"
        )));
    }
    Ok(l.total_cmp(r))
}

fn eval_scalar_fn<R: Tuple + ?Sized>(
    func: ScalarFunc,
    args: &[BoundExpr],
    row: &R,
) -> Result<Value, EngineError> {
    match func {
        ScalarFunc::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFunc::NullIf => {
            let a = args[0].eval(row)?;
            let b = args[1].eval(row)?;
            if !a.is_null() && !b.is_null() && sql_equal(&a, &b)? {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        ScalarFunc::Abs => match args[0].eval(row)? {
            Value::Null => Ok(Value::Null),
            Value::Integer(i) => i
                .checked_abs()
                .map(Value::Integer)
                .ok_or_else(|| EngineError::execution("integer overflow in abs")),
            Value::Double(d) => Ok(Value::Double(d.abs())),
            other => Err(EngineError::execution(format!("abs applied to {other}"))),
        },
        ScalarFunc::Lower | ScalarFunc::Upper => match args[0].eval(row)? {
            Value::Null => Ok(Value::Null),
            Value::Varchar(s) => Ok(Value::Varchar(if func == ScalarFunc::Lower {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            })),
            other => Err(EngineError::execution(format!(
                "{} applied to {other}",
                func.name()
            ))),
        },
        ScalarFunc::Length => match args[0].eval(row)? {
            Value::Null => Ok(Value::Null),
            Value::Varchar(s) => Ok(Value::Integer(s.chars().count() as i64)),
            other => Err(EngineError::execution(format!("length applied to {other}"))),
        },
        ScalarFunc::Round | ScalarFunc::Floor | ScalarFunc::Ceil => {
            let v = args[0].eval(row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let d = v
                .as_f64()
                .ok_or_else(|| EngineError::execution(format!("{} applied to {v}", func.name())))?;
            Ok(Value::Double(match func {
                ScalarFunc::Round => d.round(),
                ScalarFunc::Floor => d.floor(),
                ScalarFunc::Ceil => d.ceil(),
                _ => unreachable!(),
            }))
        }
        ScalarFunc::Greatest | ScalarFunc::Least => {
            let mut best: Option<Value> = None;
            for a in args {
                let v = a.eval(row)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(cur) => {
                        let keep_new = if func == ScalarFunc::Greatest {
                            sql_compare(&v, &cur)?.is_gt()
                        } else {
                            sql_compare(&v, &cur)?.is_lt()
                        };
                        if keep_new {
                            v
                        } else {
                            cur
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        ScalarFunc::Left | ScalarFunc::Right => {
            let s = args[0].eval(row)?;
            let n = args[1].eval(row)?;
            match (s, n) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Varchar(s), Value::Integer(n)) => {
                    let n = n.max(0) as usize;
                    let chars: Vec<char> = s.chars().collect();
                    let out: String = if func == ScalarFunc::Left {
                        chars.iter().take(n).collect()
                    } else {
                        chars.iter().skip(chars.len().saturating_sub(n)).collect()
                    };
                    Ok(Value::Varchar(out))
                }
                (a, b) => Err(EngineError::execution(format!(
                    "{} applied to {a} and {b}",
                    func.name()
                ))),
            }
        }
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                let v = a.eval(row)?;
                if v.is_null() {
                    continue;
                }
                let s = v.cast(DataType::Varchar)?;
                out.push_str(s.as_str().unwrap_or_default());
            }
            Ok(Value::Varchar(out))
        }
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=s.len()).any(|skip| rec(&s[skip..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn null() -> BoundExpr {
        BoundExpr::Literal(Value::Null)
    }

    fn bin(op: BinaryOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn ev(e: &BoundExpr) -> Value {
        e.eval(&[]).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            ev(&bin(BinaryOp::Plus, lit(2i64), lit(3i64))),
            Value::Integer(5)
        );
        assert_eq!(
            ev(&bin(BinaryOp::Multiply, lit(2.5), lit(2i64))),
            Value::Double(5.0)
        );
        assert_eq!(
            ev(&bin(BinaryOp::Divide, lit(7i64), lit(2i64))),
            Value::Integer(3)
        );
        assert_eq!(
            ev(&bin(BinaryOp::Modulo, lit(7i64), lit(2i64))),
            Value::Integer(1)
        );
        assert!(bin(BinaryOp::Divide, lit(1i64), lit(0i64))
            .eval(&[])
            .is_err());
        assert!(bin(BinaryOp::Plus, lit(i64::MAX), lit(1i64))
            .eval(&[])
            .is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(ev(&bin(BinaryOp::Plus, null(), lit(1i64))), Value::Null);
        assert_eq!(ev(&bin(BinaryOp::Eq, null(), null())), Value::Null);
        assert_eq!(ev(&bin(BinaryOp::Lt, lit(1i64), null())), Value::Null);
    }

    #[test]
    fn kleene_and_or() {
        let t = || lit(true);
        let f = || lit(false);
        assert_eq!(ev(&bin(BinaryOp::And, f(), null())), Value::Boolean(false));
        assert_eq!(ev(&bin(BinaryOp::And, null(), f())), Value::Boolean(false));
        assert_eq!(ev(&bin(BinaryOp::And, t(), null())), Value::Null);
        assert_eq!(ev(&bin(BinaryOp::Or, t(), null())), Value::Boolean(true));
        assert_eq!(ev(&bin(BinaryOp::Or, null(), t())), Value::Boolean(true));
        assert_eq!(ev(&bin(BinaryOp::Or, f(), null())), Value::Null);
    }

    #[test]
    fn comparisons_cross_numeric() {
        assert_eq!(
            ev(&bin(BinaryOp::Eq, lit(2i64), lit(2.0))),
            Value::Boolean(true)
        );
        assert_eq!(
            ev(&bin(BinaryOp::Lt, lit(2i64), lit(2.5))),
            Value::Boolean(true)
        );
        assert!(bin(BinaryOp::Eq, lit(1i64), lit("x")).eval(&[]).is_err());
    }

    #[test]
    fn case_evaluation() {
        // The paper's multiplicity pattern:
        // CASE WHEN m = FALSE THEN -v ELSE v END
        let m = BoundExpr::Column {
            index: 0,
            ty: Some(DataType::Boolean),
            name: "m".into(),
        };
        let v = BoundExpr::Column {
            index: 1,
            ty: Some(DataType::Integer),
            name: "v".into(),
        };
        let e = BoundExpr::Case {
            branches: vec![(
                bin(BinaryOp::Eq, m, lit(false)),
                BoundExpr::Unary {
                    op: UnaryOp::Minus,
                    expr: Box::new(v.clone()),
                },
            )],
            else_result: Some(Box::new(v)),
        };
        assert_eq!(
            e.eval(&[Value::Boolean(false), Value::Integer(3)]).unwrap(),
            Value::Integer(-3)
        );
        assert_eq!(
            e.eval(&[Value::Boolean(true), Value::Integer(3)]).unwrap(),
            Value::Integer(3)
        );
    }

    #[test]
    fn case_no_match_no_else_is_null() {
        let e = BoundExpr::Case {
            branches: vec![(lit(false), lit(1i64))],
            else_result: None,
        };
        assert_eq!(ev(&e), Value::Null);
    }

    #[test]
    fn in_list_three_valued() {
        let e = BoundExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(2i64), null()],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Null, "no match with NULL present is NULL");
        let e = BoundExpr::InList {
            expr: Box::new(lit(2i64)),
            list: vec![lit(2i64), null()],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Boolean(true));
    }

    #[test]
    fn coalesce_and_nullif() {
        let e = BoundExpr::ScalarFn {
            func: ScalarFunc::Coalesce,
            args: vec![null(), lit(0i64)],
        };
        assert_eq!(ev(&e), Value::Integer(0));
        let e = BoundExpr::ScalarFn {
            func: ScalarFunc::NullIf,
            args: vec![lit(1i64), lit(1i64)],
        };
        assert_eq!(ev(&e), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("apple", "a%"));
        assert!(like_match("apple", "%le"));
        assert!(like_match("apple", "a__le"));
        assert!(like_match("apple", "%"));
        assert!(!like_match("apple", "b%"));
        assert!(!like_match("apple", "a_le"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn concat_and_strings() {
        assert_eq!(
            ev(&bin(BinaryOp::Concat, lit("a"), lit(1i64))),
            Value::Varchar("a1".into())
        );
        let e = BoundExpr::ScalarFn {
            func: ScalarFunc::Concat,
            args: vec![lit("a"), null(), lit("b")],
        };
        assert_eq!(ev(&e), Value::Varchar("ab".into()));
    }

    #[test]
    fn date_arithmetic() {
        let d = BoundExpr::Literal(Value::Date(10));
        assert_eq!(
            ev(&bin(BinaryOp::Plus, d.clone(), lit(5i64))),
            Value::Date(15)
        );
        assert_eq!(ev(&bin(BinaryOp::Minus, d, lit(5i64))), Value::Date(5));
    }

    #[test]
    fn greatest_least_skip_nulls() {
        let e = BoundExpr::ScalarFn {
            func: ScalarFunc::Greatest,
            args: vec![lit(1i64), null(), lit(3i64)],
        };
        assert_eq!(ev(&e), Value::Integer(3));
        let e = BoundExpr::ScalarFn {
            func: ScalarFunc::Least,
            args: vec![null(), null()],
        };
        assert_eq!(ev(&e), Value::Null);
    }
}
