//! Scalar and aggregate function catalogs.

use crate::expr::BoundExpr;
use crate::types::DataType;

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// First non-NULL argument.
    Coalesce,
    /// `NULLIF(a, b)`: NULL when `a = b`, else `a`.
    NullIf,
    /// Absolute value.
    Abs,
    /// Lower-case a string.
    Lower,
    /// Upper-case a string.
    Upper,
    /// String length in characters.
    Length,
    /// Round a double to the nearest integer value (returns DOUBLE).
    Round,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
    /// Largest argument (SQL `GREATEST`).
    Greatest,
    /// Smallest argument (SQL `LEAST`).
    Least,
    /// `LEFT(s, n)`: first `n` characters.
    Left,
    /// `RIGHT(s, n)`: last `n` characters.
    Right,
    /// `CONCAT(args…)`: string concatenation, NULLs skipped.
    Concat,
}

impl ScalarFunc {
    /// Resolve a function name (normalized lower-case).
    pub fn lookup(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "coalesce" => ScalarFunc::Coalesce,
            "nullif" => ScalarFunc::NullIf,
            "abs" => ScalarFunc::Abs,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "length" => ScalarFunc::Length,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "greatest" => ScalarFunc::Greatest,
            "least" => ScalarFunc::Least,
            "left" => ScalarFunc::Left,
            "right" => ScalarFunc::Right,
            "concat" => ScalarFunc::Concat,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFunc::Coalesce => "coalesce",
            ScalarFunc::NullIf => "nullif",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Length => "length",
            ScalarFunc::Round => "round",
            ScalarFunc::Floor => "floor",
            ScalarFunc::Ceil => "ceil",
            ScalarFunc::Greatest => "greatest",
            ScalarFunc::Least => "least",
            ScalarFunc::Left => "left",
            ScalarFunc::Right => "right",
            ScalarFunc::Concat => "concat",
        }
    }

    /// Accepted argument count range.
    pub fn arity(&self) -> (usize, usize) {
        match self {
            ScalarFunc::Coalesce | ScalarFunc::Greatest | ScalarFunc::Least => (1, usize::MAX),
            ScalarFunc::Concat => (0, usize::MAX),
            ScalarFunc::NullIf | ScalarFunc::Left | ScalarFunc::Right => (2, 2),
            ScalarFunc::Abs
            | ScalarFunc::Lower
            | ScalarFunc::Upper
            | ScalarFunc::Length
            | ScalarFunc::Round
            | ScalarFunc::Floor
            | ScalarFunc::Ceil => (1, 1),
        }
    }

    /// Static return type, when derivable from the arguments.
    pub fn return_type(&self, args: &[BoundExpr]) -> Option<DataType> {
        match self {
            ScalarFunc::Coalesce | ScalarFunc::Greatest | ScalarFunc::Least => {
                args.iter().find_map(BoundExpr::ty)
            }
            ScalarFunc::NullIf | ScalarFunc::Abs => args.first().and_then(BoundExpr::ty),
            ScalarFunc::Lower
            | ScalarFunc::Upper
            | ScalarFunc::Left
            | ScalarFunc::Right
            | ScalarFunc::Concat => Some(DataType::Varchar),
            ScalarFunc::Length => Some(DataType::Integer),
            ScalarFunc::Round | ScalarFunc::Floor | ScalarFunc::Ceil => Some(DataType::Double),
        }
    }
}

/// Built-in aggregate functions. The paper's prototype supports SUM and
/// COUNT with MIN/MAX "in progress"; we implement the full set plus AVG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM(x)`.
    Sum,
    /// `COUNT(x)` / `COUNT(*)`.
    Count,
    /// `AVG(x)`.
    Avg,
    /// `MIN(x)`.
    Min,
    /// `MAX(x)`.
    Max,
}

impl AggFunc {
    /// Resolve an aggregate name (normalized lower-case).
    pub fn lookup(name: &str) -> Option<AggFunc> {
        Some(match name {
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// True when the name denotes any aggregate.
    pub fn is_aggregate_name(name: &str) -> bool {
        AggFunc::lookup(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        assert_eq!(ScalarFunc::lookup("coalesce"), Some(ScalarFunc::Coalesce));
        assert_eq!(ScalarFunc::lookup("ceiling"), Some(ScalarFunc::Ceil));
        assert_eq!(ScalarFunc::lookup("sum"), None);
        assert_eq!(AggFunc::lookup("sum"), Some(AggFunc::Sum));
        assert!(AggFunc::is_aggregate_name("count"));
        assert!(!AggFunc::is_aggregate_name("coalesce"));
    }

    #[test]
    fn arity_ranges() {
        assert_eq!(ScalarFunc::Abs.arity(), (1, 1));
        assert_eq!(ScalarFunc::NullIf.arity(), (2, 2));
        assert_eq!(ScalarFunc::Coalesce.arity().0, 1);
    }
}
