//! Bound (resolved, typed) expressions and their evaluation.

pub mod bind;
pub mod eval;
mod funcs;
pub mod vector;

pub use bind::{BindColumn, Scope};
pub use eval::like_match;
pub use funcs::{AggFunc, ScalarFunc};
pub use vector::{EvalChunk, VectorKernel};

use ivm_sql::ast::{BinaryOp, UnaryOp};

use crate::types::DataType;
use crate::value::Value;

/// A name-resolved expression evaluated against a row of the child
/// operator's output. `BETWEEN` is desugared at bind time; `COALESCE` and
/// friends become [`ScalarFunc`] calls; aggregate calls never appear here —
/// the planner extracts them into the Aggregate operator.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// A constant.
    Literal(Value),
    /// Reference to column `index` of the input row.
    Column {
        /// Position in the input row.
        index: usize,
        /// Static type, when known.
        ty: Option<DataType>,
        /// Display name (for EXPLAIN-style output and projection naming).
        name: String,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// `CASE` expression (operand form desugared into searched form).
    Case {
        /// `(when, then)` pairs.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// `ELSE` result (NULL if absent).
        else_result: Option<Box<BoundExpr>>,
    },
    /// `CAST(expr AS ty)`.
    Cast {
        /// Operand.
        expr: Box<BoundExpr>,
        /// Target type.
        ty: DataType,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<BoundExpr>,
        /// IS NOT NULL when true.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<BoundExpr>,
        /// NOT IN when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Matched string.
        expr: Box<BoundExpr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<BoundExpr>,
        /// NOT LIKE when true.
        negated: bool,
    },
    /// Scalar function call.
    ScalarFn {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// `expr [NOT] IN (subquery)` with the subquery planned but not yet
    /// executed. The executor's prepare pass turns this into [`Self::InSet`];
    /// evaluating it directly is an error.
    InSubquery {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Planned uncorrelated subquery producing one column.
        plan: Box<crate::planner::LogicalPlan>,
        /// NOT IN when true.
        negated: bool,
    },
    /// Membership test against a materialized value set (the prepared form
    /// of [`Self::InSubquery`]).
    InSet {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Materialized subquery values.
        set: std::sync::Arc<std::collections::HashSet<Value>>,
        /// Whether the subquery produced any NULL (three-valued IN).
        has_null: bool,
        /// NOT IN when true.
        negated: bool,
    },
}

impl BoundExpr {
    /// Static result type, when inferable (NULL literals and some function
    /// results are unknown until runtime).
    pub fn ty(&self) -> Option<DataType> {
        match self {
            BoundExpr::Literal(v) => v.data_type(),
            BoundExpr::Column { ty, .. } => *ty,
            BoundExpr::Binary { op, left, right } => match op {
                BinaryOp::Or
                | BinaryOp::And
                | BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => Some(DataType::Boolean),
                BinaryOp::Concat => Some(DataType::Varchar),
                BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Modulo => {
                    match (left.ty(), right.ty()) {
                        (Some(a), Some(b)) => DataType::promote(a, b),
                        (Some(a), None) | (None, Some(a)) => Some(a),
                        (None, None) => None,
                    }
                }
                BinaryOp::Divide => match (left.ty(), right.ty()) {
                    (Some(DataType::Integer), Some(DataType::Integer)) => Some(DataType::Integer),
                    (Some(a), Some(b)) => DataType::promote(a, b),
                    _ => None,
                },
            },
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => Some(DataType::Boolean),
                UnaryOp::Minus | UnaryOp::Plus => expr.ty(),
            },
            BoundExpr::Case {
                branches,
                else_result,
            } => branches
                .iter()
                .map(|(_, t)| t.ty())
                .chain(else_result.iter().map(|e| e.ty()))
                .flatten()
                .next(),
            BoundExpr::Cast { ty, .. } => Some(*ty),
            BoundExpr::IsNull { .. } | BoundExpr::InList { .. } | BoundExpr::Like { .. } => {
                Some(DataType::Boolean)
            }
            BoundExpr::ScalarFn { func, args } => func.return_type(args),
            BoundExpr::InSubquery { .. } | BoundExpr::InSet { .. } => Some(DataType::Boolean),
        }
    }

    /// True when the expression references no input columns (a constant).
    pub fn is_constant(&self) -> bool {
        match self {
            BoundExpr::Literal(_) => true,
            BoundExpr::Column { .. } => false,
            BoundExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            BoundExpr::Unary { expr, .. } => expr.is_constant(),
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                branches
                    .iter()
                    .all(|(w, t)| w.is_constant() && t.is_constant())
                    && else_result.as_ref().is_none_or(|e| e.is_constant())
            }
            BoundExpr::Cast { expr, .. } | BoundExpr::IsNull { expr, .. } => expr.is_constant(),
            BoundExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(BoundExpr::is_constant)
            }
            BoundExpr::Like { expr, pattern, .. } => expr.is_constant() && pattern.is_constant(),
            BoundExpr::ScalarFn { args, .. } => args.iter().all(BoundExpr::is_constant),
            // Subqueries read tables, so they are never constant-folded.
            BoundExpr::InSubquery { .. } => false,
            BoundExpr::InSet { expr, .. } => expr.is_constant(),
        }
    }

    /// Collect the column indexes this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Literal(_) => {}
            BoundExpr::Column { index, .. } => {
                if !out.contains(index) {
                    out.push(*index);
                }
            }
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::Unary { expr, .. }
            | BoundExpr::Cast { expr, .. }
            | BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                for (w, t) in branches {
                    w.referenced_columns(out);
                    t.referenced_columns(out);
                }
                if let Some(e) = else_result {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            BoundExpr::ScalarFn { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            BoundExpr::InSubquery { expr, .. } | BoundExpr::InSet { expr, .. } => {
                expr.referenced_columns(out)
            }
        }
    }

    /// Rewrite every column index through `map` (old index → new index).
    /// Used by optimizer rules when reshaping operator inputs.
    pub fn remap_columns(&mut self, map: &impl Fn(usize) -> usize) {
        match self {
            BoundExpr::Literal(_) => {}
            BoundExpr::Column { index, .. } => *index = map(*index),
            BoundExpr::Binary { left, right, .. } => {
                left.remap_columns(map);
                right.remap_columns(map);
            }
            BoundExpr::Unary { expr, .. }
            | BoundExpr::Cast { expr, .. }
            | BoundExpr::IsNull { expr, .. } => expr.remap_columns(map),
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                for (w, t) in branches {
                    w.remap_columns(map);
                    t.remap_columns(map);
                }
                if let Some(e) = else_result {
                    e.remap_columns(map);
                }
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.remap_columns(map);
                for e in list {
                    e.remap_columns(map);
                }
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.remap_columns(map);
                pattern.remap_columns(map);
            }
            BoundExpr::ScalarFn { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            BoundExpr::InSubquery { expr, .. } | BoundExpr::InSet { expr, .. } => {
                expr.remap_columns(map)
            }
        }
    }
}

/// Flatten a predicate's top-level AND chain into its conjuncts (shared by
/// the optimizer's filter pushdown and the physical join lowering).
pub(crate) fn flatten_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    if let BoundExpr::Binary {
        op: BinaryOp::And,
        left,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

/// One aggregate computed by an Aggregate operator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument (None only for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
    /// DISTINCT aggregation.
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Result type of this aggregate.
    pub fn ty(&self) -> Option<DataType> {
        match self.func {
            AggFunc::Count => Some(DataType::Integer),
            AggFunc::Avg => Some(DataType::Double),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => self.arg.as_ref().and_then(BoundExpr::ty),
        }
    }
}
