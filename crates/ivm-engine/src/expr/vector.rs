//! Vectorized expression kernels: chunk-at-a-time evaluation of
//! [`BoundExpr`]s over columnar [`RowBatch`]es.
//!
//! [`VectorKernel::compile`] turns a bound expression into a small kernel
//! tree whose nodes evaluate whole column chunks per call: comparisons and
//! arithmetic over Integer/Double columns run as typed loops with null
//! masks, text and other values compare through borrowed references
//! (no `Value` cloning), and `AND`/`OR` propagate *activity masks* so the
//! right operand is only evaluated on rows the left operand did not decide
//! — replicating row-at-a-time short-circuit semantics exactly (a row that
//! would never reach a division in `eval` can't raise a division error
//! here either). Expression shapes with no kernel (CASE, LIKE, casts,
//! scalar functions, …) fall back to per-row [`BoundExpr::eval`] for just
//! that sub-tree, so every expression stays supported.

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;

use ivm_sql::ast::{BinaryOp, UnaryOp};

use crate::error::EngineError;
use crate::exec::batch::RowBatch;
use crate::expr::eval::{eval_arith, sql_compare};
use crate::expr::BoundExpr;
use crate::types::DataType;
use crate::value::Value;

/// Tri-state boolean encoding used by predicate kernels.
const FALSE: i8 = 0;
const TRUE: i8 = 1;
const NULL: i8 = 2;

/// A compiled, chunk-at-a-time evaluator for one [`BoundExpr`].
#[derive(Debug)]
pub struct VectorKernel {
    prog: Node,
}

/// One kernel node. Children are evaluated into [`VecCol`] chunks; the
/// node combines them in a single pass over the chunk.
#[derive(Debug)]
enum Node {
    /// Input column reference.
    Col(usize),
    /// Constant, broadcast over the chunk.
    Lit(Value),
    /// Comparison (`=`, `<>`, `<`, `<=`, `>`, `>=`).
    Cmp {
        op: BinaryOp,
        left: Box<Node>,
        right: Box<Node>,
    },
    /// Arithmetic (`+`, `-`, `*`, `/`, `%`).
    Arith {
        op: BinaryOp,
        left: Box<Node>,
        right: Box<Node>,
    },
    /// Kleene AND with masked (short-circuit) right evaluation.
    And(Box<Node>, Box<Node>),
    /// Kleene OR with masked (short-circuit) right evaluation.
    Or(Box<Node>, Box<Node>),
    /// Boolean negation of a guaranteed-boolean child.
    Not(Box<Node>),
    /// `expr IS [NOT] NULL`.
    IsNull { input: Box<Node>, negated: bool },
    /// Membership probe against a materialized set (prepared `IN`).
    InSet {
        input: Box<Node>,
        set: Arc<HashSet<Value>>,
        has_null: bool,
        negated: bool,
    },
    /// Row-at-a-time escape hatch for unsupported shapes.
    Fallback(BoundExpr),
}

/// An evaluated chunk: one value per logical row (or one broadcast value).
#[derive(Debug)]
enum VecCol<'b> {
    /// Integer data; `nulls[i]` marks NULL rows (data slot is garbage).
    Int {
        data: Vec<i64>,
        nulls: Option<Vec<bool>>,
    },
    /// Double data (also used for mixed Integer/Double chunks).
    Float {
        data: Vec<f64>,
        nulls: Option<Vec<bool>>,
    },
    /// Tri-state booleans.
    Tri(Vec<i8>),
    /// Borrowed arbitrary values, one per row (e.g. a text column).
    Refs(Vec<&'b Value>),
    /// Owned arbitrary values, one per row (fallback output).
    Owned(Vec<Value>),
    /// A single value broadcast to every row.
    Scalar(Value),
}

impl VecCol<'_> {
    /// Value at row `i`, borrowing where possible.
    fn value_at(&self, i: usize) -> Cow<'_, Value> {
        match self {
            VecCol::Int { data, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Cow::Owned(Value::Null)
                } else {
                    Cow::Owned(Value::Integer(data[i]))
                }
            }
            VecCol::Float { data, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Cow::Owned(Value::Null)
                } else {
                    Cow::Owned(Value::Double(data[i]))
                }
            }
            VecCol::Tri(t) => Cow::Owned(match t[i] {
                FALSE => Value::Boolean(false),
                TRUE => Value::Boolean(true),
                _ => Value::Null,
            }),
            VecCol::Refs(refs) => Cow::Borrowed(refs[i]),
            VecCol::Owned(vals) => Cow::Borrowed(&vals[i]),
            VecCol::Scalar(v) => Cow::Borrowed(v),
        }
    }

    /// Convert to tri-state booleans (`as_bool` semantics: any non-boolean
    /// value, including NULL, becomes the unknown state — never an error).
    fn to_tri(&self, rows: usize) -> Vec<i8> {
        match self {
            VecCol::Tri(t) => t.clone(),
            VecCol::Scalar(v) => vec![tri_of(v); rows],
            other => (0..rows).map(|i| tri_of(&other.value_at(i))).collect(),
        }
    }

    /// Materialize into owned values.
    fn into_values(self, rows: usize) -> Vec<Value> {
        match self {
            VecCol::Owned(vals) => vals,
            VecCol::Scalar(v) => vec![v; rows],
            other => (0..rows).map(|i| other.value_at(i).into_owned()).collect(),
        }
    }
}

fn tri_of(v: &Value) -> i8 {
    match v.as_bool() {
        Some(true) => TRUE,
        Some(false) => FALSE,
        None => NULL,
    }
}

/// A numeric view over a [`VecCol`], for the typed comparison/arithmetic
/// loops. `None` means the chunk is not numeric-shaped.
enum NumView<'v> {
    Ints(&'v [i64], Option<&'v [bool]>),
    Floats(&'v [f64], Option<&'v [bool]>),
    ScalarInt(i64),
    ScalarFloat(f64),
    ScalarNull,
}

fn num_view<'v>(v: &'v VecCol<'_>) -> Option<NumView<'v>> {
    match v {
        VecCol::Int { data, nulls } => Some(NumView::Ints(data, nulls.as_deref())),
        VecCol::Float { data, nulls } => Some(NumView::Floats(data, nulls.as_deref())),
        VecCol::Scalar(Value::Integer(i)) => Some(NumView::ScalarInt(*i)),
        VecCol::Scalar(Value::Double(d)) => Some(NumView::ScalarFloat(*d)),
        VecCol::Scalar(Value::Null) => Some(NumView::ScalarNull),
        _ => None,
    }
}

impl NumView<'_> {
    fn all_int(&self) -> bool {
        matches!(
            self,
            NumView::Ints(..) | NumView::ScalarInt(_) | NumView::ScalarNull
        )
    }

    /// `(value, is_null)` as i64; only valid on int-shaped views.
    #[inline]
    fn int_at(&self, i: usize) -> (i64, bool) {
        match self {
            NumView::Ints(d, n) => (d[i], n.is_some_and(|n| n[i])),
            NumView::ScalarInt(v) => (*v, false),
            NumView::ScalarNull => (0, true),
            _ => unreachable!("int_at on float view"),
        }
    }

    /// `(value, is_null)` widened to f64.
    #[inline]
    fn f64_at(&self, i: usize) -> (f64, bool) {
        match self {
            NumView::Ints(d, n) => (d[i] as f64, n.is_some_and(|n| n[i])),
            NumView::Floats(d, n) => (d[i], n.is_some_and(|n| n[i])),
            NumView::ScalarInt(v) => (*v as f64, false),
            NumView::ScalarFloat(v) => (*v, false),
            NumView::ScalarNull => (0.0, true),
        }
    }
}

/// A materialized projection chunk in its tightest representation: typed
/// vectors for all-numeric outputs (the aggregate fold reads these
/// without constructing a `Value` per row), owned values otherwise.
#[derive(Debug)]
pub enum EvalChunk {
    /// All-Integer output; `nulls[i]` marks NULL rows.
    Ints {
        /// Row values (garbage where null).
        data: Vec<i64>,
        /// Per-row null mask, if any row is NULL.
        nulls: Option<Vec<bool>>,
    },
    /// Double (or mixed Integer/Double, widened) output.
    Floats {
        /// Row values (garbage where null).
        data: Vec<f64>,
        /// Per-row null mask, if any row is NULL.
        nulls: Option<Vec<bool>>,
    },
    /// Any other output shape, one owned value per row.
    Values(Vec<Value>),
}

impl VectorKernel {
    /// Compile an expression into a kernel. Compilation never fails:
    /// unsupported sub-trees become row-at-a-time fallback nodes.
    pub fn compile(expr: &BoundExpr) -> VectorKernel {
        VectorKernel {
            prog: compile_node(expr),
        }
    }

    /// The input column index when the whole kernel is a bare column
    /// reference (`GROUP BY c`) — consumers can then read the batch
    /// column directly instead of evaluating the kernel into a clone.
    pub fn column_index(&self) -> Option<usize> {
        match self.prog {
            Node::Col(i) => Some(i),
            _ => None,
        }
    }

    /// True when the whole expression compiled to the row-at-a-time
    /// fallback (no vectorized node at all).
    pub fn is_fallback(&self) -> bool {
        matches!(self.prog, Node::Fallback(_))
    }

    /// Evaluate as a predicate: the logical rows of `batch` where the
    /// expression is TRUE, in row order.
    pub fn select(&self, batch: &RowBatch<'_>) -> Result<Vec<u32>, EngineError> {
        let rows = batch.num_rows();
        if rows == 0 {
            return Ok(Vec::new());
        }
        let out = eval_node(&self.prog, batch, rows, None)?;
        let tri = out.to_tri(rows);
        Ok(tri
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == TRUE)
            .map(|(i, _)| i as u32)
            .collect())
    }

    /// Evaluate as a projection: one output value per logical row.
    pub fn eval_column(&self, batch: &RowBatch<'_>) -> Result<Vec<Value>, EngineError> {
        let rows = batch.num_rows();
        if rows == 0 {
            return Ok(Vec::new());
        }
        let out = eval_node(&self.prog, batch, rows, None)?;
        Ok(out.into_values(rows))
    }

    /// Evaluate as a projection, keeping all-numeric outputs typed (the
    /// aggregate fold consumes [`EvalChunk::Ints`]/[`EvalChunk::Floats`]
    /// directly; everything else materializes as with
    /// [`eval_column`](VectorKernel::eval_column)).
    pub fn eval_chunk(&self, batch: &RowBatch<'_>) -> Result<EvalChunk, EngineError> {
        let rows = batch.num_rows();
        if rows == 0 {
            return Ok(EvalChunk::Values(Vec::new()));
        }
        Ok(match eval_node(&self.prog, batch, rows, None)? {
            VecCol::Int { data, nulls } => EvalChunk::Ints { data, nulls },
            VecCol::Float { data, nulls } => EvalChunk::Floats { data, nulls },
            other => EvalChunk::Values(other.into_values(rows)),
        })
    }
}

fn compile_node(expr: &BoundExpr) -> Node {
    match expr {
        BoundExpr::Literal(v) => Node::Lit(v.clone()),
        BoundExpr::Column { index, .. } => Node::Col(*index),
        BoundExpr::Binary { op, left, right } => match op {
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => Node::Cmp {
                op: *op,
                left: Box::new(compile_node(left)),
                right: Box::new(compile_node(right)),
            },
            BinaryOp::Plus
            | BinaryOp::Minus
            | BinaryOp::Multiply
            | BinaryOp::Divide
            | BinaryOp::Modulo => Node::Arith {
                op: *op,
                left: Box::new(compile_node(left)),
                right: Box::new(compile_node(right)),
            },
            BinaryOp::And => Node::And(Box::new(compile_node(left)), Box::new(compile_node(right))),
            BinaryOp::Or => Node::Or(Box::new(compile_node(left)), Box::new(compile_node(right))),
            BinaryOp::Concat => Node::Fallback(expr.clone()),
        },
        BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: inner,
        } if is_boolean_shaped(inner) => Node::Not(Box::new(compile_node(inner))),
        BoundExpr::IsNull {
            expr: inner,
            negated,
        } => Node::IsNull {
            input: Box::new(compile_node(inner)),
            negated: *negated,
        },
        BoundExpr::InSet {
            expr: inner,
            set,
            has_null,
            negated,
        } => Node::InSet {
            input: Box::new(compile_node(inner)),
            set: Arc::clone(set),
            has_null: *has_null,
            negated: *negated,
        },
        // CASE, CAST, LIKE, IN-list, scalar functions, +/-, CONCAT, …:
        // evaluated row-at-a-time as one opaque sub-tree.
        other => Node::Fallback(other.clone()),
    }
}

/// True when evaluating the expression can only yield BOOLEAN or NULL, so
/// a tri-state kernel can't silently swallow `eval`'s type errors.
fn is_boolean_shaped(expr: &BoundExpr) -> bool {
    match expr {
        BoundExpr::Literal(v) => matches!(v, Value::Boolean(_) | Value::Null),
        BoundExpr::Column { ty, .. } => *ty == Some(DataType::Boolean),
        BoundExpr::Binary { op, left, right } => match op {
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => true,
            BinaryOp::And | BinaryOp::Or => is_boolean_shaped(left) && is_boolean_shaped(right),
            _ => false,
        },
        BoundExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => is_boolean_shaped(expr),
        BoundExpr::IsNull { .. } | BoundExpr::InSet { .. } | BoundExpr::Like { .. } => true,
        _ => false,
    }
}

/// Evaluate one node over the chunk. `active` masks the rows whose results
/// will actually be observed: loops still fill every slot (with NULL
/// placeholders), but errors are only raised for active rows, which is
/// what preserves per-row short-circuit semantics under `AND`/`OR`.
fn eval_node<'b>(
    node: &Node,
    batch: &'b RowBatch<'_>,
    rows: usize,
    active: Option<&[bool]>,
) -> Result<VecCol<'b>, EngineError> {
    #[inline]
    fn live(active: Option<&[bool]>, i: usize) -> bool {
        active.is_none_or(|m| m[i])
    }
    match node {
        Node::Lit(v) => Ok(VecCol::Scalar(v.clone())),
        Node::Col(index) => {
            if *index >= batch.width() {
                return Err(EngineError::execution(format!(
                    "column index {index} out of range"
                )));
            }
            Ok(extract_column(batch, *index, rows))
        }
        Node::Cmp { op, left, right } => {
            let l = eval_node(left, batch, rows, active)?;
            let r = eval_node(right, batch, rows, active)?;
            compare_chunks(*op, &l, &r, rows, active)
        }
        Node::Arith { op, left, right } => {
            let l = eval_node(left, batch, rows, active)?;
            let r = eval_node(right, batch, rows, active)?;
            arith_chunks(*op, &l, &r, rows, active)
        }
        Node::And(left, right) => {
            let lt = eval_node(left, batch, rows, active)?.to_tri(rows);
            // Rows already decided FALSE never observe the right operand.
            let rmask: Vec<bool> = (0..rows)
                .map(|i| live(active, i) && lt[i] != FALSE)
                .collect();
            let rt = eval_node(right, batch, rows, Some(&rmask))?.to_tri(rows);
            Ok(VecCol::Tri(
                (0..rows)
                    .map(|i| match (lt[i], rt[i]) {
                        (FALSE, _) | (_, FALSE) => FALSE,
                        (TRUE, TRUE) => TRUE,
                        _ => NULL,
                    })
                    .collect(),
            ))
        }
        Node::Or(left, right) => {
            let lt = eval_node(left, batch, rows, active)?.to_tri(rows);
            let rmask: Vec<bool> = (0..rows)
                .map(|i| live(active, i) && lt[i] != TRUE)
                .collect();
            let rt = eval_node(right, batch, rows, Some(&rmask))?.to_tri(rows);
            Ok(VecCol::Tri(
                (0..rows)
                    .map(|i| match (lt[i], rt[i]) {
                        (TRUE, _) | (_, TRUE) => TRUE,
                        (FALSE, FALSE) => FALSE,
                        _ => NULL,
                    })
                    .collect(),
            ))
        }
        Node::Not(inner) => {
            let t = eval_node(inner, batch, rows, active)?.to_tri(rows);
            Ok(VecCol::Tri(
                t.iter()
                    .map(|&v| match v {
                        TRUE => FALSE,
                        FALSE => TRUE,
                        _ => NULL,
                    })
                    .collect(),
            ))
        }
        Node::IsNull { input, negated } => {
            let v = eval_node(input, batch, rows, active)?;
            let isnull_at = |i: usize| -> bool {
                match &v {
                    VecCol::Int { nulls, .. } | VecCol::Float { nulls, .. } => {
                        nulls.as_ref().is_some_and(|n| n[i])
                    }
                    VecCol::Tri(t) => t[i] == NULL,
                    VecCol::Refs(refs) => refs[i].is_null(),
                    VecCol::Owned(vals) => vals[i].is_null(),
                    VecCol::Scalar(s) => s.is_null(),
                }
            };
            Ok(VecCol::Tri(
                (0..rows)
                    .map(|i| {
                        if isnull_at(i) != *negated {
                            TRUE
                        } else {
                            FALSE
                        }
                    })
                    .collect(),
            ))
        }
        Node::InSet {
            input,
            set,
            has_null,
            negated,
        } => {
            let v = eval_node(input, batch, rows, active)?;
            Ok(VecCol::Tri(
                (0..rows)
                    .map(|i| {
                        let probe = v.value_at(i);
                        if probe.is_null() {
                            NULL
                        } else if set.contains(probe.as_ref()) {
                            if *negated {
                                FALSE
                            } else {
                                TRUE
                            }
                        } else if *has_null {
                            NULL
                        } else if *negated {
                            TRUE
                        } else {
                            FALSE
                        }
                    })
                    .collect(),
            ))
        }
        Node::Fallback(expr) => {
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                if live(active, i) {
                    out.push(expr.eval(&batch.row_view(i))?);
                } else {
                    out.push(Value::Null);
                }
            }
            Ok(VecCol::Owned(out))
        }
    }
}

/// Extract one batch column as the tightest chunk representation its
/// values allow: all-Integer → `Int`, Integer/Double mix → `Float`,
/// all-Boolean → `Tri`, anything else → borrowed refs.
fn extract_column<'b>(batch: &'b RowBatch<'_>, index: usize, rows: usize) -> VecCol<'b> {
    let col = batch.column(index);
    let mut ints: Vec<i64> = Vec::with_capacity(rows);
    let mut nulls: Option<Vec<bool>> = None;
    let mut i = 0;
    while i < rows {
        match col.get(i) {
            Value::Integer(v) => ints.push(*v),
            Value::Null => {
                nulls.get_or_insert_with(|| vec![false; rows])[i] = true;
                ints.push(0);
            }
            Value::Double(_) => {
                // Upgrade to a float chunk, re-reading from the top.
                let mut floats: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
                while i < rows {
                    match col.get(i) {
                        Value::Integer(v) => floats.push(*v as f64),
                        Value::Double(d) => floats.push(*d),
                        Value::Null => {
                            nulls.get_or_insert_with(|| vec![false; rows])[i] = true;
                            floats.push(0.0);
                        }
                        _ => return refs_column(batch, index, rows),
                    }
                    i += 1;
                }
                return VecCol::Float {
                    data: floats,
                    nulls,
                };
            }
            Value::Boolean(_) if ints.is_empty() && nulls.is_none() => {
                return bool_column(batch, index, rows)
            }
            _ => return refs_column(batch, index, rows),
        }
        i += 1;
    }
    VecCol::Int { data: ints, nulls }
}

fn bool_column<'b>(batch: &'b RowBatch<'_>, index: usize, rows: usize) -> VecCol<'b> {
    let col = batch.column(index);
    let mut tri = Vec::with_capacity(rows);
    for i in 0..rows {
        match col.get(i) {
            Value::Boolean(true) => tri.push(TRUE),
            Value::Boolean(false) => tri.push(FALSE),
            Value::Null => tri.push(NULL),
            _ => return refs_column(batch, index, rows),
        }
    }
    VecCol::Tri(tri)
}

fn refs_column<'b>(batch: &'b RowBatch<'_>, index: usize, rows: usize) -> VecCol<'b> {
    let col = batch.column(index);
    VecCol::Refs((0..rows).map(|i| col.get(i)).collect())
}

fn compare_chunks<'b>(
    op: BinaryOp,
    l: &VecCol<'b>,
    r: &VecCol<'b>,
    rows: usize,
    active: Option<&[bool]>,
) -> Result<VecCol<'b>, EngineError> {
    if let (Some(lv), Some(rv)) = (num_view(l), num_view(r)) {
        let mut out = Vec::with_capacity(rows);
        if lv.all_int() && rv.all_int() {
            for i in 0..rows {
                let (a, an) = lv.int_at(i);
                let (b, bn) = rv.int_at(i);
                out.push(if an || bn {
                    NULL
                } else {
                    tri_from_ord(a.cmp(&b), op)
                });
            }
        } else {
            for i in 0..rows {
                let (a, an) = lv.f64_at(i);
                let (b, bn) = rv.f64_at(i);
                out.push(if an || bn {
                    NULL
                } else {
                    tri_from_ord(a.total_cmp(&b), op)
                });
            }
        }
        return Ok(VecCol::Tri(out));
    }
    // Generic path: reference comparison with SQL semantics; type errors
    // surface only for rows that are actually observed.
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        if !active.is_none_or(|m| m[i]) {
            out.push(NULL);
            continue;
        }
        let a = l.value_at(i);
        let b = r.value_at(i);
        if a.is_null() || b.is_null() {
            out.push(NULL);
        } else {
            out.push(tri_from_ord(sql_compare(a.as_ref(), b.as_ref())?, op));
        }
    }
    Ok(VecCol::Tri(out))
}

#[inline]
fn tri_from_ord(ord: std::cmp::Ordering, op: BinaryOp) -> i8 {
    let b = match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("not a comparison"),
    };
    if b {
        TRUE
    } else {
        FALSE
    }
}

fn arith_chunks<'b>(
    op: BinaryOp,
    l: &VecCol<'b>,
    r: &VecCol<'b>,
    rows: usize,
    active: Option<&[bool]>,
) -> Result<VecCol<'b>, EngineError> {
    #[inline]
    fn live(active: Option<&[bool]>, i: usize) -> bool {
        active.is_none_or(|m| m[i])
    }
    if let (Some(lv), Some(rv)) = (num_view(l), num_view(r)) {
        if lv.all_int() && rv.all_int() {
            let mut data = Vec::with_capacity(rows);
            let mut nulls: Option<Vec<bool>> = None;
            for i in 0..rows {
                let (a, an) = lv.int_at(i);
                let (b, bn) = rv.int_at(i);
                if an || bn {
                    nulls.get_or_insert_with(|| vec![false; rows])[i] = true;
                    data.push(0);
                    continue;
                }
                if !live(active, i) {
                    nulls.get_or_insert_with(|| vec![false; rows])[i] = true;
                    data.push(0);
                    continue;
                }
                let v = match op {
                    BinaryOp::Plus => a.checked_add(b),
                    BinaryOp::Minus => a.checked_sub(b),
                    BinaryOp::Multiply => a.checked_mul(b),
                    BinaryOp::Divide => {
                        if b == 0 {
                            return Err(EngineError::execution("division by zero"));
                        }
                        a.checked_div(b)
                    }
                    BinaryOp::Modulo => {
                        if b == 0 {
                            return Err(EngineError::execution("modulo by zero"));
                        }
                        a.checked_rem(b)
                    }
                    _ => unreachable!("not arithmetic"),
                };
                match v {
                    Some(v) => data.push(v),
                    None => return Err(EngineError::execution("integer overflow")),
                }
            }
            return Ok(VecCol::Int { data, nulls });
        }
        let mut data = Vec::with_capacity(rows);
        let mut nulls: Option<Vec<bool>> = None;
        for i in 0..rows {
            let (a, an) = lv.f64_at(i);
            let (b, bn) = rv.f64_at(i);
            if an || bn || !live(active, i) {
                nulls.get_or_insert_with(|| vec![false; rows])[i] = true;
                data.push(0.0);
                continue;
            }
            let v = match op {
                BinaryOp::Plus => a + b,
                BinaryOp::Minus => a - b,
                BinaryOp::Multiply => a * b,
                BinaryOp::Divide => {
                    if b == 0.0 {
                        return Err(EngineError::execution("division by zero"));
                    }
                    a / b
                }
                BinaryOp::Modulo => {
                    if b == 0.0 {
                        return Err(EngineError::execution("modulo by zero"));
                    }
                    a % b
                }
                _ => unreachable!("not arithmetic"),
            };
            data.push(v);
        }
        return Ok(VecCol::Float { data, nulls });
    }
    // Generic path (dates, type errors): per-row with SQL null propagation.
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        if !live(active, i) {
            out.push(Value::Null);
            continue;
        }
        let a = l.value_at(i);
        let b = r.value_at(i);
        if a.is_null() || b.is_null() {
            out.push(Value::Null);
        } else {
            out.push(eval_arith(op, a.as_ref(), b.as_ref())?);
        }
    }
    Ok(VecCol::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::batch::RowBatch;

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }

    fn col(idx: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column {
            index: idx,
            ty: Some(ty),
            name: format!("c{idx}"),
        }
    }

    fn bin(op: BinaryOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn batch_of(values: Vec<Vec<Value>>) -> RowBatch<'static> {
        RowBatch::from_columns(values)
    }

    #[test]
    fn integer_comparison_selects() {
        let b = batch_of(vec![vec![i(1), i(5), Value::Null, i(3)]]);
        let k = VectorKernel::compile(&bin(BinaryOp::Gt, col(0, DataType::Integer), lit(2i64)));
        assert!(!k.is_fallback());
        assert_eq!(k.select(&b).unwrap(), vec![1, 3]);
    }

    #[test]
    fn mixed_numeric_chunk_compares_as_float() {
        let b = batch_of(vec![vec![i(1), Value::Double(2.5), i(3)]]);
        let k = VectorKernel::compile(&bin(BinaryOp::GtEq, col(0, DataType::Double), lit(2.5f64)));
        assert_eq!(k.select(&b).unwrap(), vec![1, 2]);
    }

    #[test]
    fn text_comparison_borrows() {
        let b = batch_of(vec![vec![Value::from("a"), Value::from("b"), Value::Null]]);
        let k = VectorKernel::compile(&bin(BinaryOp::Eq, col(0, DataType::Varchar), lit("b")));
        assert_eq!(k.select(&b).unwrap(), vec![1]);
    }

    #[test]
    fn kleene_and_short_circuits_errors() {
        // v <> 0 AND 10 / v > 1: row-at-a-time eval never divides where
        // v = 0, so the kernel must not either.
        let b = batch_of(vec![vec![i(0), i(4), i(20)]]);
        let pred = bin(
            BinaryOp::And,
            bin(BinaryOp::NotEq, col(0, DataType::Integer), lit(0i64)),
            bin(
                BinaryOp::Gt,
                bin(BinaryOp::Divide, lit(10i64), col(0, DataType::Integer)),
                lit(1i64),
            ),
        );
        let k = VectorKernel::compile(&pred);
        assert_eq!(k.select(&b).unwrap(), vec![1]);
    }

    #[test]
    fn division_by_zero_still_errors_when_reached() {
        let b = batch_of(vec![vec![i(0), i(4)]]);
        let pred = bin(
            BinaryOp::Gt,
            bin(BinaryOp::Divide, lit(10i64), col(0, DataType::Integer)),
            lit(1i64),
        );
        assert!(VectorKernel::compile(&pred).select(&b).is_err());
    }

    #[test]
    fn arithmetic_projection_matches_eval() {
        let b = batch_of(vec![
            vec![i(1), Value::Null, i(3)],
            vec![i(10), i(20), i(30)],
        ]);
        let e = bin(
            BinaryOp::Plus,
            bin(BinaryOp::Multiply, col(0, DataType::Integer), lit(2i64)),
            col(1, DataType::Integer),
        );
        let k = VectorKernel::compile(&e);
        let got = k.eval_column(&b).unwrap();
        let want: Vec<Value> = (0..3).map(|r| e.eval(&b.row_view(r)).unwrap()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fallback_shapes_still_work() {
        // CASE compiles to a fallback node but must evaluate correctly.
        let b = batch_of(vec![vec![i(-1), i(2)]]);
        let e = BoundExpr::Case {
            branches: vec![(
                bin(BinaryOp::Gt, col(0, DataType::Integer), lit(0i64)),
                lit("pos"),
            )],
            else_result: Some(Box::new(lit("nonpos"))),
        };
        let k = VectorKernel::compile(&e);
        assert!(k.is_fallback());
        assert_eq!(
            k.eval_column(&b).unwrap(),
            vec![Value::from("nonpos"), Value::from("pos")]
        );
    }

    #[test]
    fn boolean_column_equals_literal() {
        let b = batch_of(vec![vec![
            Value::Boolean(true),
            Value::Boolean(false),
            Value::Null,
        ]]);
        let k = VectorKernel::compile(&bin(BinaryOp::Eq, col(0, DataType::Boolean), lit(true)));
        assert_eq!(k.select(&b).unwrap(), vec![0]);
    }

    #[test]
    fn out_of_range_column_errors_like_eval() {
        let b = batch_of(vec![vec![i(1)]]);
        let k = VectorKernel::compile(&col(7, DataType::Integer));
        assert!(k.eval_column(&b).is_err());
    }
}
