//! Adaptive Radix Tree (Leis et al., ICDE 2013).
//!
//! The paper uses DuckDB's ART for the primary key of materialized
//! aggregation tables: "DuckDB requires an index to apply upserts. The ART
//! … is generated after having populated V". This module reproduces the
//! structure with the four adaptive node sizes (Node4/16/48/256), path
//! compression, and lazy leaf expansion, mapping binary-comparable keys
//! (see [`super::key`]) to row ids.

/// An adaptive radix tree from byte-string keys to `u64` payloads (row ids).
///
/// Keys must be prefix-free (no key may be a proper prefix of another); the
/// [`super::key`] encoding guarantees this for fixed-arity composite keys.
#[derive(Debug, Default, Clone)]
pub struct Art {
    root: Option<Box<Node>>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { key: Box<[u8]>, value: u64 },
    Inner(Box<Inner>),
}

#[derive(Debug, Clone)]
struct Inner {
    /// Compressed path: bytes shared by every key below this node,
    /// relative to the node's depth.
    prefix: Vec<u8>,
    children: Children,
}

/// The four adaptive node layouts.
#[derive(Debug, Clone)]
enum Children {
    /// Up to 4 children; linear key array.
    N4 {
        keys: [u8; 4],
        slots: [Option<Box<Node>>; 4],
        len: u8,
    },
    /// Up to 16 children; sorted key array.
    N16 {
        keys: [u8; 16],
        slots: [Option<Box<Node>>; 16],
        len: u8,
    },
    /// Up to 48 children; 256-entry indirection into a slot array.
    N48 {
        index: Box<[u8; 256]>,
        slots: Box<[Option<Box<Node>>; 48]>,
        len: u8,
    },
    /// Direct 256-entry array.
    N256 {
        slots: Box<[Option<Box<Node>>; 256]>,
        len: u16,
    },
}

const EMPTY48: u8 = 0xFF;

impl Children {
    fn n4() -> Children {
        Children::N4 {
            keys: [0; 4],
            slots: Default::default(),
            len: 0,
        }
    }

    fn find(&self, byte: u8) -> Option<&Node> {
        match self {
            Children::N4 { keys, slots, len } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .and_then(|i| slots[i].as_deref()),
            Children::N16 { keys, slots, len } => keys[..*len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| slots[i].as_deref()),
            Children::N48 { index, slots, .. } => {
                let slot = index[byte as usize];
                if slot == EMPTY48 {
                    None
                } else {
                    slots[slot as usize].as_deref()
                }
            }
            Children::N256 { slots, .. } => slots[byte as usize].as_deref(),
        }
    }

    fn find_mut(&mut self, byte: u8) -> Option<&mut Box<Node>> {
        match self {
            Children::N4 { keys, slots, len } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .and_then(|i| slots[i].as_mut()),
            Children::N16 { keys, slots, len } => keys[..*len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| slots[i].as_mut()),
            Children::N48 { index, slots, .. } => {
                let slot = index[byte as usize];
                if slot == EMPTY48 {
                    None
                } else {
                    slots[slot as usize].as_mut()
                }
            }
            Children::N256 { slots, .. } => slots[byte as usize].as_mut(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Children::N4 { len, .. } | Children::N16 { len, .. } | Children::N48 { len, .. } => {
                *len as usize
            }
            Children::N256 { len, .. } => *len as usize,
        }
    }

    fn is_full(&self) -> bool {
        match self {
            Children::N4 { len, .. } => *len == 4,
            Children::N16 { len, .. } => *len == 16,
            Children::N48 { len, .. } => *len == 48,
            Children::N256 { .. } => false,
        }
    }

    /// Insert a child; caller must have grown the node when full.
    fn insert(&mut self, byte: u8, node: Box<Node>) {
        debug_assert!(!self.is_full());
        match self {
            Children::N4 { keys, slots, len } => {
                let i = *len as usize;
                keys[i] = byte;
                slots[i] = Some(node);
                *len += 1;
            }
            Children::N16 { keys, slots, len } => {
                let n = *len as usize;
                let pos = keys[..n].partition_point(|&k| k < byte);
                // Shift to keep keys sorted for binary search.
                for i in (pos..n).rev() {
                    keys[i + 1] = keys[i];
                    slots[i + 1] = slots[i].take();
                }
                keys[pos] = byte;
                slots[pos] = Some(node);
                *len += 1;
            }
            Children::N48 { index, slots, len } => {
                let slot = slots
                    .iter()
                    .position(Option::is_none)
                    .expect("node48 not full");
                index[byte as usize] = slot as u8;
                slots[slot] = Some(node);
                *len += 1;
            }
            Children::N256 { slots, len } => {
                debug_assert!(slots[byte as usize].is_none());
                slots[byte as usize] = Some(node);
                *len += 1;
            }
        }
    }

    /// Grow to the next size class.
    fn grow(&mut self) {
        let grown = match self {
            Children::N4 { keys, slots, len } => {
                let mut nkeys = [0u8; 16];
                let mut nslots: [Option<Box<Node>>; 16] = Default::default();
                // Re-sort while copying (N4 keys are unsorted).
                let n = *len as usize;
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| keys[i]);
                for (dst, &src) in order.iter().enumerate() {
                    nkeys[dst] = keys[src];
                    nslots[dst] = slots[src].take();
                }
                Children::N16 {
                    keys: nkeys,
                    slots: nslots,
                    len: *len,
                }
            }
            Children::N16 { keys, slots, len } => {
                let mut index = Box::new([EMPTY48; 256]);
                let mut nslots: Box<[Option<Box<Node>>; 48]> = Box::new([const { None }; 48]);
                for i in 0..*len as usize {
                    index[keys[i] as usize] = i as u8;
                    nslots[i] = slots[i].take();
                }
                Children::N48 {
                    index,
                    slots: nslots,
                    len: *len,
                }
            }
            Children::N48 { index, slots, len } => {
                let mut nslots: Box<[Option<Box<Node>>; 256]> = Box::new([const { None }; 256]);
                for byte in 0..256usize {
                    let slot = index[byte];
                    if slot != EMPTY48 {
                        nslots[byte] = slots[slot as usize].take();
                    }
                }
                Children::N256 {
                    slots: nslots,
                    len: u16::from(*len),
                }
            }
            Children::N256 { .. } => return,
        };
        *self = grown;
    }

    /// Remove the child for `byte`, returning it. Shrinking to smaller node
    /// classes keeps memory proportional to fan-out.
    fn remove(&mut self, byte: u8) -> Option<Box<Node>> {
        let removed = match self {
            Children::N4 { keys, slots, len } => {
                let n = *len as usize;
                let pos = keys[..n].iter().position(|&k| k == byte)?;
                let node = slots[pos].take();
                for i in pos + 1..n {
                    keys[i - 1] = keys[i];
                    slots[i - 1] = slots[i].take();
                }
                *len -= 1;
                node
            }
            Children::N16 { keys, slots, len } => {
                let n = *len as usize;
                let pos = keys[..n].binary_search(&byte).ok()?;
                let node = slots[pos].take();
                for i in pos + 1..n {
                    keys[i - 1] = keys[i];
                    slots[i - 1] = slots[i].take();
                }
                *len -= 1;
                node
            }
            Children::N48 { index, slots, len } => {
                let slot = index[byte as usize];
                if slot == EMPTY48 {
                    return None;
                }
                index[byte as usize] = EMPTY48;
                let node = slots[slot as usize].take();
                *len -= 1;
                node
            }
            Children::N256 { slots, len } => {
                let node = slots[byte as usize].take()?;
                *len -= 1;
                Some(node)
            }
        };
        self.maybe_shrink();
        removed
    }

    fn maybe_shrink(&mut self) {
        let shrunk = match self {
            Children::N16 { keys, slots, len } if *len <= 3 => {
                let mut nkeys = [0u8; 4];
                let mut nslots: [Option<Box<Node>>; 4] = Default::default();
                for i in 0..*len as usize {
                    nkeys[i] = keys[i];
                    nslots[i] = slots[i].take();
                }
                Children::N4 {
                    keys: nkeys,
                    slots: nslots,
                    len: *len,
                }
            }
            Children::N48 { index, slots, len } if *len <= 12 => {
                let mut nkeys = [0u8; 16];
                let mut nslots: [Option<Box<Node>>; 16] = Default::default();
                let mut n = 0usize;
                for byte in 0..256usize {
                    let slot = index[byte];
                    if slot != EMPTY48 {
                        nkeys[n] = byte as u8;
                        nslots[n] = slots[slot as usize].take();
                        n += 1;
                    }
                }
                Children::N16 {
                    keys: nkeys,
                    slots: nslots,
                    len: *len,
                }
            }
            Children::N256 { slots, len } if *len <= 36 => {
                let mut index = Box::new([EMPTY48; 256]);
                let mut nslots: Box<[Option<Box<Node>>; 48]> = Box::new([const { None }; 48]);
                let mut n = 0usize;
                for byte in 0..256usize {
                    if let Some(node) = slots[byte].take() {
                        index[byte] = n as u8;
                        nslots[n] = Some(node);
                        n += 1;
                    }
                }
                Children::N48 {
                    index,
                    slots: nslots,
                    len: *len as u8,
                }
            }
            _ => return,
        };
        *self = shrunk;
    }

    /// Iterate children in key order.
    fn for_each<'a>(&'a self, f: &mut impl FnMut(&'a Node)) {
        match self {
            Children::N4 { keys, slots, len } => {
                let n = *len as usize;
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| keys[i]);
                for i in order {
                    if let Some(c) = &slots[i] {
                        f(c);
                    }
                }
            }
            Children::N16 { slots, len, .. } => {
                for slot in slots[..*len as usize].iter().flatten() {
                    f(slot);
                }
            }
            Children::N48 { index, slots, .. } => {
                for byte in 0..256usize {
                    let slot = index[byte];
                    if slot != EMPTY48 {
                        if let Some(c) = &slots[slot as usize] {
                            f(c);
                        }
                    }
                }
            }
            Children::N256 { slots, .. } => {
                for c in slots.iter().flatten() {
                    f(c);
                }
            }
        }
    }

    /// The single remaining child, if exactly one.
    fn take_only_child(&mut self) -> Option<(u8, Box<Node>)> {
        if self.len() != 1 {
            return None;
        }
        match self {
            Children::N4 { keys, slots, len } => {
                let byte = keys[0];
                let node = slots[0].take()?;
                *len = 0;
                Some((byte, node))
            }
            // Shrinking keeps single-child nodes in N4 form; other layouts
            // only occur transiently.
            Children::N16 { keys, slots, len } => {
                let byte = keys[0];
                let node = slots[0].take()?;
                *len = 0;
                Some((byte, node))
            }
            Children::N48 { index, slots, len } => {
                let byte = (0..256usize).find(|&b| index[b] != EMPTY48)? as u8;
                let slot = index[byte as usize];
                index[byte as usize] = EMPTY48;
                let node = slots[slot as usize].take()?;
                *len = 0;
                Some((byte, node))
            }
            Children::N256 { slots, len } => {
                let byte = (0..256usize).find(|&b| slots[b].is_some())? as u8;
                let node = slots[byte as usize].take()?;
                *len = 0;
                Some((byte, node))
            }
        }
    }
}

impl Art {
    /// An empty tree.
    pub fn new() -> Art {
        Art::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut node = self.root.as_deref()?;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Leaf { key: lkey, value } => {
                    return (&lkey[..] == key).then_some(*value);
                }
                Node::Inner(inner) => {
                    let prefix = &inner.prefix;
                    if key.len() < depth + prefix.len()
                        || &key[depth..depth + prefix.len()] != prefix.as_slice()
                    {
                        return None;
                    }
                    depth += prefix.len();
                    let byte = *key.get(depth)?;
                    node = inner.children.find(byte)?;
                    depth += 1;
                }
            }
        }
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Option<u64> {
        match self.root.take() {
            None => {
                self.root = Some(Box::new(Node::Leaf {
                    key: key.into(),
                    value,
                }));
                self.len = 1;
                None
            }
            Some(root) => {
                let (root, old) = insert_rec(root, key, 0, value);
                self.root = Some(root);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        let root = self.root.take()?;
        let (root, removed) = remove_rec(root, key, 0);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Visit every `(key, value)` pair in ascending key order.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], u64)) {
        fn walk(node: &Node, f: &mut impl FnMut(&[u8], u64)) {
            match node {
                Node::Leaf { key, value } => f(key, *value),
                Node::Inner(inner) => inner.children.for_each(&mut |c| walk(c, f)),
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut f);
        }
    }

    /// Collect all values whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each(|key, value| {
            if key.len() >= prefix.len() && &key[..prefix.len()] == prefix {
                out.push(value);
            }
        });
        out
    }

    /// Bulk-build from sorted or unsorted pairs. The paper notes the ART "is
    /// generated after having populated V, as it is more efficient to build
    /// small indexes for each chunk and merge them" — building bottom-up
    /// after the data lands is exactly this fast path.
    pub fn bulk_build(pairs: impl IntoIterator<Item = (Vec<u8>, u64)>) -> Art {
        let mut art = Art::new();
        for (k, v) in pairs {
            art.insert(&k, v);
        }
        art
    }

    /// Approximate heap footprint in bytes (for the E2 index-overhead
    /// experiment).
    pub fn memory_bytes(&self) -> usize {
        fn node_bytes(node: &Node) -> usize {
            match node {
                Node::Leaf { key, .. } => std::mem::size_of::<Node>() + key.len(),
                Node::Inner(inner) => {
                    let mut total = std::mem::size_of::<Node>()
                        + std::mem::size_of::<Inner>()
                        + inner.prefix.capacity();
                    total += match &inner.children {
                        Children::N4 { .. } => 0,
                        Children::N16 { .. } => 0,
                        Children::N48 { .. } => 256 + 48 * std::mem::size_of::<usize>(),
                        Children::N256 { .. } => 256 * std::mem::size_of::<usize>(),
                    };
                    inner.children.for_each(&mut |c| total += node_bytes(c));
                    total
                }
            }
        }
        self.root.as_deref().map_or(0, node_bytes)
    }
}

/// Length of the shared prefix of two byte slices.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn insert_rec(
    mut node: Box<Node>,
    key: &[u8],
    depth: usize,
    value: u64,
) -> (Box<Node>, Option<u64>) {
    match &mut *node {
        Node::Leaf {
            key: lkey,
            value: lvalue,
        } => {
            if &lkey[..] == key {
                let old = *lvalue;
                *lvalue = value;
                return (node, Some(old));
            }
            // Split: create an inner node with the common suffix-prefix.
            let common = common_prefix_len(&lkey[depth..], &key[depth..]);
            let prefix = key[depth..depth + common].to_vec();
            let split = depth + common;
            // Prefix-free keys guarantee both continue past the split point.
            let old_byte = lkey[split];
            let new_byte = key[split];
            let mut children = Children::n4();
            children.insert(old_byte, node);
            children.insert(
                new_byte,
                Box::new(Node::Leaf {
                    key: key.into(),
                    value,
                }),
            );
            (
                Box::new(Node::Inner(Box::new(Inner { prefix, children }))),
                None,
            )
        }
        Node::Inner(inner) => {
            let plen = inner.prefix.len();
            let common = common_prefix_len(&inner.prefix, &key[depth..]);
            if common < plen {
                // Prefix mismatch: split the compressed path.
                let mut rest = inner.prefix.split_off(common);
                let promoted_byte = rest.remove(0);
                let shared = std::mem::take(&mut inner.prefix);
                inner.prefix = rest;
                let new_byte = key[depth + common];
                let mut children = Children::n4();
                children.insert(promoted_byte, node);
                children.insert(
                    new_byte,
                    Box::new(Node::Leaf {
                        key: key.into(),
                        value,
                    }),
                );
                return (
                    Box::new(Node::Inner(Box::new(Inner {
                        prefix: shared,
                        children,
                    }))),
                    None,
                );
            }
            let next_depth = depth + plen;
            let byte = key[next_depth];
            if let Some(child) = inner.children.find_mut(byte) {
                let taken = std::mem::replace(
                    child,
                    Box::new(Node::Leaf {
                        key: Box::from(&[][..]),
                        value: 0,
                    }),
                );
                let (new_child, old) = insert_rec(taken, key, next_depth + 1, value);
                *child = new_child;
                (node, old)
            } else {
                if inner.children.is_full() {
                    inner.children.grow();
                }
                inner.children.insert(
                    byte,
                    Box::new(Node::Leaf {
                        key: key.into(),
                        value,
                    }),
                );
                (node, None)
            }
        }
    }
}

fn remove_rec(mut node: Box<Node>, key: &[u8], depth: usize) -> (Option<Box<Node>>, Option<u64>) {
    match &mut *node {
        Node::Leaf { key: lkey, value } => {
            if &lkey[..] == key {
                (None, Some(*value))
            } else {
                (Some(node), None)
            }
        }
        Node::Inner(inner) => {
            let plen = inner.prefix.len();
            if key.len() < depth + plen || key[depth..depth + plen] != inner.prefix[..] {
                return (Some(node), None);
            }
            let next_depth = depth + plen;
            let Some(&byte) = key.get(next_depth) else {
                return (Some(node), None);
            };
            let Some(child) = inner.children.find_mut(byte) else {
                return (Some(node), None);
            };
            let taken = std::mem::replace(
                child,
                Box::new(Node::Leaf {
                    key: Box::from(&[][..]),
                    value: 0,
                }),
            );
            let (new_child, removed) = remove_rec(taken, key, next_depth + 1);
            match new_child {
                Some(c) => *child = c,
                None => {
                    inner.children.remove(byte);
                    // Path compression on the way up: collapse single-child
                    // inner nodes into their child.
                    if let Some((only_byte, only_child)) = inner.children.take_only_child() {
                        let mut merged = inner.prefix.clone();
                        merged.push(only_byte);
                        return match *only_child {
                            Node::Leaf { .. } => (Some(only_child), removed),
                            Node::Inner(mut ci) => {
                                merged.extend_from_slice(&ci.prefix);
                                ci.prefix = merged;
                                (Some(Box::new(Node::Inner(ci))), removed)
                            }
                        };
                    }
                    if inner.children.len() == 0 {
                        return (None, removed);
                    }
                }
            }
            (Some(node), removed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Vec<u8> {
        crate::index::key::encode_key(&[crate::value::Value::from(s)])
    }

    #[test]
    fn insert_get_single() {
        let mut art = Art::new();
        assert_eq!(art.insert(&key("apple"), 1), None);
        assert_eq!(art.get(&key("apple")), Some(1));
        assert_eq!(art.get(&key("banana")), None);
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn insert_replaces() {
        let mut art = Art::new();
        art.insert(&key("apple"), 1);
        assert_eq!(art.insert(&key("apple"), 2), Some(1));
        assert_eq!(art.get(&key("apple")), Some(2));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn shared_prefix_split() {
        let mut art = Art::new();
        art.insert(&key("apple"), 1);
        art.insert(&key("apply"), 2);
        art.insert(&key("ape"), 3);
        assert_eq!(art.get(&key("apple")), Some(1));
        assert_eq!(art.get(&key("apply")), Some(2));
        assert_eq!(art.get(&key("ape")), Some(3));
        assert_eq!(art.get(&key("ap")), None);
        assert_eq!(art.len(), 3);
    }

    #[test]
    fn grows_through_all_node_sizes() {
        let mut art = Art::new();
        // 256 distinct first bytes force N4→N16→N48→N256 at the root.
        for i in 0..256usize {
            let mut k = vec![i as u8];
            k.extend_from_slice(b"suffix");
            art.insert(&k, i as u64);
        }
        assert_eq!(art.len(), 256);
        for i in 0..256usize {
            let mut k = vec![i as u8];
            k.extend_from_slice(b"suffix");
            assert_eq!(art.get(&k), Some(i as u64), "byte {i}");
        }
    }

    #[test]
    fn remove_and_shrink() {
        let mut art = Art::new();
        for i in 0..100u64 {
            let k = crate::index::key::encode_key(&[crate::value::Value::Integer(i as i64)]);
            art.insert(&k, i);
        }
        for i in (0..100u64).step_by(2) {
            let k = crate::index::key::encode_key(&[crate::value::Value::Integer(i as i64)]);
            assert_eq!(art.remove(&k), Some(i));
        }
        assert_eq!(art.len(), 50);
        for i in 0..100u64 {
            let k = crate::index::key::encode_key(&[crate::value::Value::Integer(i as i64)]);
            assert_eq!(art.get(&k), if i % 2 == 0 { None } else { Some(i) });
        }
        // Remove the rest, tree must end empty.
        for i in (1..100u64).step_by(2) {
            let k = crate::index::key::encode_key(&[crate::value::Value::Integer(i as i64)]);
            assert_eq!(art.remove(&k), Some(i));
        }
        assert!(art.is_empty());
        assert!(art.root.is_none());
    }

    #[test]
    fn remove_missing_is_none() {
        let mut art = Art::new();
        art.insert(&key("a"), 1);
        assert_eq!(art.remove(&key("b")), None);
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut art = Art::new();
        let words = ["pear", "apple", "banana", "apricot", "peach", "a", "z"];
        for (i, w) in words.iter().enumerate() {
            art.insert(&key(w), i as u64);
        }
        let mut keys = Vec::new();
        art.for_each(|k, _| keys.push(k.to_vec()));
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), words.len());
    }

    #[test]
    fn scan_prefix_finds_group() {
        let mut art = Art::new();
        use crate::index::key::encode_key;
        use crate::value::Value;
        for (i, (g, v)) in [("a", 1i64), ("a", 2), ("b", 1), ("ab", 1)]
            .iter()
            .enumerate()
        {
            let k = encode_key(&[Value::from(*g), Value::Integer(*v)]);
            art.insert(&k, i as u64);
        }
        let prefix = encode_key(&[Value::from("a")]);
        assert_eq!(art.scan_prefix(&prefix), vec![0, 1]);
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let pairs: Vec<(Vec<u8>, u64)> = (0..1000)
            .map(|i| (key(&format!("key{i:04}")), i as u64))
            .collect();
        let art = Art::bulk_build(pairs.clone());
        assert_eq!(art.len(), 1000);
        for (k, v) in &pairs {
            assert_eq!(art.get(k), Some(*v));
        }
    }

    #[test]
    fn memory_reporting_grows() {
        let mut art = Art::new();
        let empty = art.memory_bytes();
        for i in 0..100 {
            art.insert(&key(&format!("k{i}")), i as u64);
        }
        assert!(art.memory_bytes() > empty);
    }

    #[test]
    fn path_compression_collapses_on_remove() {
        let mut art = Art::new();
        art.insert(b"aaaa\x00\x00", 1);
        art.insert(b"aaab\x00\x00", 2);
        art.insert(b"b\x00\x00", 3);
        art.remove(b"aaab\x00\x00");
        assert_eq!(art.get(b"aaaa\x00\x00"), Some(1));
        assert_eq!(art.get(b"b\x00\x00"), Some(3));
        art.remove(b"b\x00\x00");
        assert_eq!(art.get(b"aaaa\x00\x00"), Some(1));
        assert_eq!(art.len(), 1);
    }
}
