//! Order-preserving binary key encoding for index keys.
//!
//! Composite [`Value`] keys are encoded into byte strings whose
//! lexicographic order equals the tuple's [`Value::total_cmp`] order. Each
//! component is self-delimiting, so for a fixed key arity no encoded key is
//! a proper prefix of another — the property the ART relies on.

use crate::value::Value;

/// Type tags. NULL sorts before every value, matching `Value::total_cmp`.
const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_NUM: u8 = 0x02;
const TAG_VARCHAR: u8 = 0x03;
const TAG_DATE: u8 = 0x04;

/// Encode a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    // Most keys are short; 16 bytes per component is a good initial guess.
    let mut out = Vec::with_capacity(values.len() * 16);
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Boolean(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        // INTEGER and DOUBLE share a tag because `total_cmp` compares them
        // numerically; both encode through the f64 order-preserving map.
        // (i64 values up to 2^53 survive exactly; beyond that the grouping
        // comparison itself is on f64, so the encoding stays consistent.)
        Value::Integer(i) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&encode_f64(*i as f64));
        }
        Value::Double(d) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&encode_f64(*d));
        }
        Value::Varchar(s) => {
            out.push(TAG_VARCHAR);
            // Escape 0x00 as 0x00 0xFF, terminate with 0x00 0x00: preserves
            // order and keeps the component self-delimiting.
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.push(0x00);
                    out.push(0xFF);
                } else {
                    out.push(b);
                }
            }
            out.push(0x00);
            out.push(0x00);
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            // Flip the sign bit so two's-complement order becomes unsigned
            // byte order.
            out.extend_from_slice(&(*d as u32 ^ 0x8000_0000).to_be_bytes());
        }
    }
}

/// Map an f64 to 8 bytes whose unsigned lexicographic order equals
/// `f64::total_cmp` order: positive floats flip only the sign bit, negative
/// floats flip every bit.
fn encode_f64(d: f64) -> [u8; 8] {
    let bits = d.to_bits();
    let mapped = if bits & 0x8000_0000_0000_0000 == 0 {
        bits ^ 0x8000_0000_0000_0000
    } else {
        !bits
    };
    mapped.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc1(v: Value) -> Vec<u8> {
        encode_key(std::slice::from_ref(&v))
    }

    #[test]
    fn integer_order_preserved() {
        let vals = [-5i64, -1, 0, 1, 42, i64::from(i32::MAX)];
        for w in vals.windows(2) {
            assert!(
                enc1(Value::Integer(w[0])) < enc1(Value::Integer(w[1])),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn double_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -2.5,
            -0.0,
            0.0,
            1e-10,
            3.25,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let (a, b) = (enc1(Value::Double(w[0])), enc1(Value::Double(w[1])));
            assert!(a <= b, "{} !<= {}", w[0], w[1]);
        }
    }

    #[test]
    fn cross_numeric_consistency() {
        assert_eq!(enc1(Value::Integer(3)), enc1(Value::Double(3.0)));
        assert!(enc1(Value::Integer(2)) < enc1(Value::Double(2.5)));
        assert!(enc1(Value::Double(2.5)) < enc1(Value::Integer(3)));
    }

    #[test]
    fn varchar_order_and_delimiting() {
        assert!(enc1(Value::from("a")) < enc1(Value::from("ab")));
        assert!(enc1(Value::from("ab")) < enc1(Value::from("b")));
        // Embedded NUL must not confuse ordering or delimiting.
        assert!(enc1(Value::from("a\0z")) < enc1(Value::from("aa")));
        let k1 = encode_key(&[Value::from("a"), Value::from("b")]);
        let k2 = encode_key(&[Value::from("ab"), Value::from("")]);
        assert_ne!(k1, k2);
    }

    #[test]
    fn null_sorts_first() {
        assert!(enc1(Value::Null) < enc1(Value::Boolean(false)));
        assert!(enc1(Value::Null) < enc1(Value::Integer(i64::MIN / 2)));
        assert!(enc1(Value::Null) < enc1(Value::from("")));
    }

    #[test]
    fn composite_key_order_is_componentwise() {
        let a = encode_key(&[Value::from("x"), Value::Integer(1)]);
        let b = encode_key(&[Value::from("x"), Value::Integer(2)]);
        let c = encode_key(&[Value::from("y"), Value::Integer(0)]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn no_proper_prefix_among_same_arity_keys() {
        let keys = [
            encode_key(&[Value::from("a")]),
            encode_key(&[Value::from("ab")]),
            encode_key(&[Value::Integer(1)]),
            encode_key(&[Value::Null]),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j && b.len() > a.len() {
                    assert_ne!(&b[..a.len()], &a[..], "key {i} is a prefix of key {j}");
                }
            }
        }
    }

    #[test]
    fn date_order() {
        assert!(enc1(Value::Date(-400)) < enc1(Value::Date(0)));
        assert!(enc1(Value::Date(0)) < enc1(Value::Date(20_000)));
    }
}
