//! Index structures: the Adaptive Radix Tree and its key encoding.

pub mod art;
pub mod key;

pub use art::Art;
pub use key::encode_key;

use crate::value::Value;

/// A named index over a table's columns, backed by an [`Art`].
///
/// Values map encoded composite keys to row ids. Unique indexes (primary
/// keys) hold exactly one row per key; the engine's upsert path relies on
/// this to locate the victim row, mirroring the paper's observation that
/// "DuckDB requires an index to apply upserts".
#[derive(Debug, Default, Clone)]
pub struct TableIndex {
    /// Positions of the indexed columns in the table schema.
    pub columns: Vec<usize>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
    tree: Art,
}

impl TableIndex {
    /// Create an empty index over the given column positions.
    pub fn new(columns: Vec<usize>, unique: bool) -> TableIndex {
        TableIndex {
            columns,
            unique,
            tree: Art::new(),
        }
    }

    /// Encode the key of `row` under this index.
    pub fn key_of(&self, row: &[Value]) -> Vec<u8> {
        let parts: Vec<Value> = self.columns.iter().map(|&c| row[c].clone()).collect();
        encode_key(&parts)
    }

    /// Look up the row id stored under `key_values`.
    pub fn get(&self, key_values: &[Value]) -> Option<u64> {
        self.tree.get(&encode_key(key_values))
    }

    /// Look up by pre-encoded key.
    pub fn get_encoded(&self, key: &[u8]) -> Option<u64> {
        self.tree.get(key)
    }

    /// Insert a row id; returns the previously stored row id if the key
    /// already existed (the unique-violation / upsert-victim case).
    pub fn insert(&mut self, key: &[u8], row_id: u64) -> Option<u64> {
        self.tree.insert(key, row_id)
    }

    /// Remove a key.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        self.tree.remove(key)
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.tree.clear()
    }

    /// Approximate heap footprint (E2 experiment).
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_index_round_trip() {
        let mut idx = TableIndex::new(vec![0], true);
        let row = [Value::from("apple"), Value::Integer(5)];
        let key = idx.key_of(&row);
        assert_eq!(idx.insert(&key, 0), None);
        assert_eq!(idx.get(&[Value::from("apple")]), Some(0));
        assert_eq!(idx.insert(&key, 7), Some(0));
        assert_eq!(idx.get(&[Value::from("apple")]), Some(7));
        assert_eq!(idx.remove(&key), Some(7));
        assert!(idx.is_empty());
    }

    #[test]
    fn composite_index_key() {
        let idx = TableIndex::new(vec![2, 0], true);
        let row = [Value::Integer(1), Value::from("ignored"), Value::from("g")];
        assert_eq!(
            idx.key_of(&row),
            encode_key(&[Value::from("g"), Value::Integer(1)])
        );
    }
}
