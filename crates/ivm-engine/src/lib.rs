//! # ivm-engine — an embedded analytical SQL engine
//!
//! This crate plays the role DuckDB plays in the OpenIVM paper: an
//! embeddable engine whose parser, planner, optimizer, and executor the
//! SQL-to-SQL compiler piggybacks on, and which then *executes* the
//! generated propagation scripts.
//!
//! Components:
//! - columnar in-memory storage with tombstone deletes, zero-copy batch
//!   scans, and predicate-pushdown filtered scans ([`storage`])
//! - an Adaptive Radix Tree index with order-preserving key encoding
//!   ([`index`]) — used for primary keys, `INSERT OR REPLACE`, and scan
//!   point reads on pushed-down equality predicates
//! - expression binding and evaluation with SQL NULL semantics ([`expr`]),
//!   plus vectorized chunk-at-a-time kernels ([`expr::vector`])
//! - a logical planner ([`planner`]), rule-based optimizer ([`optimizer`]),
//!   and physical lowering ([`planner::physical`]: join-side selection,
//!   equi-key extraction, aggregate mode, top-k, scan pushdown)
//! - a batched pull-based executor over columnar [`exec::RowBatch`]es:
//!   streaming scan/filter/project/limit, build-probe hash join
//!   (INNER/LEFT/RIGHT/FULL/CROSS) with bounded output batches, hash
//!   aggregate, set operations, sorting, bounded-heap top-k ([`exec`])
//! - a morsel-driven parallel executor ([`exec::parallel`]): scoped
//!   `std::thread` workers claim table morsels from a lock-free cursor,
//!   hash joins and aggregates run hash-partitioned, and per-morsel
//!   results merge in morsel order (serial-identical output)
//! - memory-budgeted spill-to-disk ([`exec::spill`]): under a bounded
//!   [`MemoryBudget`], join builds, group tables, DISTINCT, and set
//!   operations overflow radix partitions to temp files (columnar frame
//!   codec in [`storage::frame`]) and rehydrate partition-at-a-time,
//!   with results row-identical to in-memory execution
//! - the `Database` session API ([`session`]), with parallelism and
//!   memory-budget knobs and a DDL-invalidated bound-plan cache for
//!   repeated scripts
//! - a durable storage subsystem ([`storage::page`], [`storage::buffer`],
//!   [`storage::wal`], [`storage::durability`]): checksummed slotted heap
//!   pages behind a pinning clock buffer pool, a logical-redo write-ahead
//!   log with group commit, and shadow-paged checkpoints — `Database::open`
//!   recovers tables, views, and row ids to the last committed statement
//!
//! ## Quick example
//!
//! ```
//! use ivm_engine::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)").unwrap();
//! db.execute("INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 5)").unwrap();
//! let result = db
//!     .query("SELECT group_index, SUM(group_value) FROM groups GROUP BY group_index ORDER BY 1")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod concurrent;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod optimizer;
pub mod planner;
pub mod schema;
pub mod session;
pub mod storage;
pub mod types;
pub mod value;

pub use catalog::Catalog;
pub use concurrent::{ReadSession, Snapshot, SnapshotHub};
pub use error::{EngineError, ErrorKind};
pub use exec::{reset_typed_path_stats, typed_path_stats, MemoryBudget, RowBatch, SpillStats};
pub use planner::{plan_query, LogicalPlan, PhysicalPlan};
pub use schema::{Column, Schema};
pub use session::{Database, QueryResult};
pub use storage::{
    parse_fault_plan_setting, set_fault_plan, BufferPoolStats, Durability, DurabilityOptions,
    FaultKind, FaultPlan, OpClass, RecoveryStats, Table, Trigger, Wal, WalRecord, WalStats,
    FAULT_PLAN_ENV,
};
pub use types::DataType;
pub use value::Value;
