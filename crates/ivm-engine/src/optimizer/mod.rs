//! Rule-based logical optimizer.
//!
//! Mirrors the role of DuckDB's optimizer in Figure 1: the OpenIVM rewrite
//! runs against an optimized logical plan. Rules are deliberately classic:
//! constant folding, filter pushdown, and redundant-operator removal.

mod rules;

pub(crate) use rules::push_scan_predicates;

use crate::planner::LogicalPlan;

/// Optimize a logical plan (fixpoint over the rule set, bounded).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    // Two passes are enough for the current rules; keep a small bound so a
    // misbehaving rule can't loop forever.
    for _ in 0..4 {
        let before = plan.clone();
        plan = rules::fold_constants(plan);
        plan = rules::remove_trivial_filters(plan);
        plan = rules::push_down_filters(plan);
        if plan == before {
            break;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::planner::plan_query;
    use crate::schema::{Column, Schema};
    use crate::storage::Table;
    use crate::types::DataType;
    use ivm_sql::ast::Statement;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Integer),
                Column::new("b", DataType::Integer),
            ]),
            vec![],
        ))
        .unwrap();
        c.create_table(Table::new(
            "u",
            Schema::new(vec![Column::new("a", DataType::Integer)]),
            vec![],
        ))
        .unwrap();
        c
    }

    fn plan(sql: &str) -> LogicalPlan {
        let c = catalog();
        let q = match ivm_sql::parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            _ => unreachable!(),
        };
        optimize(plan_query(&q, &c).unwrap())
    }

    #[test]
    fn true_filter_removed() {
        let p = plan("SELECT a FROM t WHERE 1 = 1");
        assert!(
            !p.explain().contains("Filter"),
            "tautological filter should be removed:\n{}",
            p.explain()
        );
    }

    #[test]
    fn constant_folded() {
        let p = plan("SELECT a + (1 + 2) FROM t");
        // The projection expression should contain a folded literal 3.
        match &p {
            LogicalPlan::Project { exprs, .. } => match &exprs[0] {
                crate::expr::BoundExpr::Binary { right, .. } => {
                    assert_eq!(
                        **right,
                        crate::expr::BoundExpr::Literal(crate::value::Value::Integer(3))
                    );
                }
                other => panic!("unexpected expr {other:?}"),
            },
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn filter_pushed_below_project() {
        // Filter over a derived table's output column pushes through the
        // subquery projection down to the scan.
        let p = plan("SELECT * FROM (SELECT a FROM t) AS s WHERE s.a > 0");
        let explain = p.explain();
        let filter_pos = explain.find("Filter").expect("filter kept");
        let project_pos = explain.find("Project").expect("project kept");
        assert!(
            filter_pos > project_pos,
            "filter should sit below the projection:\n{explain}"
        );
    }

    #[test]
    fn contradiction_becomes_empty_filter() {
        // WHERE FALSE stays as a filter (executors short-circuit on it); it
        // must not be dropped.
        let p = plan("SELECT a FROM t WHERE 1 = 2");
        assert!(p.explain().contains("Filter"));
    }

    #[test]
    fn optimizer_is_idempotent() {
        let p = plan("SELECT a, b FROM t WHERE a > 1 AND 2 = 2");
        let again = optimize(p.clone());
        assert_eq!(p, again);
    }
}
